#!/usr/bin/env python
"""Regenerate every paper artefact at full scale for EXPERIMENTS.md.

Writes a plain-text report to stdout; the repository's EXPERIMENTS.md
records the paper-vs-measured comparison derived from it.
"""

import time

from repro.core import safety_period
from repro.das import centralized_das_schedule
from repro.experiments import (
    PAPER,
    format_figure5,
    format_overhead,
    format_table1,
    measure_setup_overhead,
    run_figure5,
)
from repro.slp import SlpParameters, build_slp_schedule
from repro.topology import paper_grid
from repro.verification import verify_schedule

REPEATS = 30
VERIFIER_SEEDS = 200


def main() -> None:
    t0 = time.time()
    print(format_table1())
    print()

    for sd in (3, 5):
        panel = run_figure5(sd, repeats=REPEATS, noise="casino")
        print(format_figure5(panel))
        print()

    print(f"Verifier-based estimates ({VERIFIER_SEEDS} seeds, deterministic, ideal links):")
    for size in (11, 15, 21):
        grid = paper_grid(size)
        delta = safety_period(grid, PAPER.frame().period_length).periods
        base = s3 = s5 = 0
        for seed in range(VERIFIER_SEEDS):
            schedule = centralized_das_schedule(grid, seed=seed)
            base += not verify_schedule(grid, schedule, delta).slp_aware
            for sd, bump in ((3, "s3"), (5, "s5")):
                refined = build_slp_schedule(
                    grid, SlpParameters(sd), seed=seed, baseline=schedule
                ).schedule
                captured = not verify_schedule(grid, refined, delta).slp_aware
                if sd == 3:
                    s3 += captured
                else:
                    s5 += captured
        n = VERIFIER_SEEDS
        print(
            f"  {size}x{size}: base {100 * base / n:.1f}%  "
            f"SD=3 {100 * s3 / n:.1f}% (red {100 * (1 - s3 / base):.0f}%)  "
            f"SD=5 {100 * s5 / n:.1f}% (red {100 * (1 - s5 / base):.0f}%)"
        )
    print()

    print("Distributed setup overhead (full MSP = 80, 11x11):")
    measurement = measure_setup_overhead(paper_grid(11), seeds=(0, 1, 2))
    print(format_overhead(measurement))
    print(f"\n(total {time.time() - t0:.0f}s)")


if __name__ == "__main__":
    main()
