#!/usr/bin/env python
"""Regenerate every paper artefact at full scale for EXPERIMENTS.md.

Writes a plain-text report to stdout; the repository's EXPERIMENTS.md
records the paper-vs-measured comparison derived from it.

``--workers N`` fans the seed sweeps out over N processes (0 = one per
CPU); results are identical to a serial run, only faster.
"""

import argparse
import time

from repro.core import safety_period
from repro.das import centralized_das_schedule
from repro.experiments import (
    PAPER,
    format_figure5,
    format_overhead,
    format_table1,
    measure_setup_overhead,
    run_figure5,
    workers_argument,
)
from repro.slp import SlpParameters, build_slp_schedule
from repro.topology import paper_grid
from repro.verification import verify_schedule

REPEATS = 30
VERIFIER_SEEDS = 200


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=workers_argument,
        default=None,
        help="worker processes for seed sweeps (default: serial; 0 = one per CPU)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=REPEATS,
        help=f"runs per Figure 5 bar (default {REPEATS})",
    )
    def non_negative(value: str) -> int:
        count = int(value)
        if count < 0:
            raise argparse.ArgumentTypeError("--verifier-seeds must be >= 0")
        return count

    parser.add_argument(
        "--verifier-seeds",
        type=non_negative,
        default=VERIFIER_SEEDS,
        help=(
            f"seeds for the verifier-based estimates "
            f"(default {VERIFIER_SEEDS}; 0 skips the section)"
        ),
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    t0 = time.time()
    print(format_table1())
    print()

    for sd in (3, 5):
        panel = run_figure5(
            sd, repeats=args.repeats, noise="casino", workers=args.workers
        )
        print(format_figure5(panel))
        print()

    n = args.verifier_seeds
    sizes = (11, 15, 21) if n else ()
    if n:
        print(f"Verifier-based estimates ({n} seeds, deterministic, ideal links):")
    for size in sizes:
        grid = paper_grid(size)
        delta = safety_period(grid, PAPER.frame().period_length).periods
        base = s3 = s5 = 0
        for seed in range(n):
            schedule = centralized_das_schedule(grid, seed=seed)
            base += not verify_schedule(grid, schedule, delta).slp_aware
            for sd in (3, 5):
                refined = build_slp_schedule(
                    grid, SlpParameters(sd), seed=seed, baseline=schedule
                ).schedule
                captured = not verify_schedule(grid, refined, delta).slp_aware
                if sd == 3:
                    s3 += captured
                else:
                    s5 += captured
        def red(captured: int) -> str:
            # With few seeds the baseline may capture nothing; a
            # reduction against zero captures is undefined.
            if base == 0:
                return "n/a"
            return f"{100 * (1 - captured / base):.0f}%"

        print(
            f"  {size}x{size}: base {100 * base / n:.1f}%  "
            f"SD=3 {100 * s3 / n:.1f}% (red {red(s3)})  "
            f"SD=5 {100 * s5 / n:.1f}% (red {red(s5)})"
        )
    print()

    print("Distributed setup overhead (full MSP = 80, 11x11):")
    measurement = measure_setup_overhead(
        paper_grid(11), seeds=(0, 1, 2), workers=args.workers
    )
    print(format_overhead(measurement))
    print(f"\n(total {time.time() - t0:.0f}s)")


if __name__ == "__main__":
    main()
