#!/usr/bin/env python
"""Disk-chaos smoke drill: SIGKILL mid-write, ENOSPC, fsck, resume.

The crash-consistency story against *real processes*:

1. start the sweep service as a subprocess and submit the
   paper-baseline sweep over HTTP;
2. a :class:`~repro.experiments.FaultPlan` in the subprocess
   environment tears the first checkpoint append (the worker lands
   half a line, fsyncs it, and dies — ``SIGKILL`` mid-write); the
   moment the fault's marker appears, this script ``SIGKILL``\\ s the
   whole service, so the data dir is left exactly as a crashed box
   would leave it: a running job row and checkpoint debris;
3. ``repro service fsck --data-dir`` must *find* the damage (exit 1:
   a stale running job plus the torn/corrupt checkpoint line) and
   ``--repair`` must fix it conservatively (demote to queued, rewrite
   the checkpoint keeping verified lines); a second pass must be
   clean;
4. the service restarts over the repaired dir; the same plan then
   injects ENOSPC into the result-blob write — the service re-queues
   the job, notes the degradation, and self-heals on retry;
5. the served report must be byte-identical to a direct in-process
   ``ScenarioRunner`` run.

Exit code 0 iff every check passes.  A correctness drill for the
storage layer, shaped like ``service_smoke.py`` one layer down.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import FAULT_PLAN_ENV, FaultPlan  # noqa: E402
from repro.scenarios import ScenarioRunner  # noqa: E402
from repro.service import ServiceClient, ServiceError  # noqa: E402

SEEDS = 6


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_service(data_dir: Path, port: int, env: dict) -> subprocess.Popen:
    # One worker, one shard: seeds run in order, so the torn first
    # append and the kill window are deterministic.
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "service", "start",
            "--data-dir", str(data_dir),
            "--port", str(port),
            "--shard-workers", "1",
            "--shards-per-job", "1",
            "--max-attempts", "3",
        ],
        env=env,
        cwd=REPO_ROOT,
    )


def run_fsck(data_dir: Path, env: dict, repair: bool = False):
    """Run ``repro service fsck`` as a subprocess; returns
    ``(exit_code, report_dict)``."""
    command = [
        sys.executable, "-m", "repro.cli", "service", "fsck",
        "--data-dir", str(data_dir),
    ]
    if repair:
        command.append("--repair")
    completed = subprocess.run(
        command, env=env, cwd=REPO_ROOT, capture_output=True, text=True,
        timeout=120.0,
    )
    try:
        report = json.loads(completed.stdout)
    except ValueError:
        report = {}
    return completed.returncode, report


def wait_for_health(client: ServiceClient, deadline: float) -> None:
    while True:
        try:
            client.health()
            return
        except ServiceError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


def main() -> int:
    checks: dict = {}

    def check(name: str, passed: bool) -> None:
        checks[name] = passed
        print(f"fsck {name}: {'ok' if passed else 'FAILED'}", file=sys.stderr)

    direct = ScenarioRunner().run("paper-baseline", seeds=SEEDS)
    expected = direct.to_json() + "\n"

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        data_dir = tmp_path / "service-data"
        markers = tmp_path / "markers"
        plan = FaultPlan(
            torn_writes=("sweep-",),      # SIGKILL mid-checkpoint-append
            enospc_writes=("results/",),  # disk full mid-result-write
            marker_dir=str(markers),
        )
        env = dict(os.environ)
        env[FAULT_PLAN_ENV] = plan.to_env()
        env["PYTHONPATH"] = str(REPO_ROOT / "src")

        port = free_port()
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=10.0)

        # --- First life: the box "loses power" mid-checkpoint-append.
        process = start_service(data_dir, port, env)
        job = None
        try:
            wait_for_health(client, time.monotonic() + 30.0)
            submitted = client.submit(
                {"scenario": "paper-baseline", "seeds": SEEDS}
            )
            job = submitted["job"]
            check("submission_created", submitted["created"] is True)

            # The torn-write fault fires inside the durable-append seam:
            # the worker lands half a line and dies.  Its marker file is
            # the signal to SIGKILL the whole service right there.
            deadline = time.monotonic() + 120.0
            while not (markers / "torn-sweep-").exists():
                if time.monotonic() > deadline:
                    break
                time.sleep(0.005)
            check("torn_write_fired", (markers / "torn-sweep-").exists())
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        # --- fsck: find the crash damage, repair it, verify clean.
        code, report = run_fsck(data_dir, env)
        kinds = {f["kind"] for f in report.get("findings", [])}
        check("fsck_flags_damage_with_exit_1", code == 1)
        check("fsck_finds_stale_running_job", "stale_running_job" in kinds)
        # The torn line survives at rest unless the respawned pool beat
        # the SIGKILL to the weld — in which case the debris is a
        # corrupt mid-file line instead.  Either way fsck must see it.
        check(
            "fsck_finds_checkpoint_debris",
            bool(kinds & {"torn_checkpoint_line", "corrupt_checkpoint_line"}),
        )

        code, report = run_fsck(data_dir, env, repair=True)
        check(
            "fsck_repair_exits_0",
            code == 0 and report.get("unrepaired") == 0,
        )
        code, report = run_fsck(data_dir, env)
        check(
            "fsck_clean_after_repair",
            code == 0 and report.get("clean") is True,
        )

        # --- Second life: resume over the repaired dir; ENOSPC hits
        # the result-blob write and the service self-heals.
        process = start_service(data_dir, port, env)
        try:
            wait_for_health(client, time.monotonic() + 30.0)
            deadline = time.monotonic() + 300.0
            status = {"state": "unknown"}
            while True:
                status = client.status(job)
                if status["state"] in ("done", "failed", "quarantined"):
                    break
                if time.monotonic() > deadline:
                    break
                time.sleep(0.2)
            check("resumed_job_done", status["state"] == "done")
            check("enospc_fired", (markers / "enospc-results_").exists())
            served = client.result_text(job)
            check("report_byte_identical_to_direct_run", served == expected)
        finally:
            process.terminate()
            try:
                process.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

    if not all(checks.values()):
        failed = [name for name, passed in checks.items() if not passed]
        print(f"FSCK SMOKE FAILED: {failed}", file=sys.stderr)
        return 1
    print("disk-chaos smoke drill passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
