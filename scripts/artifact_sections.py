"""The section grammar of ``benchmark_artifacts.txt``, in one place.

Two writers share the artifact file: the benchmark suite
(``benchmarks/conftest.py``'s ``emit``) appends regenerated paper
tables, and ``scripts/bench.py --profile`` appends cProfile hotspot
tables.  Both mark a section with a bar/title/bar triple::

    ================================================================
    <title>
    ================================================================
    <body ... until the next triple>

Each writer must replace *its own* stale sections while preserving the
other's, so the parser lives here and both import it — a private copy
in either writer would drift and silently clobber the other's sections
again (the original bug).
"""

from __future__ import annotations

from typing import Callable, List, Tuple

#: The section delimiter both writers emit.
BAR = "=" * 64

#: Title prefix of the profiler's sections (``scripts/bench.py
#: --profile``); everything else belongs to the benchmark suite.
PROFILE_SECTION_PREFIX = "cProfile hotspots"


def split_sections(text: str) -> Tuple[str, List[Tuple[str, str]]]:
    """Parse ``text`` into ``(preamble, [(title, block), ...])``.

    A block spans from its bar triple (including one preceding blank
    line, if present — the separator the writers emit) to the start of
    the next triple; the preamble is anything before the first block.
    Joining the preamble and every block back together reproduces the
    input.
    """
    lines = text.splitlines()
    starts = [
        i
        for i in range(len(lines) - 2)
        if lines[i] == BAR and lines[i + 2] == BAR
    ]
    bounds = [
        start - 1 if start > 0 and not lines[start - 1] else start
        for start in starts
    ]
    preamble = "\n".join(lines[: bounds[0]]) if bounds else "\n".join(lines)
    blocks = []
    for index, start in enumerate(starts):
        end = bounds[index + 1] if index + 1 < len(starts) else len(lines)
        blocks.append((lines[start + 1], "\n".join(lines[bounds[index]:end])))
    return preamble, blocks


def filter_sections(
    text: str, keep: Callable[[str], bool], keep_preamble: bool = True
) -> str:
    """``text`` reduced to the sections whose title satisfies ``keep``."""
    preamble, blocks = split_sections(text)
    parts = [block for title, block in blocks if keep(title)]
    if keep_preamble and preamble:
        parts.insert(0, preamble)
    return "\n".join(parts) + ("\n" if parts else "")
