#!/usr/bin/env python
"""Performance benchmark suite: times representative workloads and
writes ``BENCH_<date>.json`` so the perf trajectory is tracked PR over
PR.

Workloads
---------
``sweep11`` / ``sweep15``
    Multi-seed capture-ratio sweeps (the unit of work behind every
    Figure 5 bar): timed serially and with a ``workers``-process pool,
    reporting the wall-clock speedup and verifying that the aggregated
    ``CaptureStats`` are identical between the two modes.
``das_setup``
    One full message-level distributed DAS setup (Phase 1).
``trace_heavy``
    One operational run with every trace record retained versus the
    counting-only default, isolating the event-loop + tracing cost.
``scenario``
    A registered scenario (multi-source ``two-sources``) swept through
    the :class:`~repro.scenarios.ScenarioRunner`, serial versus
    parallel, verifying the two JSON reports are byte-identical.

Usage::

    PYTHONPATH=src python scripts/bench.py             # full suite
    PYTHONPATH=src python scripts/bench.py --quick     # CI smoke mode
    PYTHONPATH=src python scripts/bench.py --workers 4 --out BENCH.json

The JSON deliberately records ``cpu_count``: process-pool speedup is
bounded by physical cores, so a 1-core container reports ~1× for the
parallel workloads while the same suite on a 4-core host reports ~3-4×.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import asdict
from pathlib import Path

from repro.das import run_das_setup
from repro.experiments import (
    PAPER,
    ExperimentConfig,
    ExperimentRunner,
    ParallelExperimentRunner,
    workers_argument,
)
from repro.scenarios import ScenarioRunner
from repro.topology import GridTopology, paper_grid


def _grid(size: int) -> GridTopology:
    """Paper grid when the size is a paper size, plain grid otherwise
    (quick mode uses a 7x7 the paper never evaluates)."""
    try:
        return paper_grid(size)
    except Exception:
        return GridTopology(size)


def _time(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - t0, result


def bench_sweep(size: int, repeats: int, workers: int, noise: str = "casino") -> dict:
    """Serial vs parallel capture-ratio sweep on one grid size."""
    topology = _grid(size)
    config = ExperimentConfig(algorithm="protectionless", repeats=repeats, noise=noise)

    serial = ExperimentRunner(topology)
    serial_s, serial_outcome = _time(serial.run, config)

    with ParallelExperimentRunner(topology, workers=workers) as runner:
        # Warm the pool outside the timed region: pool start-up is a
        # one-off cost the sweep itself should not be charged for.
        runner.run(ExperimentConfig(algorithm="protectionless", repeats=workers, noise=noise))
        parallel_s, parallel_outcome = _time(runner.run, config)

    stats_identical = asdict(serial_outcome.stats) == asdict(parallel_outcome.stats)
    results_identical = serial_outcome.results == parallel_outcome.results
    return {
        "grid": f"{size}x{size}",
        "repeats": repeats,
        "workers": workers,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "runs_per_second_serial": round(repeats / serial_s, 2),
        "runs_per_second_parallel": round(repeats / parallel_s, 2),
        "capture_ratio": serial_outcome.stats.capture_ratio,
        "stats_identical": stats_identical,
        "results_identical": results_identical,
    }


def bench_scenario(name: str, repeats: int, workers: int) -> dict:
    """Serial vs parallel scenario sweep via the ScenarioRunner.

    The identity check is the strongest one the suite has: not just
    equal stats but byte-identical JSON reports (per-run rows,
    per-source breakdowns, first-capture aggregation and all).
    """
    serial = ScenarioRunner(workers=1)
    serial_s, serial_outcome = _time(serial.run, name, repeats)

    parallel = ScenarioRunner(workers=workers)
    parallel_s, parallel_outcome = _time(parallel.run, name, repeats)

    return {
        "scenario": name,
        "repeats": repeats,
        "workers": workers,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "runs_per_second_serial": round(repeats / serial_s, 2),
        "runs_per_second_parallel": round(repeats / parallel_s, 2),
        "capture_ratio": serial_outcome.stats.capture_ratio,
        "results_identical": serial_outcome.to_json() == parallel_outcome.to_json(),
    }


def bench_das_setup(size: int, setup_periods: int) -> dict:
    """One full message-level distributed DAS setup."""
    topology = _grid(size)
    config = PAPER.das_config(setup_periods=setup_periods)
    elapsed, result = _time(run_das_setup, topology, config=config, seed=0)
    return {
        "grid": f"{size}x{size}",
        "setup_periods": setup_periods,
        "seconds": round(elapsed, 4),
        "messages_sent": result.messages_sent,
        "messages_per_second": round(result.messages_sent / elapsed, 1),
    }


def bench_trace_heavy(size: int) -> dict:
    """Counting-only vs full-record tracing on one operational run."""
    from repro.app import run_operational_phase
    from repro.das import centralized_das_schedule

    topology = _grid(size)
    schedule = centralized_das_schedule(topology, num_slots=PAPER.num_slots, seed=0)

    counting_s, counting = _time(
        run_operational_phase, topology, schedule, seed=0, frame=PAPER.frame()
    )
    full_s, full = _time(
        run_operational_phase,
        topology,
        schedule,
        seed=0,
        frame=PAPER.frame(),
        trace_kinds=None,
    )
    return {
        "grid": f"{size}x{size}",
        "counting_only_seconds": round(counting_s, 4),
        "full_trace_seconds": round(full_s, 4),
        "counting_only_speedup": round(full_s / counting_s, 3) if counting_s else None,
        "outcome_identical": counting == full,
        "messages_sent": counting.messages_sent,
    }


def run_suite(workers: int, quick: bool) -> dict:
    suite: dict = {
        "meta": {
            "date": time.strftime("%Y-%m-%d %H:%M:%S"),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "workers": workers,
            "quick": quick,
        },
        "workloads": {},
    }
    workloads = suite["workloads"]
    if quick:
        workloads["sweep11"] = bench_sweep(11, repeats=4, workers=workers)
        workloads["das_setup"] = bench_das_setup(7, setup_periods=16)
        workloads["trace_heavy"] = bench_trace_heavy(7)
        workloads["scenario"] = bench_scenario(
            "two-sources", repeats=4, workers=workers
        )
    else:
        workloads["sweep11"] = bench_sweep(11, repeats=30, workers=workers)
        workloads["sweep15"] = bench_sweep(15, repeats=20, workers=workers)
        workloads["das_setup"] = bench_das_setup(11, setup_periods=30)
        workloads["trace_heavy"] = bench_trace_heavy(11)
        workloads["scenario"] = bench_scenario(
            "two-sources", repeats=20, workers=workers
        )
        workloads["scenario_churn"] = bench_scenario(
            "churn-10pct", repeats=20, workers=workers
        )
    return suite


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=workers_argument,
        default=4,
        help="pool size for the parallel sweeps (default 4; 0 = one per CPU)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: tiny workloads, seconds not minutes (used by CI)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default: BENCH_<date>.json in the repo root)",
    )
    args = parser.parse_args(argv)

    suite = run_suite(workers=args.workers, quick=args.quick)

    out = args.out
    if out is None:
        stamp = time.strftime("%Y%m%d")
        out = Path(__file__).resolve().parent.parent / f"BENCH_{stamp}.json"
    out.write_text(json.dumps(suite, indent=2, sort_keys=True) + "\n")

    print(json.dumps(suite, indent=2, sort_keys=True))
    print(f"\nwrote {out}", file=sys.stderr)

    failures = [
        name
        for name, data in suite["workloads"].items()
        if data.get("stats_identical") is False
        or data.get("results_identical") is False
        or data.get("outcome_identical") is False
    ]
    if failures:
        print(f"IDENTITY CHECK FAILED for: {failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
