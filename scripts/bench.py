#!/usr/bin/env python
"""Performance benchmark suite: times representative workloads, writes
``BENCH_<date>.json`` and compares against the most recent prior
artifact so the perf trajectory is tracked — and gated — PR over PR.

Workloads
---------
``sweep11`` / ``sweep15``
    Multi-seed capture-ratio sweeps (the unit of work behind every
    Figure 5 bar): timed serially and with a ``workers``-process pool,
    reporting the wall-clock speedup and verifying that the aggregated
    ``CaptureStats`` are identical between the two modes.  A third,
    serial *re-sweep* of the same cell verifies the schedule cache:
    identical results, >0 hits, and its own timing.
``setup15`` / ``setup7``
    Cold schedule-construction throughput with the cache disabled:
    seeded protectionless + SLP centralised builds per second (the
    setup-phase half of a sweep, moved by the array-backed topology
    metrics rather than the kernel).
``das_setup``
    One full message-level distributed DAS setup (Phase 1), on the
    default (flat-round) setup kernel.
``das_dissem15``
    Distributed dissemination throughput (messages/second) of the
    setup-phase fast kernel on the paper's 15×15 grid, with a legacy
    event-heap run of the same cell verifying schedule, message count
    and trace-counter identity (the setup kernel's bisection check).
``trace_heavy``
    One operational run with every trace record retained versus the
    counting-only default, isolating the event-loop + tracing cost.
``scenario`` / ``scenario_churn``
    Registered scenarios swept through the
    :class:`~repro.scenarios.ScenarioRunner`, serial versus the worker
    policy's choice for the requested pool, verifying the two JSON
    reports are byte-identical.
``telemetry``
    The same serial sweep with the telemetry subsystem off (the gated
    no-op path — this leg's throughput is the gated number, so a
    regression in the disabled path is caught) and on under a
    recording :class:`~repro.telemetry.TelemetrySession`, reporting
    the instrumented leg's relative overhead and verifying results are
    unchanged; ``--telemetry-out DIR`` exports the instrumented leg's
    artifacts for CI to upload.

Regression gate
---------------
After the suite runs, the most recent prior ``BENCH_*.json`` with the
same mode (quick/full) is loaded and per-workload throughput deltas are
printed; any workload more than ``--regression-threshold`` (default
15%) slower fails the run.  ``--no-regression-check`` opts out for
known-noisy environments.  CI runs the quick suite with the gate on.

Profiling
---------
``--profile`` runs each workload under ``cProfile`` and appends a
top-20 cumulative hotspot table per workload to
``benchmark_artifacts.txt`` instead of writing a ``BENCH_*.json``
(profiling skews wall-clock, so profiled timings are never tracked or
gated).  This is what keeps perf PRs profile-guided.

Usage::

    PYTHONPATH=src python scripts/bench.py             # full suite
    PYTHONPATH=src python scripts/bench.py --quick     # CI smoke mode
    PYTHONPATH=src python scripts/bench.py --profile   # hotspot tables
    PYTHONPATH=src python scripts/bench.py --workers 4 --out BENCH.json

The JSON deliberately records ``cpu_count``: process-pool speedup is
bounded by physical cores, so a 1-core container reports ~1× for the
parallel workloads while the same suite on a 4-core host reports ~3-4×.
"""

from __future__ import annotations

import argparse
import cProfile
import importlib.util
import io
import json
import os
import platform
import pstats
import sys
import time
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.das import run_das_setup
from repro.experiments import (
    PAPER,
    ExperimentConfig,
    ExperimentRunner,
    FaultPlan,
    ParallelExperimentRunner,
    RetryPolicy,
    default_schedule_cache,
    workers_argument,
)
from repro.scenarios import ScenarioRunner
from repro.storage import atomic_write_text
from repro.topology import GridTopology, paper_grid

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACTS = REPO_ROOT / "benchmark_artifacts.txt"


def _load_artifact_sections():
    """Load the shared artifact-section grammar (scripts/ is not a
    package, and this script is itself loaded via importlib by tests,
    so a plain relative import is not available)."""
    path = Path(__file__).resolve().parent / "artifact_sections.py"
    spec = importlib.util.spec_from_file_location("artifact_sections", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


artifact_sections = _load_artifact_sections()

#: Header prefix of the profiler's sections in ``benchmark_artifacts.txt``.
#: ``benchmarks/conftest.py`` preserves sections with this prefix when it
#: resets the file, and ``_without_profile_sections`` replaces stale ones
#: on the next ``--profile`` run — together they keep exactly one profile
#: run in the file alongside the benchmark tables.
PROFILE_SECTION_PREFIX = artifact_sections.PROFILE_SECTION_PREFIX

#: Default regression-gate threshold: a tracked workload may not lose
#: more than this fraction of its throughput versus the prior artifact.
REGRESSION_THRESHOLD = 0.15


def _grid(size: int) -> GridTopology:
    """Paper grid when the size is a paper size, plain grid otherwise
    (quick mode uses a 7x7 the paper never evaluates)."""
    try:
        return paper_grid(size)
    except Exception:
        return GridTopology(size)


def _time(fn, *args, **kwargs):
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - t0, result


def _cache_delta(before: Dict[str, int]) -> Dict[str, int]:
    """Hits/misses accrued in this process since ``before``."""
    after = default_schedule_cache().stats()
    return {
        "cache_hits": after["hits"] - before["hits"],
        "cache_misses": after["misses"] - before["misses"],
    }


def bench_sweep(size: int, repeats: int, workers: int, noise: str = "casino") -> dict:
    """Serial vs parallel capture-ratio sweep on one grid size, plus a
    serial re-sweep that exercises (and verifies) the schedule cache.

    The parallel leg disables the schedule cache: the pool is forked
    from a parent whose cache the serial leg just populated, so a
    cached parallel leg would skip every schedule build the serial leg
    paid for and overstate the pool speedup.  With the cache off both
    timed legs do identical work; the re-sweep measures the cache win
    explicitly.
    """
    topology = _grid(size)
    config = ExperimentConfig(algorithm="protectionless", repeats=repeats, noise=noise)
    uncached = ExperimentConfig(
        algorithm="protectionless",
        repeats=repeats,
        noise=noise,
        use_schedule_cache=False,
    )
    cache_before = default_schedule_cache().stats()

    serial = ExperimentRunner(topology)
    serial_s, serial_outcome = _time(serial.run, config)

    with ParallelExperimentRunner(topology, workers=workers) as runner:
        # Warm the pool outside the timed region: pool start-up is a
        # one-off cost the sweep itself should not be charged for.
        runner.run(
            ExperimentConfig(
                algorithm="protectionless",
                repeats=workers,
                noise=noise,
                use_schedule_cache=False,
            )
        )
        parallel_s, parallel_outcome = _time(runner.run, uncached)

    # The identity re-sweep: same process, same cell — every schedule
    # build should now be a cache hit, and results must not change.
    resweep_s, resweep_outcome = _time(serial.run, config)

    stats_identical = asdict(serial_outcome.stats) == asdict(parallel_outcome.stats)
    results_identical = serial_outcome.results == parallel_outcome.results
    result = {
        "grid": f"{size}x{size}",
        "repeats": repeats,
        "workers": workers,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "resweep_seconds": round(resweep_s, 4),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "runs_per_second_serial": round(repeats / serial_s, 2),
        "runs_per_second_parallel": round(repeats / parallel_s, 2),
        "capture_ratio": serial_outcome.stats.capture_ratio,
        "stats_identical": stats_identical,
        "results_identical": results_identical,
        "resweep_identical": resweep_outcome.results == serial_outcome.results,
    }
    result.update(_cache_delta(cache_before))
    return result


def bench_scenario(name: str, repeats: int, workers: int) -> dict:
    """Serial vs parallel scenario sweep via the ScenarioRunner.

    The identity check is the strongest one the suite has: not just
    equal stats but byte-identical JSON reports (per-run rows,
    per-source breakdowns, first-capture aggregation and all).  The
    "parallel" leg goes through the worker policy, so on hosts where a
    pool cannot win (fewer cores than workers, tiny sweeps) it falls
    back to the serial engine — ``workers_effective`` records the
    policy's choice.  When that choice *is* the serial engine, both
    legs run identical code and the engine speedup is 1.0 by
    construction; ``speedup`` reports that structural value (the
    measured ratio of two identical runs is timer noise, which would
    make the tracked artifact flaky) while ``measured_ratio`` keeps the
    raw observation.
    """
    cache_before = default_schedule_cache().stats()
    serial = ScenarioRunner(workers=1)
    serial_s, serial_outcome = _time(serial.run, name, repeats)

    parallel = ScenarioRunner(workers=workers)
    effective = parallel.effective_workers(name, seeds=repeats)
    parallel_s, parallel_outcome = _time(parallel.run, name, repeats)

    measured = round(serial_s / parallel_s, 3) if parallel_s else None
    result = {
        "scenario": name,
        "repeats": repeats,
        "workers": workers,
        "workers_effective": effective,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": measured if effective > 1 else 1.0,
        "measured_ratio": measured,
        "runs_per_second_serial": round(repeats / serial_s, 2),
        "runs_per_second_parallel": round(repeats / parallel_s, 2),
        "capture_ratio": serial_outcome.stats.capture_ratio,
        "results_identical": serial_outcome.to_json() == parallel_outcome.to_json(),
    }
    result.update(_cache_delta(cache_before))
    return result


def bench_setup(size: int, builds: int) -> dict:
    """Cold schedule-construction throughput (cache disabled).

    Builds ``builds`` seeded protectionless + SLP schedule pairs
    through :meth:`ExperimentRunner.build_schedule` with the schedule
    cache off, so every build pays the full centralised pipeline
    (wave order, repair fixpoint, search, refinement).  This is the
    setup-phase half of a sweep's cost — the part the array-backed
    topology metrics move — tracked separately so the regression gate
    covers it even when sweep workloads are dominated by the kernel.
    """
    topology = _grid(size)
    runner = ExperimentRunner(topology)
    protectionless = ExperimentConfig(
        algorithm="protectionless", repeats=builds, use_schedule_cache=False
    )
    slp = ExperimentConfig(
        algorithm="slp", repeats=builds, use_schedule_cache=False
    )

    def build_all() -> int:
        for seed in range(builds):
            runner.build_schedule(protectionless, seed)
            runner.build_schedule(slp, seed)
        return 2 * builds

    elapsed, total = _time(build_all)
    return {
        "grid": f"{size}x{size}",
        "builds": total,
        "seconds": round(elapsed, 4),
        "builds_per_second": round(total / elapsed, 2),
    }


def bench_das_setup(size: int, setup_periods: int) -> dict:
    """One full message-level distributed DAS setup."""
    topology = _grid(size)
    config = PAPER.das_config(setup_periods=setup_periods)
    elapsed, result = _time(run_das_setup, topology, config=config, seed=0)
    return {
        "grid": f"{size}x{size}",
        "setup_periods": setup_periods,
        "seconds": round(elapsed, 4),
        "messages_sent": result.messages_sent,
        "messages_per_second": round(result.messages_sent / elapsed, 1),
    }


def bench_das_dissem(size: int, setup_periods: int) -> dict:
    """Distributed dissemination rounds: setup kernel vs legacy heap.

    Times one full Phase 1 gossip on the flat-round setup kernel
    (``messages_per_second`` is the tracked, gated number) and re-runs
    the identical cell on the legacy event-heap engine, verifying the
    two produce the same schedule, the same ``messages_sent`` and the
    same trace counters — the bench-side half of the setup kernel's
    bit-identity contract (``tests/test_fast_setup.py`` is the other).
    """
    from repro.simulator import trace as trace_kinds

    topology = _grid(size)
    config = PAPER.das_config(setup_periods=setup_periods)
    fast_s, fast = _time(
        run_das_setup, topology, config=config, seed=0, setup_kernel="fast"
    )
    legacy_s, legacy = _time(
        run_das_setup, topology, config=config, seed=0, setup_kernel="legacy"
    )

    def counts(result):
        kinds = (
            trace_kinds.SEND,
            trace_kinds.DELIVER,
            trace_kinds.DROP,
            trace_kinds.SLOT_ASSIGNED,
            trace_kinds.SLOT_CHANGED,
        )
        return {kind: result.simulator.trace.count(kind) for kind in kinds}

    identical = (
        fast.schedule.slots() == legacy.schedule.slots()
        and fast.schedule.parents() == legacy.schedule.parents()
        and fast.messages_sent == legacy.messages_sent
        and counts(fast) == counts(legacy)
    )
    return {
        "grid": f"{size}x{size}",
        "setup_periods": setup_periods,
        "seconds": round(fast_s, 4),
        "legacy_seconds": round(legacy_s, 4),
        "kernel_speedup": round(legacy_s / fast_s, 3) if fast_s else None,
        "messages_sent": fast.messages_sent,
        "messages_per_second": round(fast.messages_sent / fast_s, 1),
        "results_identical": identical,
    }


def bench_trace_heavy(size: int) -> dict:
    """Counting-only vs full-record tracing on one operational run."""
    from repro.app import run_operational_phase
    from repro.das import centralized_das_schedule

    topology = _grid(size)
    schedule = centralized_das_schedule(topology, num_slots=PAPER.num_slots, seed=0)

    counting_s, counting = _time(
        run_operational_phase, topology, schedule, seed=0, frame=PAPER.frame()
    )
    full_s, full = _time(
        run_operational_phase,
        topology,
        schedule,
        seed=0,
        frame=PAPER.frame(),
        trace_kinds=None,
    )
    return {
        "grid": f"{size}x{size}",
        "counting_only_seconds": round(counting_s, 4),
        "full_trace_seconds": round(full_s, 4),
        "counting_only_speedup": round(full_s / counting_s, 3) if counting_s else None,
        "outcome_identical": counting == full,
        "messages_sent": counting.messages_sent,
    }


def bench_telemetry(
    size: int, repeats: int, out_dir: Optional[Path] = None
) -> dict:
    """Telemetry on/off A/B on one serial sweep.

    Times the identical sweep twice: with the subsystem disabled (the
    gated no-op path every normal run takes — ``runs_per_second_serial``
    reports this leg, so the regression gate guards it) and under a
    :class:`~repro.telemetry.TelemetrySession` recording spans and
    metrics (``telemetry_overhead_fraction`` is the relative cost of
    the instrumented leg).  A warm-up sweep fills the schedule cache
    first so both legs are pure kernel work, and the two outcomes must
    be equal — telemetry never touches result bytes.  With ``out_dir``
    the instrumented leg also exports its artifacts there (CI uploads
    them).
    """
    from repro.telemetry import TelemetrySession

    topology = _grid(size)
    config = ExperimentConfig(algorithm="protectionless", repeats=repeats)
    runner = ExperimentRunner(topology)
    runner.run(config)  # warm-up: pay the schedule builds once

    off_s, off_outcome = _time(runner.run, config)

    session = TelemetrySession(directory=out_dir, label="bench.telemetry")
    with session:
        on_s, on_outcome = _time(runner.run, config)

    return {
        "grid": f"{size}x{size}",
        "repeats": repeats,
        "seconds_off": round(off_s, 4),
        "seconds_on": round(on_s, 4),
        "runs_per_second_serial": round(repeats / off_s, 2),
        "telemetry_overhead_fraction": round(on_s / off_s - 1.0, 4) if off_s else None,
        "spans_recorded": len(session.tracer.spans()),
        "results_identical": off_outcome.results == on_outcome.results,
    }


def workload_plan(
    workers: int, quick: bool, telemetry_dir: Optional[Path] = None
) -> List[Tuple[str, Callable[[], dict]]]:
    """The suite as an ordered (name, thunk) list, shared by the timed
    run and the profiler."""
    if quick:
        return [
            ("sweep11", lambda: bench_sweep(11, repeats=4, workers=workers)),
            ("setup7", lambda: bench_setup(7, builds=4)),
            ("das_setup", lambda: bench_das_setup(7, setup_periods=16)),
            ("das_dissem15", lambda: bench_das_dissem(15, setup_periods=20)),
            ("trace_heavy", lambda: bench_trace_heavy(7)),
            ("scenario", lambda: bench_scenario("two-sources", repeats=4, workers=workers)),
            ("telemetry", lambda: bench_telemetry(7, repeats=4, out_dir=telemetry_dir)),
        ]
    return [
        ("sweep11", lambda: bench_sweep(11, repeats=30, workers=workers)),
        ("sweep15", lambda: bench_sweep(15, repeats=20, workers=workers)),
        ("setup15", lambda: bench_setup(15, builds=10)),
        ("das_setup", lambda: bench_das_setup(11, setup_periods=30)),
        ("das_dissem15", lambda: bench_das_dissem(15, setup_periods=80)),
        ("trace_heavy", lambda: bench_trace_heavy(11)),
        ("scenario", lambda: bench_scenario("two-sources", repeats=20, workers=workers)),
        ("scenario_churn", lambda: bench_scenario("churn-10pct", repeats=20, workers=workers)),
        ("telemetry", lambda: bench_telemetry(15, repeats=20, out_dir=telemetry_dir)),
    ]


def cpu_model() -> str:
    """The CPU model string, best-effort across platforms."""
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine()


def host_fingerprint() -> dict:
    """What makes one host's throughput numbers comparable to another's.

    Stamped into every BENCH artifact's ``meta.host``; the regression
    gate compares fingerprints and *warns instead of failing* when the
    baseline came from different hardware or a different interpreter —
    a cross-host delta measures the machines, not the code.
    """
    return {
        "cpu_model": cpu_model(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
    }


def run_suite(
    workers: int, quick: bool, telemetry_dir: Optional[Path] = None
) -> dict:
    suite: dict = {
        "meta": {
            "date": time.strftime("%Y-%m-%d %H:%M:%S"),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "host": host_fingerprint(),
            "workers": workers,
            "quick": quick,
        },
        "workloads": {},
    }
    for name, thunk in workload_plan(workers, quick, telemetry_dir):
        suite["workloads"][name] = thunk()
    suite["meta"]["schedule_cache"] = default_schedule_cache().stats()
    return suite


def _without_profile_sections(text: str) -> str:
    """``text`` minus any previous profiler sections, so repeated
    ``--profile`` runs replace their own tables instead of accumulating
    in the tracked artifact file (the benchmark suite's sections are
    preserved verbatim; ``benchmarks/conftest.py`` applies the inverse
    filter through the same shared grammar)."""
    return artifact_sections.filter_sections(
        text, lambda title: not title.startswith(PROFILE_SECTION_PREFIX)
    )


def profile_suite(workers: int, quick: bool, artifacts: Path) -> dict:
    """Run every workload under cProfile and append the top-20
    cumulative hotspots per workload to ``artifacts`` (replacing the
    previous run's tables, preserving every other section)."""
    sections = [
        "",
        artifact_sections.BAR,
        f"{PROFILE_SECTION_PREFIX} ({time.strftime('%Y-%m-%d %H:%M:%S')}, "
        f"{'quick' if quick else 'full'} suite, workers={workers})",
        artifact_sections.BAR,
    ]
    suite: dict = {"meta": {"profiled": True, "quick": quick}, "workloads": {}}
    for name, thunk in workload_plan(workers, quick):
        profiler = cProfile.Profile()
        profiler.enable()
        suite["workloads"][name] = thunk()
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.sort_stats("cumulative").print_stats(20)
        sections.append(f"\n---- workload: {name} (top 20 by cumulative time) ----")
        sections.append(stream.getvalue().rstrip())
    existing = artifacts.read_text() if artifacts.exists() else ""
    atomic_write_text(
        artifacts,
        _without_profile_sections(existing) + "\n".join(sections) + "\n",
    )
    return suite


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def workload_throughput(data: dict) -> Optional[float]:
    """One higher-is-better number per workload, for PR-over-PR deltas.

    Seed sweeps and scenarios report serial runs/second (the number the
    single-run optimisations move; pool speedup is hardware-bound), the
    cold setup workload schedule builds/second, the distributed setup
    messages/second, and the trace workload the inverse of its
    counting-only run time.
    """
    for key in ("runs_per_second_serial", "builds_per_second", "messages_per_second"):
        value = data.get(key)
        if value:
            return float(value)
    seconds = data.get("counting_only_seconds")
    if seconds:
        return 1.0 / float(seconds)
    return None


def find_previous_bench(quick: bool, exclude: Path) -> Optional[Path]:
    """The most recent prior ``BENCH_*.json`` of the same mode."""
    candidates = []
    for path in REPO_ROOT.glob("BENCH_*.json"):
        if path.resolve() == exclude.resolve():
            continue
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if bool(data.get("meta", {}).get("quick")) != quick:
            continue
        if data.get("meta", {}).get("profiled"):
            continue
        candidates.append((path.stat().st_mtime, path))
    if not candidates:
        return None
    return max(candidates)[1]


def compare_with_previous(
    suite: dict, previous: dict, threshold: float
) -> Tuple[List[str], List[str]]:
    """Per-workload delta lines and the workloads breaching ``threshold``."""
    lines = [
        f"{'workload':<16} {'previous':>12} {'current':>12} {'delta':>8}",
        "-" * 52,
    ]
    regressions: List[str] = []
    for name, data in suite["workloads"].items():
        current = workload_throughput(data)
        prior_data = previous.get("workloads", {}).get(name)
        prior = workload_throughput(prior_data) if prior_data else None
        if current is None or prior is None:
            lines.append(f"{name:<16} {'-':>12} {'-':>12} {'n/a':>8}")
            continue
        delta = current / prior - 1.0
        lines.append(
            f"{name:<16} {prior:>12.2f} {current:>12.2f} {delta:>+7.1%}"
        )
        if delta < -threshold:
            regressions.append(name)
    return lines, regressions


def default_output_path() -> Path:
    """``BENCH_<date>.json``, suffixed (b, c, …) rather than clobbering
    an existing same-day artifact — the prior file is the regression
    baseline and part of the tracked perf history."""
    stamp = time.strftime("%Y%m%d")
    path = REPO_ROOT / f"BENCH_{stamp}.json"
    suffix = "b"
    while path.exists():
        path = REPO_ROOT / f"BENCH_{stamp}{suffix}.json"
        suffix = chr(ord(suffix) + 1)
    return path


def run_chaos(workers: int) -> int:
    """Quick supervised-execution drill: inject a transient failure, a
    worker crash and a poison seed into one small sweep and check the
    recovery contract — survivors identical to a fault-free serial
    sweep, only the poison seed quarantined.  Used as a fast CI leg
    (``--chaos``); writes no BENCH json and runs no timing gate.
    """
    import tempfile

    topology = GridTopology(7)
    config = ExperimentConfig(algorithm="protectionless", repeats=10, base_seed=0)
    serial = ExperimentRunner(topology).run(config)
    with tempfile.TemporaryDirectory() as markers:
        plan = FaultPlan(
            transient_seeds=(1,),
            crash_seeds=(4,),
            poison_seeds=(7,),
            marker_dir=markers,
        )
        with plan.activated():
            with ParallelExperimentRunner(
                topology,
                workers=max(workers, 2),
                retry_policy=RetryPolicy(max_attempts=4, base_delay=0.01),
                chunk_timeout=60.0,
            ) as runner:
                outcome = runner.run(config)
    quarantined = [f.seed for f in outcome.failures]
    expected = tuple(r for i, r in enumerate(serial.results) if i != 7)
    checks = {
        "quarantined_only_poison": quarantined == [7],
        "survivors_identical": outcome.results == expected,
        "stats_cover_survivors": outcome.stats.runs == config.repeats - 1,
    }
    for name, passed in checks.items():
        print(f"chaos {name}: {'ok' if passed else 'FAILED'}", file=sys.stderr)
    if not all(checks.values()):
        print(f"CHAOS CHECK FAILED: {outcome.failures}", file=sys.stderr)
        return 1
    print("chaos drill passed", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=workers_argument,
        default=4,
        help="pool size for the parallel sweeps (default 4; 0 = one per CPU)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: tiny workloads, seconds not minutes (used by CI)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output path (default: BENCH_<date>.json in the repo root)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each workload under cProfile and append top-20 hotspot "
        "tables to benchmark_artifacts.txt (no BENCH json, no gate)",
    )
    parser.add_argument(
        "--no-regression-check",
        action="store_true",
        help="skip the throughput comparison against the prior BENCH "
        "artifact (for known-noisy environments)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="explicit prior BENCH json to compare against (default: the "
        "most recent BENCH_*.json of the same mode in the repo root)",
    )
    parser.add_argument(
        "--regression-threshold",
        type=float,
        default=REGRESSION_THRESHOLD,
        help="fractional throughput loss that fails the run (default 0.15)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the supervised-execution chaos drill instead of the "
        "timing suite (no BENCH json, no gate)",
    )
    parser.add_argument(
        "--telemetry-out",
        type=Path,
        default=None,
        metavar="DIR",
        help="export the telemetry workload's spans.jsonl/trace.json/"
        "metrics.json under DIR (CI uploads them as artifacts)",
    )
    args = parser.parse_args(argv)

    if args.chaos:
        return run_chaos(args.workers)

    if args.profile:
        suite = profile_suite(args.workers, args.quick, ARTIFACTS)
        print(f"wrote hotspot tables to {ARTIFACTS}", file=sys.stderr)
    else:
        suite = run_suite(
            workers=args.workers,
            quick=args.quick,
            telemetry_dir=args.telemetry_out,
        )

    failures = [
        name
        for name, data in suite["workloads"].items()
        if any(
            key.endswith("identical") and value is False
            for key, value in data.items()
        )
    ]

    if args.profile:
        if failures:
            print(f"IDENTITY CHECK FAILED for: {failures}", file=sys.stderr)
            return 1
        return 0

    out = args.out if args.out is not None else default_output_path()
    previous_path = (
        args.baseline
        if args.baseline is not None
        else find_previous_bench(args.quick, exclude=out)
    )
    atomic_write_text(out, json.dumps(suite, indent=2, sort_keys=True) + "\n")

    print(json.dumps(suite, indent=2, sort_keys=True))
    print(f"\nwrote {out}", file=sys.stderr)

    exit_code = 0
    if failures:
        print(f"IDENTITY CHECK FAILED for: {failures}", file=sys.stderr)
        exit_code = 1

    if args.no_regression_check:
        print("regression check skipped (--no-regression-check)", file=sys.stderr)
    elif previous_path is None:
        print(
            "regression check skipped: no prior BENCH_*.json for this mode",
            file=sys.stderr,
        )
    else:
        previous = json.loads(previous_path.read_text())
        lines, regressions = compare_with_previous(
            suite, previous, args.regression_threshold
        )
        print(f"\ndeltas vs {previous_path.name}:", file=sys.stderr)
        for line in lines:
            print(line, file=sys.stderr)
        if regressions:
            baseline_host = previous.get("meta", {}).get("host")
            current_host = suite.get("meta", {}).get("host")
            if baseline_host != current_host:
                # Different hardware or interpreter (or a pre-fingerprint
                # baseline): the delta measures the host, not the code.
                print(
                    f"WARNING: >{args.regression_threshold:.0%} throughput "
                    f"loss in {regressions}, but the baseline's host "
                    f"fingerprint differs ({baseline_host} vs "
                    f"{current_host}) — not failing the gate",
                    file=sys.stderr,
                )
            else:
                print(
                    f"REGRESSION: >{args.regression_threshold:.0%} throughput loss "
                    f"in: {regressions}",
                    file=sys.stderr,
                )
                exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
