#!/usr/bin/env python
"""End-to-end smoke drill for the multi-host worker transport (CI leg).

The remote analogue of ``service_smoke.py``, against *real processes*:

1. start a remote-mode service as a subprocess
   (``repro service start --remote``) with a short lease timeout;
2. submit the paper-baseline sweep over HTTP;
3. start worker 1 (``repro worker start --connect``); a
   :class:`~repro.experiments.FaultPlan` in its environment wedges it
   mid-shard (``hang_seeds`` — the marker file proves the hang started,
   i.e. the worker holds a lease with seeds still missing);
4. ``SIGKILL`` worker 1 — no drain, no release, no goodbye;
5. start worker 2; the stalled lease is revoked blame-free, the shard
   re-queued, and worker 2 finishes only the missing seeds;
6. poll to completion and diff the served report against a direct
   in-process ``ScenarioRunner`` run — the bytes must be identical;
7. ``SIGTERM`` worker 2 and require a graceful zero-exit drain.

Exit code 0 iff every check passes.  No timing, no BENCH json: this is
a correctness drill for the lease board's partition-tolerance story.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import FAULT_PLAN_ENV, FaultPlan  # noqa: E402
from repro.scenarios import ScenarioRunner  # noqa: E402
from repro.service import ServiceClient, ServiceError  # noqa: E402

SEEDS = 8
HANG_SEED = 3  # worker 1 wedges before this seed, provably mid-shard
LEASE_TIMEOUT = 2.0  # seconds of stall before the board revokes


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_service(data_dir: Path, port: int, env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "service", "start",
            "--remote",
            "--data-dir", str(data_dir),
            "--port", str(port),
            "--shard-timeout", str(LEASE_TIMEOUT),
            "--max-attempts", "3",
        ],
        env=env,
        cwd=REPO_ROOT,
    )


def start_worker(url: str, worker_id: str, env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "worker", "start",
            "--connect", url,
            "--id", worker_id,
            "--poll", "0.05",
        ],
        env=env,
        cwd=REPO_ROOT,
    )


def wait_for_health(client: ServiceClient, deadline: float) -> None:
    while True:
        try:
            client.health()
            return
        except ServiceError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


def main() -> int:
    checks: dict = {}

    def check(name: str, passed: bool) -> None:
        checks[name] = passed
        print(f"remote {name}: {'ok' if passed else 'FAILED'}", file=sys.stderr)

    direct = ScenarioRunner().run("paper-baseline", seeds=SEEDS)
    expected = direct.to_json() + "\n"

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        data_dir = tmp_path / "service-data"
        marker_dir = tmp_path / "markers"
        plan = FaultPlan(
            hang_seeds=(HANG_SEED,),
            hang_seconds=600.0,  # far past every deadline: a real wedge
            marker_dir=str(marker_dir),
        )
        env = dict(os.environ)
        env[FAULT_PLAN_ENV] = plan.to_env()
        env["PYTHONPATH"] = str(REPO_ROOT / "src")

        port = free_port()
        url = f"http://127.0.0.1:{port}"
        client = ServiceClient(url, timeout=10.0)
        hang_marker = marker_dir / f"hang-{HANG_SEED}"

        service = start_worker_1 = worker_2 = None
        try:
            service = start_service(data_dir, port, env)
            wait_for_health(client, time.monotonic() + 30.0)

            job = client.submit(
                {"scenario": "paper-baseline", "seeds": SEEDS}
            )["job"]

            # --- Worker 1 claims, wedges mid-shard, and is SIGKILLed.
            start_worker_1 = start_worker(url, "victim", env)
            deadline = time.monotonic() + 60.0
            while not hang_marker.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            check("worker_wedged_mid_shard", hang_marker.exists())
            start_worker_1.kill()  # SIGKILL: no drain, no lease release
            start_worker_1.wait(timeout=30.0)
            check(
                "worker_died_by_sigkill",
                start_worker_1.returncode == -signal.SIGKILL,
            )

            # --- Worker 2 takes over once the stalled lease is revoked.
            # (It inherits the fault plan, but the hang marker already
            # exists, so the once-only fault does not re-fire.)
            worker_2 = start_worker(url, "rescuer", env)
            deadline = time.monotonic() + 300.0
            while True:
                status = client.status(job)
                if status["state"] in ("done", "failed", "quarantined"):
                    break
                if time.monotonic() > deadline:
                    break
                time.sleep(0.2)
            check("job_done_after_sigkill", status["state"] == "done")
            revoked = (
                status.get("metrics", {})
                .get("counters", {})
                .get("service.leases.revoked", 0)
            )
            check("stalled_lease_was_revoked", revoked >= 1)

            served = client.result_text(job)
            check("report_byte_identical_to_direct_run", served == expected)

            # --- Graceful drain: SIGTERM must exit 0, not crash out.
            worker_2.terminate()
            worker_2.wait(timeout=30.0)
            check("sigterm_drains_gracefully", worker_2.returncode == 0)
        finally:
            for process in (start_worker_1, worker_2, service):
                if process is not None and process.poll() is None:
                    process.terminate()
                    try:
                        process.wait(timeout=15.0)
                    except subprocess.TimeoutExpired:
                        process.kill()
                        process.wait()

    if not all(checks.values()):
        failed = [name for name, passed in checks.items() if not passed]
        print(f"REMOTE SMOKE FAILED: {failed}", file=sys.stderr)
        return 1
    print("remote smoke drill passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
