#!/usr/bin/env python
"""End-to-end smoke drill for the resilient sweep service (CI leg).

Runs the full robustness story against *real processes*:

1. start the service as a subprocess (``repro service start``);
2. submit the paper-baseline sweep over HTTP, plus a duplicate (must
   dedup) and a malformed submission (must 400);
3. a :class:`~repro.experiments.FaultPlan` in the subprocess
   environment kills a shard worker mid-job (``crash_seeds``) and then
   halts the whole service mid-job (``halt_seeds`` — the ``kill -9``
   stand-in, leaving the job record ``running``);
4. restart the service over the same ``--data-dir``; recovery re-queues
   the job and the shard scheduler finishes only the missing seeds;
5. poll to completion and diff the served report against a direct
   in-process ``ScenarioRunner`` run — the bytes must be identical.

Exit code 0 iff every check passes.  No timing, no BENCH json: this is
a correctness drill, shaped like ``bench.py --chaos`` but one layer up.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments import FAULT_PLAN_ENV, FaultPlan  # noqa: E402
from repro.scenarios import ScenarioRunner  # noqa: E402
from repro.service import ServiceClient, ServiceError  # noqa: E402

SEEDS = 8
CRASH_SEED = 2  # a shard worker dies here (BrokenProcessPool drill)
HALT_SEED = 5  # the whole service "dies" before this seed's shard


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_service(data_dir: Path, port: int, env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "service", "start",
            "--data-dir", str(data_dir),
            "--port", str(port),
            "--shard-workers", "2",
            "--max-attempts", "3",
        ],
        env=env,
        cwd=REPO_ROOT,
    )


def wait_for_health(client: ServiceClient, deadline: float) -> None:
    while True:
        try:
            client.health()
            return
        except ServiceError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


def main() -> int:
    checks: dict = {}

    def check(name: str, passed: bool) -> None:
        checks[name] = passed
        print(f"service {name}: {'ok' if passed else 'FAILED'}", file=sys.stderr)

    direct = ScenarioRunner().run("paper-baseline", seeds=SEEDS)
    expected = direct.to_json() + "\n"

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        data_dir = tmp_path / "service-data"
        plan = FaultPlan(
            crash_seeds=(CRASH_SEED,),
            halt_seeds=(HALT_SEED,),
            marker_dir=str(tmp_path / "markers"),
        )
        env = dict(os.environ)
        env[FAULT_PLAN_ENV] = plan.to_env()
        env["PYTHONPATH"] = str(REPO_ROOT / "src")

        port = free_port()
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=10.0)

        # --- First life: submit, lose a worker, then lose the service.
        process = start_service(data_dir, port, env)
        try:
            wait_for_health(client, time.monotonic() + 30.0)

            try:
                client.submit({"scenario": "no-such-scenario"})
                check("malformed_submission_is_400", False)
            except ServiceError as exc:
                check("malformed_submission_is_400", exc.status == 400)

            submitted = client.submit(
                {"scenario": "paper-baseline", "seeds": SEEDS}
            )
            job = submitted["job"]
            check("submission_created", submitted["created"] is True)
            duplicate = client.submit(
                {"scenario": "paper-baseline", "seeds": SEEDS}
            )
            check(
                "duplicate_dedups",
                duplicate["created"] is False and duplicate["job"] == job,
            )

            # The injected halt stops the service mid-job; the CLI loop
            # notices, drains and exits on its own — that exit is the
            # drill's "the process died" event.
            process.wait(timeout=120.0)
            check("service_died_mid_job", process.returncode == 0)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

        fired = {p.name for p in (tmp_path / "markers").glob("*")}
        check("worker_kill_fired", f"crash-{CRASH_SEED}" in fired)
        check("service_halt_fired", f"halt-{HALT_SEED}" in fired)

        # --- Second life: same data dir, recovery finishes the job.
        process = start_service(data_dir, port, env)
        try:
            wait_for_health(client, time.monotonic() + 30.0)
            deadline = time.monotonic() + 300.0
            while True:
                status = client.status(job)
                if status["state"] in ("done", "failed", "quarantined"):
                    break
                if time.monotonic() > deadline:
                    break
                time.sleep(0.2)
            check("resumed_job_done", status["state"] == "done")
            served = client.result_text(job)
            check("report_byte_identical_to_direct_run", served == expected)
        finally:
            process.terminate()
            try:
                process.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

    if not all(checks.values()):
        failed = [name for name, passed in checks.items() if not passed]
        print(f"SERVICE SMOKE FAILED: {failed}", file=sys.stderr)
        return 1
    print("service smoke drill passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
