#!/usr/bin/env python
"""A tour of the declarative scenario subsystem, via its CLI.

PR 1 gave the reproduction a parallel sweep engine; the scenario
subsystem gives it workloads beyond the paper's single static source:
multiple simultaneous sources, a mobile source rotating through the
grid corners, node churn and duty-cycled regions, and the promoted
attacker spectrum of ``attacker_gallery.py`` — all as named, frozen
:class:`~repro.scenarios.ScenarioSpec` entries swept through the same
``ExperimentRunner``/``ParallelExperimentRunner`` machinery with
bit-identical serial/parallel results.

This example drives everything through the ``repro-slp-das scenario``
CLI, exactly as a shell user would:

* ``scenario list`` — the registry;
* ``scenario run two-sources`` — a JSON report with per-source capture
  ratios and first-capture aggregation;
* ``scenario compare`` — capture ratios across workloads, side by side.

Run: ``python examples/scenario_gallery.py``
"""

import json
import io
from contextlib import redirect_stdout

from repro.cli import main as cli_main
from repro.scenarios import ScenarioRunner, get_scenario

SEEDS = 8


def run_cli(*argv: str) -> str:
    """Invoke the CLI in-process and return its stdout."""
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli_main(list(argv))
    assert code == 0, f"CLI exited {code} for {argv}"
    return buffer.getvalue()


def main() -> None:
    print("=== repro-slp-das scenario list ===\n")
    print(run_cli("scenario", "list"))

    print(f"=== scenario run two-sources --seeds {SEEDS} ===\n")
    report = json.loads(
        run_cli("scenario", "run", "two-sources", "--seeds", str(SEEDS))
    )
    stats = report["stats"]
    print(
        f"two sources at nodes {report['workload']['sources']}: "
        f"capture ratio {stats['capture_ratio']:.2f} "
        f"over {stats['runs']} seeds"
    )
    for entry in report["per_source"]:
        print(
            f"  source {entry['source']:>3}: "
            f"{entry['captures']}/{entry['runs']} captures "
            f"({entry['capture_ratio']:.2f})"
        )
    first = report["first_capture"]
    print(f"  first capture: mean period {first['mean_capture_period']}\n")

    print(f"=== scenario compare (selected) --seeds {SEEDS} ===\n")
    print(
        run_cli(
            "scenario",
            "compare",
            "paper-baseline",
            "paper-baseline-slp",
            "two-sources",
            "mobile-source",
            "churn-10pct",
            "strong-attacker",
            "--seeds",
            str(SEEDS),
        )
    )

    # The same sweeps are available as a library, one call deep.
    spec = get_scenario("mobile-source")
    outcome = ScenarioRunner().run(spec, seeds=SEEDS)
    print(
        f"\nlibrary API: {spec.name!r} ({spec.workload_kind()}) -> "
        f"capture ratio {outcome.stats.capture_ratio:.2f}, "
        f"captured sources "
        f"{sorted({r.captured_source for r in outcome.results if r.captured})}"
    )
    print("\nReading: a second source, a moving asset, or a stronger")
    print("attacker all raise the capture ratio against the same grids;")
    print("the SLP refinement keeps protecting the primary source.")


if __name__ == "__main__":
    main()
