#!/usr/bin/env python
"""The panda-hunter game: the paper's motivating scenario, visualised.

A WSN monitors a protected habitat (§I: asset monitoring, animal
poaching).  The node that detects the animal — the *source*, top-left
corner — reports once per TDMA period toward the base station at the
centre.  A poacher lurks at the base station and backtracks
transmissions hop by hop.

The script runs the scenario twice on a 15x15 grid under casino-lab
noise — once with protectionless DAS, once with the SLP-aware DAS —
and draws both pursuits.

Run: ``python examples/panda_hunter.py [seed]``
"""

import sys

from repro import (
    CasinoLabNoise,
    SlpParameters,
    build_slp_schedule,
    centralized_das_schedule,
    paper_grid,
    run_operational_phase,
)
from repro.visualize import render_attacker_path, render_roles


def pursue(grid, schedule, label, seed, decoy=(), search=()):
    run = run_operational_phase(
        grid, schedule, noise=CasinoLabNoise(), seed=seed
    )
    print(f"--- {label} ---")
    if run.captured:
        print(f"POACHED: the attacker reached the panda in period "
              f"{run.capture_period} (budget {run.safety_periods}).")
    else:
        print(f"SAFE: the safety period ({run.safety_periods} periods) "
              f"expired with the attacker {len(run.attacker_path) - 1} moves "
              "into the network.")
    print(render_roles(
        grid,
        attacker_path=run.attacker_path,
        decoy_path=decoy,
        search_path=search,
    ))
    print(f"pursuit: {render_attacker_path(grid, run.attacker_path)}")
    print()
    return run


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    grid = paper_grid(15)
    print(f"habitat: {grid.name}; panda at node {grid.source} (top-left), "
          f"base station at node {grid.sink} (centre); seed {seed}\n")

    baseline = centralized_das_schedule(grid, seed=seed)
    pursue(grid, baseline, "protectionless DAS", seed)

    build = build_slp_schedule(
        grid, SlpParameters(search_distance=3), seed=seed, baseline=baseline
    )
    print(f"(SLP refinement planted a {len(build.refinement.decoy_path)}-node "
          f"decoy path from node {build.search.start_node})\n")
    pursue(
        grid,
        build.schedule,
        "SLP-aware DAS",
        seed,
        decoy=build.refinement.decoy_path,
        search=build.search.path,
    )


if __name__ == "__main__":
    main()
