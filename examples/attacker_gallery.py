#!/usr/bin/env python
"""A gallery of (R, H, M, s0, D)-attackers against the same schedules.

The paper's attacker model (Figure 1) is deliberately parameterised:
"This parameterised attacker allows the development and understanding
of attackers of various strengths."  This example exercises that
generality — the same protectionless and SLP-refined schedule pair is
verified against a spectrum of eavesdroppers, from the paper's
(1, 0, 1, s0, first-heard) up to multi-message, multi-move attackers
with location memory.

Run: ``python examples/attacker_gallery.py``
"""

from repro import (
    PAPER,
    AttackerSpec,
    AvoidRecentlyVisited,
    FollowAnyHeard,
    FollowFirstHeard,
    SlpParameters,
    build_slp_schedule,
    centralized_das_schedule,
    paper_grid,
    safety_period,
    verify_schedule,
)

GALLERY = [
    AttackerSpec(1, 0, 1, FollowFirstHeard()),   # the paper's attacker
    AttackerSpec(2, 0, 1, FollowAnyHeard()),     # hears two, picks either
    AttackerSpec(2, 0, 2, FollowAnyHeard()),     # may also move twice
    AttackerSpec(3, 0, 2, FollowAnyHeard()),     # wide hearing, two moves
    AttackerSpec(1, 2, 1, AvoidRecentlyVisited()),  # anti-oscillation memory
    AttackerSpec(1, 4, 1, AvoidRecentlyVisited()),  # longer memory
]

SEEDS = 25


def main() -> None:
    grid = paper_grid(11)
    delta = safety_period(grid, PAPER.frame().period_length).periods
    print(f"{grid.name}; safety period {delta} periods; {SEEDS} seeds per row\n")

    pairs = []
    for seed in range(SEEDS):
        base = centralized_das_schedule(grid, seed=seed)
        refined = build_slp_schedule(
            grid, SlpParameters(3), seed=seed, baseline=base
        ).schedule
        pairs.append((base, refined))

    header = f"{'attacker':<38} {'protectionless':>15} {'SLP DAS':>9}"
    print(header)
    print("-" * len(header))
    for spec in GALLERY:
        base_caps = sum(
            not verify_schedule(grid, b, delta, attacker=spec).slp_aware
            for b, _ in pairs
        )
        slp_caps = sum(
            not verify_schedule(grid, r, delta, attacker=spec).slp_aware
            for _, r in pairs
        )
        print(
            f"{spec.describe():<38} "
            f"{100 * base_caps / SEEDS:>14.1f}% "
            f"{100 * slp_caps / SEEDS:>8.1f}%"
        )

    print("\nReading: rows further down are stronger attackers; the SLP")
    print("column should stay below the protectionless column while both")
    print("rise with attacker strength.")


if __name__ == "__main__":
    main()
