#!/usr/bin/env python
"""The full message-level 3-phase distributed protocol, end to end.

Unlike the quickstart (which uses the seeded centralised pipeline),
this demo runs the actual guarded-command protocols of Figures 2-4
inside the discrete event simulator: HELLO beacons, DISSEM gossip with
2-hop collision resolution, the SEARCH hops of the node locator, the
CHANGE chain of the slot refinement, and the Normal=0 update cascade —
then validates the emerging schedule against the formal definitions
and accounts for every message sent.

Run: ``python examples/distributed_protocol_demo.py``
"""

from repro import (
    DasProtocolConfig,
    SlpProtocolConfig,
    check_strong_das,
    check_weak_das,
    paper_grid,
    run_das_setup,
    run_slp_setup,
)
from repro.visualize import render_slot_grid


def main() -> None:
    grid = paper_grid(11)
    das_cfg = DasProtocolConfig(setup_periods=60)  # paper MSP is 80

    print("Phase 1 (Figure 2): distributed DAS slot assignment")
    baseline = run_das_setup(grid, config=das_cfg, seed=4)
    print(f"  {baseline.messages_sent} broadcasts over {baseline.rounds} rounds")
    print(f"  {check_strong_das(grid, baseline.schedule).summary()}")

    print("\nPhases 1+2+3 (Figures 2-4): SLP DAS")
    slp_cfg = SlpProtocolConfig(
        das=das_cfg,
        search_distance=3,
        change_length=max(1, grid.source_sink_distance() - 3),
        refinement_periods=20,
    )
    slp = run_slp_setup(grid, config=slp_cfg, seed=4)
    print(f"  {slp.messages_sent} broadcasts total")
    print(f"  Phase 2 SEARCH messages: {slp.search_messages}")
    print(f"  Phase 3 CHANGE messages: {slp.change_messages}")
    print(f"  start node: {slp.start_node}; decoy nodes: {slp.decoy_path}")
    print(f"  {check_weak_das(grid, slp.schedule).summary()}")

    extra = slp.messages_sent - baseline.messages_sent
    print(f"\nmessage overhead: +{extra} broadcasts "
          f"({100 * extra / baseline.messages_sent:+.1f}%) — "
          "the paper's 'negligible overhead' claim")

    print("\nrefined slot landscape (compressed; decoy path in [ ]):")
    print(render_slot_grid(grid, slp.schedule.compressed(), highlight=slp.decoy_path))


if __name__ == "__main__":
    main()
