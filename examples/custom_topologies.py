#!/usr/bin/env python
"""SLP-aware DAS beyond the paper's grids.

The algorithms only assume an undirected connected graph (§III-A), so
the same pipeline runs on any deployment shape.  This example builds
protectionless and SLP-aware schedules on a random unit-disk network
(the paper's communication model with uniformly scattered nodes) and a
ring, validates them, and reports capture verdicts.

It also demonstrates graceful failure: a pure line topology offers no
spare potential parents, so Phase 2 correctly refuses to pick a
redirection node rather than emitting a broken schedule.

Run: ``python examples/custom_topologies.py``
"""

from repro import (
    ProtocolError,
    RingTopology,
    SlpParameters,
    build_slp_schedule,
    centralized_das_schedule,
    check_strong_das,
    check_weak_das,
    minimum_capture_period,
    random_geometric_topology,
)
from repro.topology import LineTopology


def report(topology, search_distance=2) -> None:
    print(f"--- {topology.name}: {topology.num_nodes} nodes, "
          f"{topology.num_edges} links, "
          f"source-sink distance {topology.source_sink_distance()} hops ---")
    baseline = centralized_das_schedule(topology, seed=7)
    print(f"  baseline: {check_strong_das(topology, baseline).summary()}")
    base_capture = minimum_capture_period(topology, baseline)
    print(f"  baseline capture time: "
          f"{base_capture if base_capture is not None else 'never (stranded)'}")

    build = build_slp_schedule(
        topology, SlpParameters(search_distance=search_distance), seed=7,
        baseline=baseline,
    )
    print(f"  refined:  {check_weak_das(topology, build.schedule).summary()}")
    slp_capture = minimum_capture_period(topology, build.schedule)
    print(f"  refined capture time:  "
          f"{slp_capture if slp_capture is not None else 'never (stranded)'}")
    print()


def main() -> None:
    scattered = random_geometric_topology(
        num_nodes=60,
        area_side=60.0,
        communication_range=13.0,
        seed=21,
    )
    report(scattered)

    report(RingTopology(16), search_distance=2)

    line = LineTopology(10)
    print(f"--- {line.name}: degenerate case ---")
    try:
        build_slp_schedule(line, SlpParameters(search_distance=2), seed=0)
    except ProtocolError as exc:
        print(f"  Phase 2 refused, as it must: {exc}")


if __name__ == "__main__":
    main()
