#!/usr/bin/env python
"""Quickstart: build, refine, verify and simulate in ~40 lines.

Reproduces the paper's pipeline on the 11x11 evaluation grid:

1. generate a protectionless DAS schedule (Phase 1, centralised form);
2. refine it into an SLP-aware schedule (Phases 2-3);
3. check both against the formal definitions (Defs. 2-3);
4. run VerifySchedule (Algorithm 1) against the paper's attacker;
5. simulate one operational run of each and compare.

Run: ``python examples/quickstart.py``
"""

from repro import (
    PAPER,
    SlpParameters,
    build_slp_schedule,
    centralized_das_schedule,
    check_strong_das,
    check_weak_das,
    paper_grid,
    run_operational_phase,
    safety_period,
    verify_schedule,
)


def main() -> None:
    grid = paper_grid(11)
    print(f"network: {grid.name}, source={grid.source}, sink={grid.sink}, "
          f"source-sink distance = {grid.source_sink_distance()} hops")

    # 1. Protectionless DAS (Phase 1).
    baseline = centralized_das_schedule(grid, seed=18)
    print(f"\nbaseline: {check_strong_das(grid, baseline).summary()}")

    # 2. SLP refinement (Phases 2-3).
    build = build_slp_schedule(grid, SlpParameters(search_distance=3),
                               seed=18, baseline=baseline)
    print(f"refined:  {check_weak_das(grid, build.schedule).summary()}")
    print(f"decoy path: {build.refinement.decoy_path} "
          f"(start node {build.search.start_node}, "
          f"{build.slots_changed} slots changed)")

    # 3. Safety period (Eq. 1) and VerifySchedule (Algorithm 1).
    delta = safety_period(grid, PAPER.frame().period_length)
    print(f"\nsafety period: {delta.seconds:.1f} s = {delta.periods} periods")
    for name, schedule in (("baseline", baseline), ("SLP", build.schedule)):
        verdict = verify_schedule(grid, schedule, delta.periods)
        if verdict.slp_aware:
            print(f"  {name}: delta-SLP-aware (True, ⊥, {verdict.periods})")
        else:
            trace = " -> ".join(map(str, verdict.counterexample))
            print(f"  {name}: captured in {verdict.periods} periods via {trace}")

    # 4. One simulated run each (ideal links; seed the noise for repeats).
    print("\noperational runs:")
    for name, schedule in (("baseline", baseline), ("SLP", build.schedule)):
        run = run_operational_phase(grid, schedule, seed=18)
        outcome = (
            f"captured in period {run.capture_period}"
            if run.captured
            else f"survived all {run.periods_run} periods"
        )
        print(f"  {name}: {outcome}; aggregation {run.aggregation_ratio:.0%}, "
              f"{run.messages_sent} data messages")


if __name__ == "__main__":
    main()
