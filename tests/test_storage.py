"""Crash-consistent storage under injected disk faults.

The contracts under test, in increasing order of violence:

* the durable-IO seam's primitives: atomic replace (the target never
  holds half an artefact), durable append (one record per write,
  torn-tail welding), and the fsync policy switch;
* checkpoint lines carry a content digest — corruption at rest is
  skipped on load, never parsed into a wrong result;
* the storage chaos kinds (torn/short/enospc/readonly/corrupt) fire
  inside the seam, deterministically, once-only where promised;
* a CLI sweep hitting ENOSPC fails loudly with the dedicated storage
  exit code — distinct from quarantine;
* the service under disk pressure 503s new submissions while claimed
  work completes, and self-heals once writes succeed again;
* ``repro service fsck`` finds every inconsistency a crash can leave
  (and ``--repair`` demotes/prunes so a restart reconverges to
  byte-identical reports);
* satellites: bearer-token auth on mutating endpoints, the
  ``GET /workers`` fleet view, batched seed uploads, and telemetry
  export failure never costing a run its results.
"""

from __future__ import annotations

import errno
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import EXIT_STORAGE, main
from repro.errors import StorageError
from repro.experiments import (
    FaultPlan,
    RetryPolicy,
    SweepCheckpoint,
    decode_checkpoint_line,
    encode_checkpoint_line,
    result_to_dict,
)
from repro.scenarios import ScenarioRunner
from repro.service import (
    DONE,
    QUEUED,
    ServiceClient,
    ServiceError,
    ShardWorker,
    SweepService,
    TransportError,
    WorkerTransport,
    fsck_data_dir,
)
from repro.storage import (
    FSYNC_ENV,
    atomic_write_bytes,
    atomic_write_text,
    durable_append,
    fsync_enabled,
)
from repro.telemetry import TelemetrySession

SEEDS = 5
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.002)


@pytest.fixture(scope="module")
def direct():
    """The uninterrupted serial run every faulted path must reproduce."""
    return ScenarioRunner().run("paper-baseline", seeds=SEEDS)


def start_service(tmp_path, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    return SweepService(
        tmp_path / "svc", port=0, shard_workers=2, **kwargs
    ).start()


def start_remote_service(tmp_path, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("shard_timeout", 20.0)
    kwargs.setdefault("shards_per_job", 2)
    kwargs.setdefault("poll_interval", 0.01)
    return SweepService(
        tmp_path / "svc", port=0, remote=True, **kwargs
    ).start()


def wait_for(predicate, timeout=60.0, poll=0.02):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition not reached in time"
        time.sleep(poll)


def post_json(url, payload, token=None):
    """A raw HTTP POST returning ``(status, document)`` — no client
    retry machinery, so auth and 503 answers can be asserted exactly."""
    headers = {"Content-Type": "application/json"}
    if token is not None:
        headers["Authorization"] = f"Bearer {token}"
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


# ----------------------------------------------------------------------
# The durable-IO primitives
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_creates_parents_and_replaces(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "artefact.json"
        atomic_write_text(target, "first\n")
        assert target.read_text() == "first\n"
        atomic_write_text(target, "second\n")
        assert target.read_text() == "second\n"
        # No temp debris survives a successful write.
        assert list(target.parent.glob(".*.tmp-*")) == []

    def test_bytes_and_text_agree(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        atomic_write_text(a, "payload ü\n")
        atomic_write_bytes(b, "payload ü\n".encode("utf-8"))
        assert a.read_bytes() == b.read_bytes()

    def test_failure_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "precious.json"
        atomic_write_text(target, "old bytes\n")
        plan = FaultPlan(readonly_writes=("precious.json",))
        with plan.activated():
            with pytest.raises(StorageError) as excinfo:
                atomic_write_text(target, "new bytes\n")
        assert excinfo.value.os_errno == errno.EROFS
        assert target.read_text() == "old bytes\n"
        assert list(tmp_path.glob(".*.tmp-*")) == []

    def test_fsync_policy_follows_environment(self, monkeypatch):
        monkeypatch.delenv(FSYNC_ENV, raising=False)
        assert fsync_enabled()
        monkeypatch.setenv(FSYNC_ENV, "0")
        assert not fsync_enabled()
        monkeypatch.setenv(FSYNC_ENV, "1")
        assert fsync_enabled()


class TestDurableAppend:
    def test_appends_one_record_per_call(self, tmp_path):
        log = tmp_path / "log.jsonl"
        durable_append(log, "one")
        durable_append(log, "two")
        assert log.read_text() == "one\ntwo\n"

    def test_rejects_embedded_newlines(self, tmp_path):
        with pytest.raises(ValueError):
            durable_append(tmp_path / "log.jsonl", "two\nrecords")

    def test_welds_torn_tail_before_new_record(self, tmp_path):
        log = tmp_path / "log.jsonl"
        log.write_bytes(b'{"torn": tr')  # crash debris, no newline
        durable_append(log, '{"fresh": true}')
        lines = log.read_text().split("\n")
        # The debris stays line-local; the new record is intact.
        assert lines[0] == '{"torn": tr'
        assert json.loads(lines[1]) == {"fresh": True}


# ----------------------------------------------------------------------
# Checkpoint line digests
# ----------------------------------------------------------------------
class TestCheckpointDigest:
    def test_round_trip(self, direct):
        line = encode_checkpoint_line(3, direct.results[3])
        seed, result = decode_checkpoint_line(line)
        assert seed == 3
        assert result == direct.results[3]

    def test_mutated_line_is_rejected(self, direct):
        line = encode_checkpoint_line(0, direct.results[0])
        middle = len(line) // 2
        mangled = line[:middle] + "#CORRUPT#" + line[middle + 1 :]
        with pytest.raises((ValueError, KeyError, TypeError)):
            decode_checkpoint_line(mangled)

    def test_legacy_line_without_digest_still_decodes(self, direct):
        entry = {"result": result_to_dict(direct.results[1]), "seed": 1}
        seed, result = decode_checkpoint_line(json.dumps(entry))
        assert seed == 1
        assert result == direct.results[1]

    def test_loader_skips_corrupt_lines(self, tmp_path, direct):
        checkpoint = SweepCheckpoint(tmp_path / "ckpt")
        for seed in range(3):
            checkpoint.append("key", seed, direct.results[seed])
        path = checkpoint.path_for("key")
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:40] + "#X#" + lines[1][41:]
        path.write_text("".join(line + "\n" for line in lines))
        loaded = checkpoint.load("key")
        assert sorted(loaded) == [0, 2]
        assert loaded[0] == direct.results[0]


# ----------------------------------------------------------------------
# Storage chaos kinds fire inside the seam
# ----------------------------------------------------------------------
class TestStorageFaultPlan:
    def test_env_round_trip_includes_storage_kinds(self, tmp_path):
        plan = FaultPlan(
            torn_writes=("a",),
            short_writes=("b",),
            enospc_writes=("c",),
            readonly_writes=("d",),
            corrupt_checkpoint_seeds=(1,),
            enospc_after_bytes=8,
            marker_dir=str(tmp_path),
        )
        assert FaultPlan.from_env(plan.to_env()) == plan

    def test_once_only_kinds_need_marker_dir(self):
        for kind in ("torn_writes", "short_writes", "enospc_writes"):
            with pytest.raises(ValueError):
                FaultPlan(**{kind: ("x",)})
        with pytest.raises(ValueError):
            FaultPlan(corrupt_checkpoint_seeds=(1,))
        FaultPlan(readonly_writes=("x",))  # persistent: no marker needed

    def test_enospc_fires_once_then_heals(self, tmp_path):
        target = tmp_path / "blob.json"
        plan = FaultPlan(
            enospc_writes=("blob.json",), marker_dir=str(tmp_path / "markers")
        )
        with plan.activated():
            with pytest.raises(StorageError) as excinfo:
                atomic_write_text(target, "x" * 100)
            assert excinfo.value.os_errno == errno.ENOSPC
            assert not target.exists()
            assert list(tmp_path.glob(".*.tmp-*")) == []
            atomic_write_text(target, "x" * 100)  # marker consumed
        assert target.read_text() == "x" * 100

    def test_short_write_truncates_silently_and_welds(self, tmp_path):
        log = tmp_path / "shorty.jsonl"
        record = json.dumps({"seed": 9, "payload": "p" * 40})
        plan = FaultPlan(
            short_writes=("shorty",),
            enospc_after_bytes=16,
            marker_dir=str(tmp_path / "markers"),
        )
        with plan.activated():
            durable_append(log, record)  # lies: reports success
            assert log.read_bytes() == (record + "\n").encode()[:16]
            durable_append(log, record)  # welds the lying tail
        lines = log.read_text().split("\n")
        assert lines[0] == record[:16]  # the truncated debris
        assert json.loads(lines[1]) == json.loads(record)

    def test_readonly_is_persistent(self, tmp_path):
        target = tmp_path / "ro.txt"
        plan = FaultPlan(readonly_writes=("ro.txt",))
        with plan.activated():
            for _ in range(3):
                with pytest.raises(StorageError):
                    atomic_write_text(target, "nope")
        assert not target.exists()


# ----------------------------------------------------------------------
# CLI: disk failure is a typed, distinct exit
# ----------------------------------------------------------------------
class TestCliStorageExit:
    def test_enospc_on_report_write_exits_storage(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        plan = FaultPlan(
            enospc_writes=("report.json",),
            marker_dir=str(tmp_path / "markers"),
        )
        with plan.activated():
            code = main(
                [
                    "scenario", "run", "paper-baseline",
                    "--seeds", "2", "--quiet", "--out", str(out),
                ]
            )
        assert code == EXIT_STORAGE
        assert not out.exists()
        assert "storage" in capsys.readouterr().err

    def test_enospc_mid_checkpoint_sweep_exits_storage(self, tmp_path, capsys):
        plan = FaultPlan(
            enospc_writes=("sweep-",),
            marker_dir=str(tmp_path / "markers"),
        )
        with plan.activated():
            code = main(
                [
                    "scenario", "run", "paper-baseline",
                    "--seeds", "3", "--quiet",
                    "--checkpoint", str(tmp_path / "ckpt"),
                ]
            )
        assert code == EXIT_STORAGE
        assert "storage" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Service under disk chaos
# ----------------------------------------------------------------------
class TestServiceStorageChaos:
    def test_torn_checkpoint_append_is_byte_identical(self, tmp_path, direct):
        """A pool worker is killed mid-checkpoint-append (the SIGKILL
        stand-in lands half a line and exits); the pool is respawned,
        the welded append recovers, and the report is byte-identical."""
        plan = FaultPlan(
            torn_writes=("sweep-",), marker_dir=str(tmp_path / "markers")
        )
        with plan.activated():
            service = start_service(tmp_path)
            try:
                record, created = service.submit(
                    {"scenario": "paper-baseline", "seeds": SEEDS}
                )
                assert created
                wait_for(
                    lambda: service.store.get(record.job_id).state == DONE,
                    timeout=120.0,
                )
            finally:
                service.drain()
        assert (tmp_path / "markers" / "torn-sweep-").exists()
        assert service.store.get(record.job_id).result_json == direct.to_json()

    def test_corrupt_checkpoint_line_recovers_byte_identical(
        self, tmp_path, direct
    ):
        """A checkpoint line is silently mangled at append time; the
        digest makes the loader drop it, the scheduler's recovery pass
        re-runs the lost seed, and the report is byte-identical."""
        plan = FaultPlan(
            corrupt_checkpoint_seeds=(2,),
            marker_dir=str(tmp_path / "markers"),
        )
        with plan.activated():
            service = start_service(tmp_path)
            try:
                record, _ = service.submit(
                    {"scenario": "paper-baseline", "seeds": SEEDS}
                )
                wait_for(
                    lambda: service.store.get(record.job_id).state == DONE,
                    timeout=120.0,
                )
            finally:
                service.drain()
        assert (tmp_path / "markers" / "corrupt-2").exists()
        assert service.store.get(record.job_id).result_json == direct.to_json()

    def test_enospc_on_result_blob_requeues_and_self_heals(
        self, tmp_path, direct
    ):
        """The disk fills exactly as the finished report is persisted:
        the job goes back to queued (its seeds are checkpointed), the
        service notes the degradation, and the retry — cheap, the sweep
        is already done — lands the same bytes."""
        plan = FaultPlan(
            enospc_writes=("results/",), marker_dir=str(tmp_path / "markers")
        )
        with plan.activated():
            service = start_service(tmp_path)
            try:
                record, _ = service.submit(
                    {"scenario": "paper-baseline", "seeds": SEEDS}
                )
                wait_for(
                    lambda: service.store.get(record.job_id).state == DONE,
                    timeout=120.0,
                )
            finally:
                service.drain()
        assert (tmp_path / "markers" / "enospc-results_").exists()
        assert service.store.get(record.job_id).result_json == direct.to_json()

    def test_disk_pressure_503s_new_jobs_until_writes_heal(
        self, tmp_path, direct
    ):
        """Under persistent write failure on the results dir, claimed
        work keeps completing (checkpoints live elsewhere) but new
        submissions are refused with 503; when the filesystem heals,
        the stuck job lands and submissions are accepted again."""
        plan = FaultPlan(readonly_writes=("results/",))
        service = start_service(tmp_path)
        try:
            with plan.activated():
                record, _ = service.submit(
                    {"scenario": "paper-baseline", "seeds": SEEDS}
                )
                # The sweep finishes, the blob write fails, the service
                # degrades and the job goes back to queued.
                wait_for(lambda: service._storage_error is not None,
                         timeout=120.0)
                status, reply = post_json(
                    f"{service.url}/jobs",
                    {"scenario": "two-sources", "seeds": 2},
                )
                assert status == 503
                assert "degraded" in reply["error"]
            # Plan deactivated: the filesystem is "remounted rw".
            wait_for(
                lambda: service.store.get(record.job_id).state == DONE,
                timeout=120.0,
            )
            assert (
                service.store.get(record.job_id).result_json
                == direct.to_json()
            )
            status, reply = post_json(
                f"{service.url}/jobs", {"scenario": "paper-baseline",
                                        "seeds": SEEDS},
            )
            assert status == 200  # deduped against the healed job
        finally:
            service.drain()


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------
class TestFsck:
    def run_job_to_done(self, tmp_path, seeds=SEEDS):
        service = start_service(tmp_path)
        try:
            record, _ = service.submit(
                {"scenario": "paper-baseline", "seeds": seeds}
            )
            wait_for(
                lambda: service.store.get(record.job_id).state == DONE,
                timeout=120.0,
            )
        finally:
            service.drain()
        return service.data_dir, record.job_id

    def test_clean_dir_reports_zero_findings(self, tmp_path):
        data_dir, _ = self.run_job_to_done(tmp_path)
        report = fsck_data_dir(data_dir)
        assert report["clean"] is True
        assert report["findings"] == []
        assert report["jobs"] == 1
        assert report["checkpoints"] == 1
        assert report["result_blobs"] == 1

    def test_empty_dir_is_clean(self, tmp_path):
        report = fsck_data_dir(tmp_path)
        assert report["clean"] is True
        assert report["store"] is False

    def test_detects_and_repairs_crash_damage(self, tmp_path, direct):
        """Every kind of crash debris at once: fsck reports all of it,
        ``--repair`` demotes/prunes conservatively, a second pass is
        clean, and a restarted service reconverges byte-identically."""
        data_dir, job_id = self.run_job_to_done(tmp_path)
        checkpoints = data_dir / "checkpoints"
        results = data_dir / "results"
        real_checkpoint = next(checkpoints.glob("sweep-*.jsonl"))

        # 1. atomic-write temp debris
        (checkpoints / ".sweep-x.jsonl.tmp-12345").write_text("half")
        # 2. a torn trailing line on the real checkpoint
        with open(real_checkpoint, "ab") as handle:
            handle.write(b'{"seed": 99, "res')
        # 3. an orphan checkpoint no job accounts for
        (checkpoints / "sweep-deadbeef.jsonl").write_text("{}\n")
        # 4. the done job's result blob corrupted at rest
        (results / f"{job_id}.json").write_text("not json at all")
        # 5. an orphan result blob
        (results / "unknown-job.json").write_text("{}\n")

        report = fsck_data_dir(data_dir)
        kinds = {f["kind"] for f in report["findings"]}
        assert kinds == {
            "stale_temp_file",
            "torn_checkpoint_line",
            "corrupt_checkpoint_line",  # the orphan's unparseable line
            "orphan_checkpoint",
            "corrupt_result_blob",
            "orphan_result_blob",
        }
        assert report["clean"] is False
        assert report["repaired"] == 0

        repaired = fsck_data_dir(data_dir, repair=True)
        assert repaired["unrepaired"] == 0
        # The inconsistent job was demoted, never patched in place.
        from repro.service import JobStore

        assert JobStore(data_dir / "jobs.sqlite").get(job_id).state == QUEUED
        assert not (results / f"{job_id}.json").exists()
        assert not (results / "unknown-job.json").exists()
        assert not (checkpoints / "sweep-deadbeef.jsonl").exists()
        # The repaired checkpoint holds exactly the verified lines.
        lines = real_checkpoint.read_text().splitlines()
        assert len(lines) == SEEDS
        for line in lines:
            decode_checkpoint_line(line)

        assert fsck_data_dir(data_dir)["clean"] is True

        # Resume: the demoted job reconverges from the surviving
        # checkpoint lines to the exact same bytes.
        service = start_service(tmp_path)
        try:
            wait_for(
                lambda: service.store.get(job_id).state == DONE, timeout=120.0
            )
            assert service.store.get(job_id).result_json == direct.to_json()
        finally:
            service.drain()

    def test_missing_blob_is_found_and_demoted(self, tmp_path):
        data_dir, job_id = self.run_job_to_done(tmp_path)
        (data_dir / "results" / f"{job_id}.json").unlink()
        report = fsck_data_dir(data_dir)
        assert {f["kind"] for f in report["findings"]} == {
            "missing_result_blob"
        }
        fsck_data_dir(data_dir, repair=True)
        from repro.service import JobStore

        assert JobStore(data_dir / "jobs.sqlite").get(job_id).state == QUEUED

    def test_cli_exit_codes(self, tmp_path, capsys):
        # Missing dir: usage error.
        assert main(
            ["service", "fsck", "--data-dir", str(tmp_path / "absent")]
        ) == 2
        capsys.readouterr()
        # A dir with unrepaired findings: exit 1, JSON on stdout.
        bad = tmp_path / "dirty"
        (bad / "checkpoints").mkdir(parents=True)
        (bad / "checkpoints" / "sweep-abc.jsonl").write_text("garbage\n")
        assert main(["service", "fsck", "--data-dir", str(bad)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is False
        # Repair, then a clean pass: exit 0 both times.
        assert main(
            ["service", "fsck", "--data-dir", str(bad), "--repair"]
        ) == 0
        capsys.readouterr()
        assert main(["service", "fsck", "--data-dir", str(bad)]) == 0
        assert json.loads(capsys.readouterr().out)["clean"] is True


# ----------------------------------------------------------------------
# Satellite: bearer-token auth
# ----------------------------------------------------------------------
class TestAuth:
    def test_mutating_endpoints_require_the_token(self, tmp_path):
        service = start_service(tmp_path, token="s3kr1t")
        try:
            payload = {"scenario": "paper-baseline", "seeds": 2}
            status, reply = post_json(f"{service.url}/jobs", payload)
            assert status == 401
            status, _ = post_json(
                f"{service.url}/jobs", payload, token="wrong"
            )
            assert status == 401
            status, reply = post_json(
                f"{service.url}/jobs", payload, token="s3kr1t"
            )
            assert status == 201
            # Reads stay open: observability must not need the secret.
            with urllib.request.urlopen(
                f"{service.url}/jobs", timeout=30.0
            ) as response:
                assert response.status == 200
            client = ServiceClient(service.url, token="s3kr1t")
            client.wait(reply["job"], timeout=120.0)
        finally:
            service.drain()

    def test_worker_needs_the_token_too(self, tmp_path, direct):
        service = start_remote_service(tmp_path, token="s3kr1t")
        try:
            bare = WorkerTransport(service.url, retry=FAST_RETRY)
            with pytest.raises(TransportError) as excinfo:
                bare.post("/shards/claim", {"worker": "intruder"})
            assert excinfo.value.status == 401

            client = ServiceClient(service.url, token="s3kr1t")
            submitted = client.submit(
                {"scenario": "paper-baseline", "seeds": SEEDS}
            )
            worker = ShardWorker(
                service.url,
                worker_id="w-auth",
                poll_interval=0.02,
                retry=FAST_RETRY,
                token="s3kr1t",
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            try:
                client.wait(submitted["job"], timeout=120.0)
                assert (
                    client.result_text(submitted["job"])
                    == direct.to_json() + "\n"
                )
            finally:
                worker.request_stop()
                thread.join(timeout=30.0)
        finally:
            service.drain()


# ----------------------------------------------------------------------
# Satellite: the /workers fleet view
# ----------------------------------------------------------------------
class TestWorkersEndpoint:
    def test_local_service_has_no_fleet(self, tmp_path, capsys):
        service = start_service(tmp_path)
        try:
            assert ServiceClient(service.url).workers() == {
                "remote": False,
                "workers": [],
            }
            assert main(["service", "workers", "--url", service.url]) == 0
            assert "not in remote mode" in capsys.readouterr().out
        finally:
            service.drain()

    def test_fleet_summary_tracks_uploads(self, tmp_path, capsys, direct):
        service = start_remote_service(tmp_path)
        try:
            client = ServiceClient(service.url)
            submitted = client.submit(
                {"scenario": "paper-baseline", "seeds": SEEDS}
            )
            worker = ShardWorker(
                service.url,
                worker_id="w-fleet",
                poll_interval=0.02,
                retry=FAST_RETRY,
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            try:
                client.wait(submitted["job"], timeout=120.0)
            finally:
                worker.request_stop()
                thread.join(timeout=30.0)
            summary = client.workers()
            assert summary["remote"] is True
            entry = {w["worker"]: w for w in summary["workers"]}["w-fleet"]
            assert entry["seeds_landed"] == SEEDS
            assert entry["claims"] >= 1
            assert entry["shards_held"] == 0
            assert entry["seconds_since_upload"] >= 0
            assert main(["service", "workers", "--url", service.url]) == 0
            assert "w-fleet" in capsys.readouterr().out
        finally:
            service.drain()


# ----------------------------------------------------------------------
# Satellite: batched seed uploads
# ----------------------------------------------------------------------
class TestBatchedUploads:
    def test_batch_endpoint_dedups_per_seed(self, tmp_path, direct):
        service = start_remote_service(tmp_path, shards_per_job=1)
        try:
            record, _ = service.submit(
                {"scenario": "paper-baseline", "seeds": SEEDS}
            )
            transport = WorkerTransport(service.url, retry=FAST_RETRY)
            lease = {}

            def try_claim():
                try:
                    reply = transport.post(
                        "/shards/claim", {"worker": "w-batch"}
                    )
                except TransportError:
                    return False
                if reply.get("shard"):
                    lease.update(reply)
                    return True
                return False

            wait_for(try_claim, timeout=60.0)
            entries = [
                {"seed": seed, "result": result_to_dict(direct.results[seed])}
                for seed in lease["seeds"]
            ]
            first, rest = entries[:3], entries[3:]
            payload = {
                "job": lease["job"], "worker": "w-batch", "seeds": first
            }
            reply = transport.post(f"/shards/{lease['shard']}/seeds", payload)
            assert [r["accepted"] for r in reply["results"]] == (
                [True] * len(first)
            )
            assert all(r["known"] for r in reply["results"])
            # Replaying a batch dedups per seed, answers intact.
            replay = transport.post(f"/shards/{lease['shard']}/seeds", payload)
            assert all(r["duplicate"] for r in replay["results"])
            assert all(not r["accepted"] for r in replay["results"])
            # Malformed batch entries are a 400, never a crash.
            with pytest.raises(TransportError) as excinfo:
                transport.post(
                    f"/shards/{lease['shard']}/seeds",
                    {"job": lease["job"], "worker": "w-batch", "seeds": [42]},
                )
            assert excinfo.value.status == 400
            transport.post(
                f"/shards/{lease['shard']}/seeds",
                {"job": lease["job"], "worker": "w-batch", "seeds": rest},
            )
            wait_for(
                lambda: service.store.get(record.job_id).state == DONE,
                timeout=120.0,
            )
            assert (
                service.store.get(record.job_id).result_json
                == direct.to_json()
            )
        finally:
            service.drain()

    def test_batched_worker_is_byte_identical(self, tmp_path, direct):
        service = start_remote_service(tmp_path)
        try:
            client = ServiceClient(service.url)
            submitted = client.submit(
                {"scenario": "paper-baseline", "seeds": SEEDS}
            )
            worker = ShardWorker(
                service.url,
                worker_id="w-batched",
                poll_interval=0.02,
                retry=FAST_RETRY,
                upload_batch=3,
            )
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            try:
                client.wait(submitted["job"], timeout=120.0)
                assert (
                    client.result_text(submitted["job"])
                    == direct.to_json() + "\n"
                )
            finally:
                worker.request_stop()
                thread.join(timeout=30.0)
            # All seeds landed through the batch path.
            entry = {
                w["worker"]: w for w in client.workers()["workers"]
            }["w-batched"]
            assert entry["seeds_landed"] == SEEDS
        finally:
            service.drain()


# ----------------------------------------------------------------------
# Satellite: telemetry export failure never costs results
# ----------------------------------------------------------------------
class TestTelemetryExportFailure:
    def test_session_exit_warns_instead_of_raising(self, tmp_path, capsys):
        plan = FaultPlan(readonly_writes=("spans.jsonl",))
        with plan.activated():
            with TelemetrySession(
                directory=tmp_path / "tel", label="drill"
            ) as session:
                session.registry.inc("drill.events")
        err = capsys.readouterr().err
        assert "telemetry export" in err
        assert "results are unaffected" in err

    def test_cli_run_keeps_results_when_telemetry_dir_fails(
        self, tmp_path, capsys
    ):
        out = tmp_path / "report.json"
        plan = FaultPlan(readonly_writes=("spans.jsonl",))
        with plan.activated():
            code = main(
                [
                    "scenario", "run", "paper-baseline",
                    "--seeds", "2", "--quiet",
                    "--out", str(out),
                    "--telemetry", str(tmp_path / "tel"),
                ]
            )
        assert code == 0
        assert out.exists()
        assert "results are unaffected" in capsys.readouterr().err
