"""Unit tests for the Schedule object."""

import pytest

from repro.core import Schedule
from repro.errors import ScheduleError


def small_schedule() -> Schedule:
    """Line 0-1-2-3(sink): slots 1, 2, 3, sink 4."""
    return Schedule(
        slots={0: 1, 1: 2, 2: 3, 3: 4},
        parents={0: 1, 1: 2, 2: 3, 3: None},
        sink=3,
    )


class TestConstruction:
    def test_sink_must_have_slot(self):
        with pytest.raises(ScheduleError, match="sink must carry a slot"):
            Schedule({0: 1}, {}, sink=9)

    def test_slots_start_at_one(self):
        with pytest.raises(ScheduleError, match="numbered from 1"):
            Schedule({0: 0, 1: 5}, {}, sink=1)

    def test_slots_must_be_ints(self):
        with pytest.raises(ScheduleError, match="must be an int"):
            Schedule({0: 1.5, 1: 5}, {}, sink=1)

    def test_sink_must_transmit_last(self):
        with pytest.raises(ScheduleError, match="transmit last"):
            Schedule({0: 5, 1: 5}, {}, sink=1)

    def test_parent_must_be_scheduled(self):
        with pytest.raises(ScheduleError, match="unscheduled parent"):
            Schedule({0: 1, 1: 2}, {0: 7}, sink=1)

    def test_parent_of_unscheduled_node_rejected(self):
        with pytest.raises(ScheduleError, match="unscheduled node"):
            Schedule({0: 1, 1: 2}, {5: 0}, sink=1)


class TestAccessors:
    def test_slot_of(self):
        s = small_schedule()
        assert s.slot_of(0) == 1
        assert s.slot_of(3) == 4

    def test_slot_of_unknown(self):
        with pytest.raises(ScheduleError, match="no assigned slot"):
            small_schedule().slot_of(42)

    def test_sink_slot(self):
        assert small_schedule().sink_slot == 4

    def test_senders_exclude_sink(self):
        assert small_schedule().senders == (0, 1, 2)

    def test_parent_and_children(self):
        s = small_schedule()
        assert s.parent_of(0) == 1
        assert s.parent_of(3) is None
        assert s.children_of(1) == (0,)
        assert s.children_of(3) == (2,)

    def test_parent_of_unknown(self):
        with pytest.raises(ScheduleError, match="not scheduled"):
            small_schedule().parent_of(42)

    def test_children_of_unknown(self):
        with pytest.raises(ScheduleError, match="not scheduled"):
            small_schedule().children_of(42)

    def test_container_protocol(self):
        s = small_schedule()
        assert 0 in s and 42 not in s
        assert len(s) == 4
        assert list(s) == [0, 1, 2, 3]

    def test_equality_and_hash(self):
        assert small_schedule() == small_schedule()
        assert hash(small_schedule()) == hash(small_schedule())
        assert small_schedule() != small_schedule().with_slot(0, 1) or True
        assert small_schedule() != small_schedule().with_parent(0, 2)


class TestSenderSets:
    def test_sender_sets_exclude_sink(self):
        sets = small_schedule().sender_sets()
        assert sets == [{0}, {1}, {2}]

    def test_nodes_in_slot(self):
        s = small_schedule()
        assert s.nodes_in_slot(2) == (1,)
        assert s.nodes_in_slot(4) == ()  # sink's slot: no senders

    def test_shared_slot_grouping(self):
        s = Schedule({0: 1, 1: 1, 2: 9}, {}, sink=2)
        assert s.sender_sets() == [{0, 1}]
        assert s.nodes_in_slot(1) == (0, 1)

    def test_transmission_order(self):
        assert small_schedule().transmission_order() == [0, 1, 2]

    def test_min_slot_neighbour(self, line5, line5_schedule):
        # Node 3's neighbours are 2 and 4(sink); the sink never counts.
        got = line5_schedule.min_slot_neighbour(line5, 3)
        assert got == 2


class TestDerivation:
    def test_with_slot_returns_copy(self):
        s = small_schedule()
        t = s.with_slot(0, 2)
        assert t.slot_of(0) == 2
        assert s.slot_of(0) == 1

    def test_with_slot_unknown_node(self):
        with pytest.raises(ScheduleError, match="unscheduled"):
            small_schedule().with_slot(42, 1)

    def test_with_slots_bulk(self):
        t = small_schedule().with_slots({0: 2, 1: 3})
        assert t.slot_of(0) == 2 and t.slot_of(1) == 3

    def test_with_parent(self):
        t = small_schedule().with_parent(0, 2)
        assert t.parent_of(0) == 2

    def test_normalised_shifts_to_one(self):
        s = Schedule({0: 5, 1: 6, 2: 9}, {}, sink=2)
        n = s.normalised()
        assert n.slot_of(0) == 1
        assert n.slot_of(2) == 5

    def test_normalised_noop_when_already_low(self):
        s = small_schedule()
        assert s.normalised() is s

    def test_compressed_preserves_order_and_equality(self):
        s = Schedule({0: 3, 1: 3, 2: 17, 3: 40, 4: 99}, {}, sink=4)
        c = s.compressed()
        assert c.slot_of(0) == c.slot_of(1) == 1
        assert c.slot_of(2) == 2
        assert c.slot_of(3) == 3
        assert c.slot_of(4) == 4

    def test_covers(self, line5, line5_schedule):
        assert line5_schedule.covers(line5)
