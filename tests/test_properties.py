"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Schedule,
    check_strong_das,
    check_weak_das,
    is_non_colliding,
    safety_period,
)
from repro.das import centralized_das_schedule
from repro.mac import TdmaFrame
from repro.slp import SlpParameters, build_slp_schedule
from repro.topology import GridTopology, LineTopology, RingTopology
from repro.verification import minimum_capture_period, verify_schedule

# Small topology strategy: lines, rings and grids of modest size.
topologies = st.one_of(
    st.integers(min_value=3, max_value=9).map(LineTopology),
    st.integers(min_value=4, max_value=10).map(RingTopology),
    st.integers(min_value=3, max_value=6).map(GridTopology),
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestGeneratorInvariants:
    @given(topology=topologies, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_generated_schedule_is_strong_das(self, topology, seed):
        schedule = centralized_das_schedule(topology, seed=seed)
        assert check_strong_das(topology, schedule).ok

    @given(topology=topologies, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_every_slot_non_colliding(self, topology, seed):
        schedule = centralized_das_schedule(topology, seed=seed)
        assert all(
            is_non_colliding(topology, schedule, n)
            for n in topology.nodes
            if n != topology.sink
        )

    @given(topology=topologies, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_slots_descend_along_tree_paths(self, topology, seed):
        """Walking child -> parent, slots strictly increase (convergecast
        order: children before parents)."""
        schedule = centralized_das_schedule(topology, seed=seed)
        for node in topology.nodes:
            parent = schedule.parent_of(node)
            if parent is not None:
                assert schedule.slot_of(node) < schedule.slot_of(parent)

    @given(topology=topologies, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_compression_preserves_das_validity(self, topology, seed):
        schedule = centralized_das_schedule(topology, seed=seed)
        assert check_strong_das(topology, schedule.compressed()).ok


class TestRefinementInvariants:
    @given(
        size=st.integers(min_value=5, max_value=8),
        seed=seeds,
        sd=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_refinement_preserves_weak_das(self, size, seed, sd):
        grid = GridTopology(size)
        build = build_slp_schedule(grid, SlpParameters(sd), seed=seed)
        assert check_weak_das(grid, build.schedule).ok

    @given(size=st.integers(min_value=5, max_value=8), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_refinement_never_touches_parents(self, size, seed):
        grid = GridTopology(size)
        build = build_slp_schedule(grid, SlpParameters(2), seed=seed)
        assert build.schedule.parents() == build.baseline.parents()

    @given(size=st.integers(min_value=5, max_value=8), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_refined_slots_positive(self, size, seed):
        grid = GridTopology(size)
        build = build_slp_schedule(grid, SlpParameters(2), seed=seed)
        assert min(build.schedule.slots().values()) >= 1


class TestVerifierInvariants:
    @given(topology=topologies, seed=seeds, delta=st.integers(0, 20))
    @settings(max_examples=30, deadline=None)
    def test_counterexample_is_valid_witness(self, topology, seed, delta):
        """Any counterexample must be a connected path from the sink to
        the source, no longer than the state space allows."""
        schedule = centralized_das_schedule(topology, seed=seed)
        result = verify_schedule(topology, schedule, delta)
        if result.slp_aware:
            assert result.counterexample is None
            assert result.periods == delta
        else:
            pc = result.counterexample
            assert pc[0] == topology.sink
            assert pc[-1] == topology.source
            for a, b in zip(pc, pc[1:]):
                assert topology.are_linked(a, b)
            assert result.periods <= delta

    @given(topology=topologies, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_safety_period(self, topology, seed):
        """If the attacker captures within δ, it captures within δ+1."""
        schedule = centralized_das_schedule(topology, seed=seed)
        small = verify_schedule(topology, schedule, 5)
        large = verify_schedule(topology, schedule, 6)
        if not small.slp_aware:
            assert not large.slp_aware

    @given(topology=topologies, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_capture_period_at_least_distance(self, topology, seed):
        """The attacker moves one hop per period at best, so capture
        cannot beat the sink-source hop distance."""
        schedule = centralized_das_schedule(topology, seed=seed)
        period = minimum_capture_period(topology, schedule)
        if period is not None:
            assert period >= topology.source_sink_distance()


class TestFrameInvariants:
    @given(
        num_slots=st.integers(1, 200),
        slot_ms=st.integers(1, 500),
        diss_ms=st.integers(0, 2000),
        period=st.integers(0, 50),
        slot=st.integers(1, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_slot_start_roundtrip(self, num_slots, slot_ms, diss_ms, period, slot):
        if slot > num_slots:
            slot = num_slots
        frame = TdmaFrame(
            num_slots=num_slots,
            slot_duration=slot_ms / 1000.0,
            dissemination_duration=diss_ms / 1000.0,
        )
        t = frame.slot_start(period, slot)
        got_period, got_slot = frame.position_of(t + 1e-9)
        assert got_period == period
        assert got_slot == slot

    @given(
        length=st.integers(2, 30),
        period_len=st.floats(0.1, 100.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_safety_period_scales_with_capture_time(self, length, period_len):
        line = LineTopology(length)
        sp = safety_period(line, period_len)
        assert sp.seconds > sp.capture_time_seconds
        assert sp.periods >= math.ceil(line.source_sink_distance() + 1)


class TestScheduleInvariants:
    @given(topology=topologies, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_sender_sets_partition_non_sink_nodes(self, topology, seed):
        schedule = centralized_das_schedule(topology, seed=seed)
        sets = schedule.sender_sets()
        union = set().union(*sets) if sets else set()
        assert union == set(topology.nodes) - {topology.sink}
        total = sum(len(s) for s in sets)
        assert total == len(union)  # pairwise disjoint (condition 1)

    @given(topology=topologies, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_transmission_order_respects_slots(self, topology, seed):
        schedule = centralized_das_schedule(topology, seed=seed)
        order = schedule.transmission_order()
        slots = [schedule.slot_of(n) for n in order]
        assert slots == sorted(slots)
