"""Tests for the metrics package."""

import pytest

from repro.app import OperationalResult
from repro.errors import ConfigurationError
from repro.metrics import (
    MessageOverhead,
    aggregation_stats,
    capture_stats,
    schedule_latency_periods,
    summarise,
)


def make_result(captured=False, capture_period=None, path=(0,), ratio=1.0):
    return OperationalResult(
        captured=captured,
        capture_period=capture_period,
        capture_time=float(capture_period) if capture_period else None,
        periods_run=8,
        safety_periods=8,
        attacker_path=tuple(path),
        messages_sent=100,
        aggregation_ratio=ratio,
    )


class TestCaptureStats:
    def test_ratio(self):
        results = [make_result(captured=True, capture_period=3, path=(0, 1))] * 3
        results += [make_result()] * 7
        stats = capture_stats(results)
        assert stats.runs == 10
        assert stats.captures == 3
        assert stats.capture_ratio == pytest.approx(0.3)

    def test_mean_capture_period(self):
        results = [
            make_result(captured=True, capture_period=2, path=(0, 1)),
            make_result(captured=True, capture_period=4, path=(0, 1)),
            make_result(),
        ]
        assert capture_stats(results).mean_capture_period == pytest.approx(3.0)

    def test_no_captures(self):
        stats = capture_stats([make_result()] * 5)
        assert stats.capture_ratio == 0.0
        assert stats.mean_capture_period is None

    def test_mean_moves(self):
        results = [make_result(path=(0, 1, 2)), make_result(path=(0,))]
        assert capture_stats(results).mean_attacker_moves == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            capture_stats([])

    def test_confidence_interval(self):
        stats = capture_stats(
            [make_result(captured=True, capture_period=1, path=(0, 1))] * 5
            + [make_result()] * 15
        )
        low, high = stats.confidence_interval()
        assert 0.0 <= low < stats.capture_ratio < high <= 1.0

    def test_reduction_versus(self):
        base = capture_stats(
            [make_result(captured=True, capture_period=1, path=(0, 1))] * 4
            + [make_result()] * 6
        )
        slp = capture_stats(
            [make_result(captured=True, capture_period=1, path=(0, 1))] * 2
            + [make_result()] * 8
        )
        assert slp.reduction_versus(base) == pytest.approx(0.5)

    def test_reduction_versus_zero_baseline(self):
        base = capture_stats([make_result()] * 3)
        slp = capture_stats([make_result()] * 3)
        assert slp.reduction_versus(base) == 0.0


class TestOverhead:
    def test_factor_and_percent(self):
        o = MessageOverhead(baseline_messages=1000, slp_messages=1050)
        assert o.extra_messages == 50
        assert o.overhead_factor == pytest.approx(1.05)
        assert o.overhead_percent == pytest.approx(5.0)

    def test_zero_baseline(self):
        assert MessageOverhead(0, 0).overhead_factor == 1.0
        assert MessageOverhead(0, 10).overhead_factor == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageOverhead(-1, 0)

    def test_summary_mentions_counts(self):
        o = MessageOverhead(100, 110, search_messages=4, change_messages=6)
        text = o.summary()
        assert "110" in text and "search=4" in text and "change=6" in text


class TestAggregationStats:
    def test_basic(self):
        results = [make_result(ratio=r) for r in (1.0, 0.8, 0.9)]
        stats = aggregation_stats(results)
        assert stats.mean_ratio == pytest.approx(0.9)
        assert stats.min_ratio == pytest.approx(0.8)
        assert not stats.lossless

    def test_lossless(self):
        stats = aggregation_stats([make_result(ratio=1.0)] * 3)
        assert stats.lossless

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregation_stats([])


class TestLatency:
    def test_fraction_of_period(self):
        assert schedule_latency_periods(50, 100) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            schedule_latency_periods(0, 100)
        with pytest.raises(ConfigurationError):
            schedule_latency_periods(101, 100)


class TestSummarise:
    def test_statistics(self):
        s = summarise([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.n == 4

    def test_single_value_std_zero(self):
        assert summarise([5.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarise([])

    def test_format(self):
        text = summarise([1.0, 2.0]).format(unit="ms")
        assert "ms" in text and "n=2" in text
