"""Runtime workload dynamics: source plans, perturbations, and how the
operational harness applies them.

These are the primitives the scenario subsystem lowers onto; they are
tested at the :func:`run_operational_phase` level on small topologies
so failures localise to the runtime, not the sweep machinery.
"""

from __future__ import annotations

import pytest

from repro.app import (
    DutyCycle,
    NodeDeath,
    NodeSleep,
    SourcePlan,
    SourceTracker,
    lower_perturbations,
    run_operational_phase,
)
from repro.attacker import AttackerSpec, FollowFirstHeard
from repro.das import centralized_das_schedule
from repro.errors import ConfigurationError


#: An attacker that needs more messages than any run delivers — it
#: never moves, which makes passive (rotation-onto-attacker) capture
#: and perturbation effects observable in isolation.
def immobile_attacker() -> AttackerSpec:
    return AttackerSpec(
        messages_per_move=10_000, decision=FollowFirstHeard()
    )


class TestSourcePlan:
    def test_single_is_static(self):
        plan = SourcePlan.single(3)
        assert plan.nodes == (3,)
        assert not plan.is_rotating
        assert plan.active_at(0) == plan.active_at(99) == (3,)

    def test_simultaneous_pool(self):
        plan = SourcePlan(nodes=(1, 5, 9))
        assert plan.active_at(7) == (1, 5, 9)
        assert plan.primary == 1

    def test_rotation_walks_the_pool_in_order(self):
        plan = SourcePlan(nodes=(1, 5, 9), rotation_period=2)
        assert [plan.active_at(p) for p in range(7)] == [
            (1,), (1,), (5,), (5,), (9,), (9,), (1,)
        ]

    def test_tracker_advances(self):
        tracker = SourceTracker(SourcePlan(nodes=(1, 5), rotation_period=1))
        assert tracker.is_source(1) and not tracker.is_source(5)
        tracker.advance(1)
        assert tracker.is_source(5) and not tracker.is_source(1)

    def test_validation_names_field_and_value(self):
        with pytest.raises(ConfigurationError, match=r"SourcePlan\.nodes=\(\)"):
            SourcePlan(nodes=())
        with pytest.raises(
            ConfigurationError, match=r"SourcePlan\.rotation_period=0"
        ):
            SourcePlan(nodes=(1, 2), rotation_period=0)
        with pytest.raises(ConfigurationError, match="at least two pool nodes"):
            SourcePlan(nodes=(1,), rotation_period=3)
        with pytest.raises(ConfigurationError, match="duplicate"):
            SourcePlan(nodes=(1, 1))


class TestPerturbationSpecs:
    def test_node_death_is_permanent(self):
        death = NodeDeath(period=2, nodes=(4, 3))
        assert death.nodes == (3, 4)  # normalised order
        assert list(death.steps(10)) == [(2, "die", (3, 4))]
        assert list(death.steps(2)) == []  # beyond the budget

    def test_node_sleep_wakes(self):
        sleep = NodeSleep(period=1, wake_period=3, nodes=(2,))
        assert list(sleep.steps(10)) == [(1, "sleep", (2,)), (3, "wake", (2,))]
        # Wake beyond the budget is dropped, the sleep still applies.
        assert list(sleep.steps(2)) == [(1, "sleep", (2,))]

    def test_duty_cycle_repeats(self):
        duty = DutyCycle(nodes=(5,), cycle_length=4, sleep_for=2, offset=1)
        assert list(duty.steps(10)) == [
            (1, "sleep", (5,)), (3, "wake", (5,)),
            (5, "sleep", (5,)), (7, "wake", (5,)),
            (9, "sleep", (5,)),
        ]

    def test_lowering_orders_by_period_then_declaration(self):
        steps = lower_perturbations(
            (NodeDeath(period=4, nodes=(1,)), NodeSleep(1, 4, nodes=(2,))), 10
        )
        assert steps == (
            (1, "sleep", (2,)),
            (4, "die", (1,)),
            (4, "wake", (2,)),
        )

    def test_validation_names_field_and_value(self):
        with pytest.raises(ConfigurationError, match=r"NodeDeath\.period=-1"):
            NodeDeath(period=-1, nodes=(1,))
        with pytest.raises(ConfigurationError, match=r"NodeSleep\.wake_period=1"):
            NodeSleep(period=1, wake_period=1, nodes=(1,))
        with pytest.raises(ConfigurationError, match=r"DutyCycle\.sleep_for=3"):
            DutyCycle(nodes=(1,), cycle_length=3, sleep_for=3)
        with pytest.raises(ConfigurationError, match=r"DutyCycle\.nodes=\(\)"):
            DutyCycle(nodes=(), cycle_length=3, sleep_for=1)


class TestMultiSourceRuns:
    def test_default_plan_matches_legacy_single_source(self, grid5):
        schedule = centralized_das_schedule(grid5, seed=0)
        legacy = run_operational_phase(grid5, schedule, seed=0, max_periods=6)
        explicit = run_operational_phase(
            grid5,
            schedule,
            seed=0,
            max_periods=6,
            source_plan=SourcePlan.single(grid5.source),
        )
        assert legacy == explicit
        assert legacy.source_pool == (grid5.source,)

    def test_capture_of_any_simultaneous_source_ends_the_run(self, grid5):
        schedule = centralized_das_schedule(grid5, seed=0)
        # Corners 0 and 4 are both sources; whichever falls is recorded.
        result = run_operational_phase(
            grid5,
            schedule,
            seed=3,
            source_plan=SourcePlan(nodes=(0, 4)),
        )
        assert result.source_pool == (0, 4)
        if result.captured:
            assert result.captured_source in (0, 4)
            assert result.attacker_path[-1] == result.captured_source
        else:
            assert result.captured_source is None

    def test_multi_source_budget_uses_closest_source(self, grid5):
        schedule = centralized_das_schedule(grid5, seed=0)
        near = run_operational_phase(
            grid5, schedule, seed=0, source_plan=SourcePlan(nodes=(0, 11))
        )
        far = run_operational_phase(
            grid5, schedule, seed=0, source_plan=SourcePlan(nodes=(0,))
        )
        # Node 11 is one hop from the sink (12), so the safety budget
        # shrinks to the conservative ceil(1.5 * (1 + 1)) periods.
        assert near.safety_periods < far.safety_periods
        assert near.safety_periods == 3

    def test_rotation_onto_attacker_is_a_passive_capture(self, line5):
        schedule = centralized_das_schedule(line5, seed=0)
        # The attacker sits immobile at the sink-adjacent node 3; the
        # asset rotates 0 -> 2 -> 3 and walks straight into it.
        result = run_operational_phase(
            line5,
            schedule,
            attacker=immobile_attacker(),
            seed=0,
            attacker_start=3,
            max_periods=8,
            source_plan=SourcePlan(nodes=(0, 2, 3), rotation_period=1),
        )
        assert result.captured
        assert result.captured_source == 3
        assert result.capture_period == 2
        assert result.attacker_path == (3,)  # it never moved

    def test_sink_cannot_join_the_pool(self, grid5):
        schedule = centralized_das_schedule(grid5, seed=0)
        with pytest.raises(ConfigurationError, match=r"SourcePlan\.nodes=12"):
            run_operational_phase(
                grid5, schedule, seed=0, source_plan=SourcePlan(nodes=(0, 12))
            )

    def test_unknown_pool_node_rejected(self, grid5):
        schedule = centralized_das_schedule(grid5, seed=0)
        with pytest.raises(ConfigurationError, match=r"SourcePlan\.nodes=99"):
            run_operational_phase(
                grid5, schedule, seed=0, source_plan=SourcePlan(nodes=(0, 99))
            )


class TestPerturbationRuns:
    def test_dead_node_stops_transmitting(self, grid5):
        schedule = centralized_das_schedule(grid5, seed=0)
        healthy = run_operational_phase(
            grid5, schedule, attacker=immobile_attacker(), seed=0, max_periods=6
        )
        churned = run_operational_phase(
            grid5,
            schedule,
            attacker=immobile_attacker(),
            seed=0,
            max_periods=6,
            perturbations=(NodeDeath(period=2, nodes=(6, 7, 8)),),
        )
        # Three nodes mute for 4 of 6 periods: exactly 12 fewer sends.
        assert healthy.messages_sent - churned.messages_sent == 12
        assert churned.aggregation_ratio < healthy.aggregation_ratio

    def test_sleep_then_wake_recovers(self, grid5):
        schedule = centralized_das_schedule(grid5, seed=0)
        slept = run_operational_phase(
            grid5,
            schedule,
            attacker=immobile_attacker(),
            seed=0,
            max_periods=6,
            perturbations=(NodeSleep(period=1, wake_period=2, nodes=(6,)),),
        )
        healthy = run_operational_phase(
            grid5, schedule, attacker=immobile_attacker(), seed=0, max_periods=6
        )
        # One node mute for exactly one period.
        assert healthy.messages_sent - slept.messages_sent == 1

    def test_death_survives_an_overlapping_wake(self, grid5):
        """A wake step from an overlapping sleep schedule must not
        resurrect a node that crashed in between."""
        schedule = centralized_das_schedule(grid5, seed=0)
        overlapped = run_operational_phase(
            grid5,
            schedule,
            attacker=immobile_attacker(),
            seed=0,
            max_periods=6,
            perturbations=(
                NodeSleep(period=1, wake_period=4, nodes=(6,)),
                NodeDeath(period=2, nodes=(6,)),
            ),
        )
        dead_only = run_operational_phase(
            grid5,
            schedule,
            attacker=immobile_attacker(),
            seed=0,
            max_periods=6,
            perturbations=(NodeDeath(period=1, nodes=(6,)),),
        )
        # Node 6 transmits only in period 0 in both runs: the sleep at
        # period 1 blends into the death at period 2, and the wake at
        # period 4 is a no-op on a dead node.
        assert overlapped.messages_sent == dead_only.messages_sent

    def test_perturbing_sink_or_source_rejected(self, grid5):
        schedule = centralized_das_schedule(grid5, seed=0)
        with pytest.raises(ConfigurationError, match=r"NodeDeath\.nodes=12"):
            run_operational_phase(
                grid5,
                schedule,
                seed=0,
                perturbations=(NodeDeath(period=1, nodes=(12,)),),
            )
        with pytest.raises(ConfigurationError, match=r"NodeDeath\.nodes=0"):
            run_operational_phase(
                grid5,
                schedule,
                seed=0,
                perturbations=(NodeDeath(period=1, nodes=(0,)),),
            )

    def test_runs_with_dynamics_stay_seed_deterministic(self, grid5):
        schedule = centralized_das_schedule(grid5, seed=0)
        kwargs = dict(
            seed=5,
            max_periods=8,
            source_plan=SourcePlan(nodes=(0, 4), rotation_period=2),
            perturbations=(
                DutyCycle(nodes=(6, 7), cycle_length=4, sleep_for=1),
                NodeDeath(period=3, nodes=(16,)),
            ),
        )
        first = run_operational_phase(grid5, schedule, **kwargs)
        second = run_operational_phase(grid5, schedule, **kwargs)
        assert first == second
