"""Differential tests for the setup-phase fast kernel.

The contract: ``run_das_setup`` / ``run_slp_setup`` with the flat-round
setup kernel (:mod:`repro.das.fast_setup`, the default) are
*bit-identical* to the legacy event-heap engine — same RNG stream, same
``Schedule``, same retained trace records and per-kind counters, same
``messages_sent``, same final process state — across topologies, noise
models and seeds, and the kernel falls back to the heap automatically
for protocol subclasses and round geometries it cannot prove safe.
"""

from __future__ import annotations

import pytest

import repro.das.fast_setup as fs
from repro.das import (
    DasNodeProcess,
    DasProtocolConfig,
    fast_setup_compilable,
    fast_setup_supported,
    run_das_setup,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.simulator import BernoulliNoise, CasinoLabNoise, IdealNoise
from repro.simulator import trace as trace_kinds
from repro.slp.distributed import SlpNodeProcess, SlpProtocolConfig, run_slp_setup
from repro.topology import (
    GridTopology,
    LineTopology,
    RingTopology,
    random_geometric_topology,
)

#: Seeds per (topology, noise) cell.  The issue's floor is 10.
SEEDS = range(10)

#: A trimmed round count keeps the legacy reference runs affordable;
#: the engines must agree for *any* config, so nothing is lost.
DAS_CFG = DasProtocolConfig(setup_periods=24)
SLP_CFG = SlpProtocolConfig(
    das=DAS_CFG, search_distance=2, change_length=3, refinement_periods=8
)

TOPOLOGIES = {
    "grid5": lambda: GridTopology(5),
    "line9": lambda: LineTopology(9),
    "ring8": lambda: RingTopology(8),
    "random16": lambda: random_geometric_topology(
        16, area_side=100.0, communication_range=40.0, seed=7
    ),
}

NOISES = {
    "ideal": lambda: IdealNoise(),
    "bernoulli": lambda: BernoulliNoise(0.1),
    "casino": lambda: CasinoLabNoise(),
}

COUNTED_KINDS = (
    trace_kinds.SEND,
    trace_kinds.DELIVER,
    trace_kinds.DROP,
    trace_kinds.SLOT_ASSIGNED,
    trace_kinds.SLOT_CHANGED,
    trace_kinds.PHASE,
)

#: Every observable attribute the harness or result extraction reads.
DAS_ATTRS = (
    "slot",
    "hop",
    "parent",
    "normal",
    "my_neighbours",
    "potential_parents",
    "children",
    "others",
    "ninfo",
    "_round",
    "_quiet_rounds",
    "_weak_mode",
)
SLP_ATTRS = DAS_ATTRS + (
    "from_set",
    "is_start_node",
    "is_decoy",
    "search_forwarded",
    "redirect_length",
    "search_sent",
    "change_sent",
)


def _counts(result):
    return {kind: result.simulator.trace.count(kind) for kind in COUNTED_KINDS}


def _assert_identical(fast, legacy, attrs=DAS_ATTRS):
    assert fast.schedule.slots() == legacy.schedule.slots()
    assert fast.schedule.parents() == legacy.schedule.parents()
    assert fast.messages_sent == legacy.messages_sent
    assert _counts(fast) == _counts(legacy)
    assert fast.simulator.trace.records == legacy.simulator.trace.records
    for node in legacy.simulator.topology.nodes:
        fp = fast.simulator.process_at(node)
        lp = legacy.simulator.process_at(node)
        for attr in attrs:
            assert getattr(fp, attr) == getattr(lp, attr), (node, attr)


class TestDasDifferential:
    @pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("noise_name", sorted(NOISES))
    def test_fast_matches_legacy(self, topo_name, noise_name):
        make_topo = TOPOLOGIES[topo_name]
        make_noise = NOISES[noise_name]
        for seed in SEEDS:
            fast = run_das_setup(
                make_topo(),
                config=DAS_CFG,
                seed=seed,
                noise=make_noise(),
                setup_kernel="fast",
            )
            legacy = run_das_setup(
                make_topo(),
                config=DAS_CFG,
                seed=seed,
                noise=make_noise(),
                setup_kernel="legacy",
            )
            _assert_identical(fast, legacy)

    def test_default_config_matches_legacy(self, grid7):
        """One cell at the paper's full Table I parameters (80 rounds)."""
        fast = run_das_setup(GridTopology(7), seed=0, setup_kernel="fast")
        legacy = run_das_setup(GridTopology(7), seed=0, setup_kernel="legacy")
        _assert_identical(fast, legacy)


class TestSlpDifferential:
    @pytest.mark.parametrize("topo_name", ["grid5", "random16"])
    @pytest.mark.parametrize("noise_name", sorted(NOISES))
    def test_fast_matches_legacy(self, topo_name, noise_name):
        make_topo = TOPOLOGIES[topo_name]
        make_noise = NOISES[noise_name]
        for seed in SEEDS:
            fast = run_slp_setup(
                make_topo(),
                config=SLP_CFG,
                seed=seed,
                noise=make_noise(),
                setup_kernel="fast",
            )
            legacy = run_slp_setup(
                make_topo(),
                config=SLP_CFG,
                seed=seed,
                noise=make_noise(),
                setup_kernel="legacy",
            )
            _assert_identical(fast, legacy, attrs=SLP_ATTRS)
            assert fast.search_messages == legacy.search_messages
            assert fast.change_messages == legacy.change_messages
            assert fast.start_node == legacy.start_node
            assert fast.decoy_path == legacy.decoy_path

    def test_default_config_matches_legacy(self, grid7):
        """The harness-computed CL/SD defaults, full 80 + 20 rounds."""
        fast = run_slp_setup(GridTopology(7), seed=1, setup_kernel="fast")
        legacy = run_slp_setup(GridTopology(7), seed=1, setup_kernel="legacy")
        _assert_identical(fast, legacy, attrs=SLP_ATTRS)


class TestProtocolErrors:
    """Failure parity: both engines raise the same ProtocolError."""

    def test_unassigned_nodes_raise_identically(self):
        """Too few rounds for the assignment wave to cross the line:
        distant nodes never obtain a slot, under either engine."""
        cfg = DasProtocolConfig(setup_periods=3, neighbour_discovery_periods=1)
        errors = []
        for kernel in ("fast", "legacy"):
            with pytest.raises(ProtocolError) as exc:
                run_das_setup(LineTopology(9), config=cfg, seed=0, setup_kernel=kernel)
            errors.append(str(exc.value))
        assert errors[0] == errors[1]
        assert "never obtained a slot" in errors[0]

    def test_invalid_setup_kernel_rejected(self, grid5):
        with pytest.raises(ConfigurationError, match="setup_kernel"):
            run_das_setup(grid5, seed=0, setup_kernel="warp")
        with pytest.raises(ConfigurationError, match="setup_kernel"):
            run_slp_setup(grid5, seed=0, setup_kernel="warp")


class TestFallbackGates:
    def test_subclass_is_not_compilable(self):
        class CustomProcess(DasNodeProcess):
            pass

        processes = {
            0: CustomProcess(0, is_sink=True, config=DAS_CFG),
            1: DasNodeProcess(1, is_sink=False, config=DAS_CFG),
        }
        assert not fast_setup_compilable(processes, DasNodeProcess)
        assert fast_setup_compilable(
            {n: DasNodeProcess(n, is_sink=n == 0, config=DAS_CFG) for n in (0, 1)},
            DasNodeProcess,
        )

    def test_subclass_falls_back_to_heap_with_identical_results(
        self, grid5, monkeypatch
    ):
        """A process_factory subclass must never enter the fast kernel —
        and the heap run it falls back to equals an explicit legacy run."""

        class CustomProcess(DasNodeProcess):
            pass

        called = []
        real = fs.run_fast_setup
        monkeypatch.setattr(
            fs, "run_fast_setup", lambda *a, **k: called.append(True) or real(*a, **k)
        )
        import repro.das.protocol as protocol

        monkeypatch.setattr(
            protocol, "run_fast_setup", fs.run_fast_setup, raising=True
        )
        fell_back = run_das_setup(
            grid5,
            config=DAS_CFG,
            seed=3,
            process_factory=CustomProcess,
            setup_kernel="fast",
        )
        assert not called
        legacy = run_das_setup(
            grid5, config=DAS_CFG, seed=3, setup_kernel="legacy"
        )
        assert fell_back.schedule.slots() == legacy.schedule.slots()
        assert fell_back.messages_sent == legacy.messages_sent

    def test_degenerate_jitter_is_not_supported(self):
        """jitter_fraction == 1.0 lets a broadcast land past the round
        boundary; the static gate must refuse it."""
        cfg = DasProtocolConfig(jitter_fraction=1.0)
        assert not fast_setup_supported(cfg, 1e-4)
        assert fast_setup_supported(DasProtocolConfig(), 1e-4)

    def test_slp_chain_budget_counts_against_the_round(self):
        """The SLP search/change chain tightens the timing gate: a huge
        propagation delay passes the plain-DAS check but not SLP's."""
        cfg = DasProtocolConfig()  # 0.5 s period, 0.8 jitter
        delay = 0.05  # one hop fits (0.4 + 0.05 < 0.5) ...
        assert fast_setup_supported(cfg, delay)
        # ... but a 40+-hop search chain does not.
        assert not fast_setup_supported(
            cfg, delay, search_distance=3, change_length=5
        )

    def test_default_run_uses_the_fast_kernel(self, grid5, monkeypatch):
        """The default engages the kernel (not a silent permanent
        fallback)."""
        import repro.das.protocol as protocol

        called = []
        real = fs.run_fast_setup

        def spy(*args, **kwargs):
            called.append(True)
            return real(*args, **kwargs)

        monkeypatch.setattr(protocol, "run_fast_setup", spy)
        run_das_setup(grid5, config=DAS_CFG, seed=0)
        assert called


class TestExperimentThreading:
    """setup_kernel travels through ExperimentConfig and the runners."""

    def test_distributed_builds_identical_across_kernels(self, grid5):
        from repro.experiments import ExperimentConfig, ExperimentRunner

        params_kwargs = dict(
            algorithm="slp",
            use_distributed=True,
            repeats=1,
            use_schedule_cache=False,
        )
        runner = ExperimentRunner(grid5)
        fast = runner.build_schedule(
            ExperimentConfig(setup_kernel="fast", **params_kwargs), seed=4
        )
        legacy = runner.build_schedule(
            ExperimentConfig(setup_kernel="legacy", **params_kwargs), seed=4
        )
        assert fast.slots() == legacy.slots()
        assert fast.parents() == legacy.parents()

    def test_cache_keys_never_share_entries_across_setup_kernels(self, grid5):
        """Selecting legacy is a bisection: it must not be handed a
        fast-built cache entry (and vice versa)."""
        from repro.experiments import ExperimentConfig, ExperimentRunner

        runner = ExperimentRunner(grid5)
        kf = runner.schedule_key_for(
            ExperimentConfig(use_distributed=True, setup_kernel="fast"), 0
        )
        kl = runner.schedule_key_for(
            ExperimentConfig(use_distributed=True, setup_kernel="legacy"), 0
        )
        kd = runner.schedule_key_for(
            ExperimentConfig(use_distributed=True), 0
        )
        assert kf != kl
        assert kd == kf  # None resolves to the default engine (fast)
        # Centralised builds ignore the knob entirely.
        kc1 = runner.schedule_key_for(ExperimentConfig(setup_kernel="fast"), 0)
        kc2 = runner.schedule_key_for(ExperimentConfig(setup_kernel="legacy"), 0)
        assert kc1 == kc2

    def test_scenario_runner_override_is_bit_identical(self):
        from repro.scenarios import ScenarioRunner

        fast = ScenarioRunner(setup_kernel="fast").run("paper-baseline", seeds=2)
        legacy = ScenarioRunner(setup_kernel="legacy").run("paper-baseline", seeds=2)
        assert fast.to_json() == legacy.to_json()


class TestScheduleShipping:
    """Satellite: the parallel runner ships already-built schedules with
    each worker chunk, and the accounting stays truthful."""

    def _distributed_config(self):
        from repro.experiments import ExperimentConfig

        return ExperimentConfig(
            algorithm="protectionless",
            use_distributed=True,
            repeats=3,
            max_periods=4,
        )

    def test_parent_ships_only_warm_entries_counter_neutrally(self, grid5):
        from repro.experiments import ParallelExperimentRunner
        from repro.experiments.schedule_cache import ScheduleCache

        cache = ScheduleCache()
        runner = ParallelExperimentRunner(grid5, workers=2, schedule_cache=cache)
        config = self._distributed_config()
        # Cold parent: nothing to ship.
        assert runner._cached_schedules_for(config, (0, 1, 2)) is None
        # Warm one seed; exactly that entry travels.
        built = runner.build_schedule(config, 1)
        before = cache.stats()
        shipped = runner._cached_schedules_for(config, (0, 1, 2))
        assert cache.stats() == before  # peek is counter-neutral
        assert shipped is not None and len(shipped) == 1
        key = runner.schedule_key_for(config, 1)
        assert shipped[key] is built

    def test_worker_chunk_reuses_preloaded_schedules(self, grid5):
        """_run_seed_chunk with a shipped payload takes cache hits, not
        rebuilds — run in-process so the default cache is observable."""
        from repro.experiments import ExperimentRunner
        from repro.experiments.parallel import _run_seed_chunk
        from repro.experiments.schedule_cache import (
            default_schedule_cache,
            reset_default_cache,
        )

        config = self._distributed_config()
        parent = ExperimentRunner(grid5)
        shipped = {
            parent.schedule_key_for(config, seed): parent._build_schedule(
                config, seed
            )
            for seed in (0, 1)
        }
        reset_default_cache()
        try:
            results = _run_seed_chunk(grid5, config, (0, 1), shipped)
            stats = default_schedule_cache().stats()
            assert len(results) == 2
            assert stats["hits"] == 2  # both lookups found shipped entries
            assert stats["misses"] == 0  # preload itself counted nothing
        finally:
            reset_default_cache()

    def test_pool_results_identical_with_warm_and_cold_parent(self, grid5):
        from repro.experiments import (
            ExperimentRunner,
            ParallelExperimentRunner,
        )

        config = self._distributed_config()
        serial = ExperimentRunner(grid5).run(config)
        with ParallelExperimentRunner(grid5, workers=2) as pool_runner:
            # Warm the parent cache so chunks ship real payloads.
            for i in range(config.repeats):
                pool_runner.build_schedule(config, config.base_seed + i)
            warm = pool_runner.run(config)
        assert warm.results == serial.results
        assert warm.stats == serial.stats
