"""Direct unit tests for the convergecast node process."""

import pytest

from repro.app import AggregateMessage, ConvergecastNodeProcess
from repro.simulator import Simulator
from repro.topology import LineTopology


def make_process(node=1, slot=2, parent=2, is_sink=False, is_source=False,
                 children=None):
    line = LineTopology(5)
    sim = Simulator(line)
    proc = ConvergecastNodeProcess(
        node,
        slot=slot,
        parent=parent,
        is_sink=is_sink,
        is_source=is_source,
        children=children or set(),
    )
    sim.register_process(proc)
    return sim, proc


def msg(sender, period, origins, slot=1):
    return AggregateMessage(
        sender=sender, period=period, slot=slot, origins=frozenset(origins)
    )


class TestAggregation:
    def test_own_reading_each_period(self):
        _, proc = make_process(node=1, children={0})
        proc.on_period_start(0, 0.0)
        assert proc._pending == {1}

    def test_child_messages_folded(self):
        _, proc = make_process(node=1, children={0})
        proc.on_period_start(0, 0.0)
        proc.on_receive(0, msg(0, 0, {0}), 0.5)
        assert proc._pending == {0, 1}

    def test_non_child_messages_ignored(self):
        _, proc = make_process(node=1, children={0})
        proc.on_period_start(0, 0.0)
        proc.on_receive(2, msg(2, 0, {2, 3}), 0.5)
        assert proc._pending == {1}

    def test_stale_period_ignored(self):
        _, proc = make_process(node=1, children={0})
        proc.on_period_start(3, 0.0)
        proc.on_receive(0, msg(0, 2, {0}), 0.5)  # old frame
        assert proc._pending == {1}

    def test_sink_accepts_children_and_records(self):
        _, sink = make_process(node=4, slot=None, parent=None, is_sink=True,
                               children={3})
        sink.on_period_start(0, 0.0)
        sink.on_receive(3, msg(3, 0, {0, 1, 2, 3}), 0.5)
        sink.on_period_start(1, 5.5)
        assert sink.collected_by_period[0] == 4

    def test_finish_flushes_last_period(self):
        _, sink = make_process(node=4, slot=None, parent=None, is_sink=True,
                               children={3})
        sink.on_period_start(0, 0.0)
        sink.on_receive(3, msg(3, 0, {3}), 0.5)
        sink.finish(0)
        assert sink.collected_by_period[0] == 1


class TestTransmission:
    def test_broadcast_carries_pending_origins(self):
        sim, proc = make_process(node=1, children={0})
        sent = []
        sim.radio.broadcast = lambda sender, message: sent.append(message)
        proc.on_period_start(0, 0.0)
        proc.on_receive(0, msg(0, 0, {0}), 0.4)
        proc.on_slot(0, 2, 0.6)
        assert len(sent) == 1
        assert sent[0].origins == frozenset({0, 1})
        assert sent[0].aggregate_size == 2
        assert proc.messages_sent == 1

    def test_sink_never_transmits(self):
        sim, sink = make_process(node=4, slot=None, parent=None, is_sink=True)
        sent = []
        sim.radio.broadcast = lambda sender, message: sent.append(message)
        sink.on_period_start(0, 0.0)
        sink.on_slot(0, 1, 0.6)
        assert sent == []
        assert sink.messages_sent == 0

    def test_non_aggregate_messages_ignored(self):
        _, proc = make_process(node=1)
        proc.on_period_start(0, 0.0)
        proc.on_receive(0, "not-an-aggregate", 0.5)  # must not raise
        assert proc._pending == {1}


class TestWiring:
    def test_set_children(self):
        _, proc = make_process(node=1)
        proc.set_children({0, 2})
        proc.on_period_start(0, 0.0)
        proc.on_receive(2, msg(2, 0, {2}), 0.5)
        assert 2 in proc._pending

    def test_properties(self):
        _, proc = make_process(node=1, slot=7, is_source=True)
        assert proc.slot == 7
        assert proc.is_source and not proc.is_sink
