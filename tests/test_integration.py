"""End-to-end integration tests across the full stack.

These tests tie all subsystems together the way the paper's evaluation
does: distributed setup -> schedule -> operational phase -> metrics,
and cross-check the three implementations of attacker dynamics
(distributed runtime, centralised pipeline, formal verifier).
"""

import pytest

from repro.app import run_operational_phase
from repro.core import check_strong_das, check_weak_das, safety_period
from repro.das import DasProtocolConfig, run_das_setup
from repro.experiments import measure_setup_overhead
from repro.mac import TdmaFrame
from repro.metrics import aggregation_stats, capture_stats
from repro.simulator import CasinoLabNoise
from repro.slp import SlpProtocolConfig, run_slp_setup
from repro.topology import GridTopology
from repro.verification import verify_schedule


@pytest.fixture(scope="module")
def grid():
    return GridTopology(7)


@pytest.fixture(scope="module")
def distributed_pair(grid):
    """One protectionless + one SLP schedule from full distributed runs."""
    das_cfg = DasProtocolConfig(setup_periods=40)
    slp_cfg = SlpProtocolConfig(
        das=das_cfg, search_distance=2, change_length=3, refinement_periods=12
    )
    baseline = run_das_setup(grid, config=das_cfg, seed=5)
    slp = run_slp_setup(grid, config=slp_cfg, seed=5)
    return baseline, slp


class TestFullStack:
    def test_distributed_schedules_valid(self, grid, distributed_pair):
        baseline, slp = distributed_pair
        assert check_strong_das(grid, baseline.schedule).ok
        assert check_weak_das(grid, slp.schedule).ok

    def test_operational_phase_on_distributed_schedules(self, grid, distributed_pair):
        baseline, slp = distributed_pair
        for schedule in (baseline.schedule, slp.schedule):
            result = run_operational_phase(grid, schedule, seed=0)
            assert result.periods_run >= 1
            assert result.aggregation_ratio > 0.9

    def test_verifier_on_distributed_schedules(self, grid, distributed_pair):
        baseline, slp = distributed_pair
        frame = TdmaFrame()
        delta = safety_period(grid, frame.period_length).periods
        for schedule in (baseline.schedule, slp.schedule):
            result = verify_schedule(grid, schedule, delta)
            # Whatever the verdict, the result triple is well-formed.
            if not result.slp_aware:
                assert result.counterexample[0] == grid.sink

    def test_slp_overhead_is_negligible(self, grid):
        measurement = measure_setup_overhead(
            grid,
            seeds=(0, 1),
            search_distance=2,
            setup_periods=40,
            refinement_periods=12,
        )
        # The paper's claim: the 3-phase protocol costs only a handful
        # of extra messages over Phase 1 alone.
        assert measurement.mean_overhead_percent < 25.0

    def test_capture_statistics_pipeline(self, grid):
        """Runner-level statistics flow end to end."""
        from repro.experiments import ExperimentConfig, ExperimentRunner

        runner = ExperimentRunner(grid)
        outcome = runner.run(
            ExperimentConfig(algorithm="protectionless", repeats=6, noise="ideal")
        )
        stats = outcome.stats
        assert stats.runs == 6
        agg = aggregation_stats(outcome.results)
        assert agg.mean_ratio > 0.99  # ideal links: perfect convergecast

    def test_noise_affects_runs_not_validity(self, grid):
        """Casino-lab noise changes attacker trajectories but the
        schedule layer below is untouched."""
        schedule = run_das_setup(
            grid, config=DasProtocolConfig(setup_periods=40), seed=9
        ).schedule
        clean = run_operational_phase(grid, schedule, seed=1)
        noisy = run_operational_phase(
            grid, schedule, noise=CasinoLabNoise(), seed=1
        )
        assert clean.messages_sent >= noisy.messages_sent * 0  # both ran
        assert check_strong_das(grid, schedule).ok


class TestHeadlineShape:
    """The paper's core claims, at reduced scale for test runtime."""

    def test_slp_reduces_capture_ratio(self):
        """Across enough seeds, SLP DAS captures strictly less often
        than protectionless DAS (the Figure 5 shape)."""
        from repro.das import centralized_das_schedule
        from repro.slp import SlpParameters, build_slp_schedule

        grid = GridTopology(9)
        frame = TdmaFrame()
        delta = safety_period(grid, frame.period_length).periods
        base_caps = slp_caps = 0
        for seed in range(40):
            base = centralized_das_schedule(grid, seed=seed)
            refined = build_slp_schedule(
                grid, SlpParameters(search_distance=3), seed=seed, baseline=base
            ).schedule
            base_caps += not verify_schedule(grid, base, delta).slp_aware
            slp_caps += not verify_schedule(grid, refined, delta).slp_aware
        assert base_caps > 0, "baseline never captured: no privacy problem to solve"
        assert slp_caps < base_caps, (
            f"SLP did not reduce captures: base={base_caps}, slp={slp_caps}"
        )

    def test_capture_ratio_in_paper_band(self):
        """Protectionless capture sits in a plausible band (the paper
        reports 18-35% on its grids)."""
        from repro.das import centralized_das_schedule

        grid = GridTopology(9)
        frame = TdmaFrame()
        delta = safety_period(grid, frame.period_length).periods
        caps = sum(
            not verify_schedule(
                grid, centralized_das_schedule(grid, seed=seed), delta
            ).slp_aware
            for seed in range(60)
        )
        ratio = caps / 60
        assert 0.05 <= ratio <= 0.60
