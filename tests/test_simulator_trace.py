"""Unit tests for the trace recorder."""

from repro.simulator import TraceRecorder


class TestTraceRecorder:
    def test_records_in_order(self):
        t = TraceRecorder()
        t.record(1.0, "a", x=1)
        t.record(2.0, "b", y=2)
        assert [r.kind for r in t] == ["a", "b"]
        assert t.records[0].detail == {"x": 1}

    def test_counts_always_maintained(self):
        t = TraceRecorder(kinds=frozenset({"keep"}))
        t.record(0.0, "keep")
        t.record(0.0, "filtered")
        t.record(0.0, "filtered")
        assert t.count("filtered") == 2
        assert t.count("keep") == 1
        assert len(t) == 1  # only "keep" retained

    def test_count_unknown_kind(self):
        assert TraceRecorder().count("nothing") == 0

    def test_counts_copy(self):
        t = TraceRecorder()
        t.record(0.0, "a")
        counts = t.counts()
        counts["a"] = 99
        assert t.count("a") == 1

    def test_of_kind(self):
        t = TraceRecorder()
        t.record(0.0, "a", n=1)
        t.record(1.0, "b", n=2)
        t.record(2.0, "a", n=3)
        assert [r.detail["n"] for r in t.of_kind("a")] == [1, 3]

    def test_where(self):
        t = TraceRecorder()
        for i in range(5):
            t.record(float(i), "tick", n=i)
        late = t.where(lambda r: r.time >= 3.0)
        assert [r.detail["n"] for r in late] == [3, 4]

    def test_last(self):
        t = TraceRecorder()
        t.record(0.0, "a", n=1)
        t.record(1.0, "a", n=2)
        assert t.last("a").detail["n"] == 2
        assert t.last("missing") is None

    def test_clear(self):
        t = TraceRecorder()
        t.record(0.0, "a")
        t.clear()
        assert len(t) == 0
        assert t.count("a") == 0
