"""Unit tests for the trace recorder."""

from repro.simulator import COUNTS_ONLY, TraceRecorder


class TestTraceRecorder:
    def test_records_in_order(self):
        t = TraceRecorder()
        t.record(1.0, "a", x=1)
        t.record(2.0, "b", y=2)
        assert [r.kind for r in t] == ["a", "b"]
        assert t.records[0].detail == {"x": 1}

    def test_counts_always_maintained(self):
        t = TraceRecorder(kinds=frozenset({"keep"}))
        t.record(0.0, "keep")
        t.record(0.0, "filtered")
        t.record(0.0, "filtered")
        assert t.count("filtered") == 2
        assert t.count("keep") == 1
        assert len(t) == 1  # only "keep" retained

    def test_count_unknown_kind(self):
        assert TraceRecorder().count("nothing") == 0

    def test_counts_copy(self):
        t = TraceRecorder()
        t.record(0.0, "a")
        counts = t.counts()
        counts["a"] = 99
        assert t.count("a") == 1

    def test_of_kind(self):
        t = TraceRecorder()
        t.record(0.0, "a", n=1)
        t.record(1.0, "b", n=2)
        t.record(2.0, "a", n=3)
        assert [r.detail["n"] for r in t.of_kind("a")] == [1, 3]

    def test_where(self):
        t = TraceRecorder()
        for i in range(5):
            t.record(float(i), "tick", n=i)
        late = t.where(lambda r: r.time >= 3.0)
        assert [r.detail["n"] for r in late] == [3, 4]

    def test_last(self):
        t = TraceRecorder()
        t.record(0.0, "a", n=1)
        t.record(1.0, "a", n=2)
        assert t.last("a").detail["n"] == 2
        assert t.last("missing") is None

    def test_clear(self):
        t = TraceRecorder()
        t.record(0.0, "a")
        t.clear()
        assert len(t) == 0
        assert t.count("a") == 0


class TestKindFiltering:
    """The kinds filter: records dropped, counts kept."""

    def test_filter_drops_records_but_keeps_counts(self):
        t = TraceRecorder(kinds=frozenset({"keep"}))
        for i in range(3):
            t.record(float(i), "keep", n=i)
            t.record(float(i), "dropped", n=i)
        assert t.count("keep") == 3
        assert t.count("dropped") == 3
        assert len(t) == 3
        assert all(r.kind == "keep" for r in t)

    def test_of_kind_on_filtered_recorder(self):
        t = TraceRecorder(kinds=frozenset({"keep"}))
        t.record(0.0, "keep", n=1)
        t.record(1.0, "dropped", n=2)
        t.record(2.0, "keep", n=3)
        assert [r.detail["n"] for r in t.of_kind("keep")] == [1, 3]
        assert t.of_kind("dropped") == []  # counted, never retained

    def test_where_on_filtered_recorder(self):
        t = TraceRecorder(kinds=frozenset({"keep"}))
        for i in range(4):
            t.record(float(i), "keep", n=i)
            t.record(float(i), "dropped", n=i)
        late = t.where(lambda r: r.time >= 2.0)
        assert [r.detail["n"] for r in late] == [2, 3]
        assert all(r.kind == "keep" for r in late)

    def test_last_skips_filtered_kinds(self):
        t = TraceRecorder(kinds=frozenset({"keep"}))
        t.record(0.0, "keep", n=1)
        t.record(1.0, "dropped", n=2)
        assert t.last("keep").detail["n"] == 1
        assert t.last("dropped") is None

    def test_wants(self):
        everything = TraceRecorder()
        assert everything.wants("anything")
        filtered = TraceRecorder(kinds=frozenset({"keep"}))
        assert filtered.wants("keep")
        assert not filtered.wants("dropped")


class TestCountingOnlyMode:
    """``kinds=frozenset()``: totals only, no record construction."""

    def test_counts_only_flag(self):
        assert TraceRecorder(kinds=COUNTS_ONLY).counting_only
        assert TraceRecorder(kinds=frozenset()).counting_only
        assert not TraceRecorder().counting_only
        assert not TraceRecorder(kinds=frozenset({"x"})).counting_only

    def test_record_retains_nothing(self):
        t = TraceRecorder(kinds=COUNTS_ONLY)
        t.record(0.0, "a", x=1)
        t.record(1.0, "b")
        assert len(t) == 0
        assert t.records == []
        assert t.counts() == {"a": 1, "b": 1}
        assert t.of_kind("a") == []
        assert t.where(lambda r: True) == []
        assert t.last("a") is None

    def test_wants_nothing(self):
        t = TraceRecorder(kinds=COUNTS_ONLY)
        assert not t.wants("a")

    def test_bump_matches_record_counts(self):
        via_record = TraceRecorder(kinds=COUNTS_ONLY)
        via_bump = TraceRecorder(kinds=COUNTS_ONLY)
        for kind in ("a", "b", "a", "c", "a"):
            via_record.record(0.0, kind, detail="ignored")
            via_bump.bump(kind)
        assert via_bump.counts() == via_record.counts()

    def test_bump_on_unfiltered_recorder_keeps_no_record(self):
        t = TraceRecorder()
        t.bump("a")
        assert t.count("a") == 1
        assert len(t) == 0  # bump never materialises a record

    def test_clear_resets_counting_only_recorder(self):
        t = TraceRecorder(kinds=COUNTS_ONLY)
        t.bump("a")
        t.clear()
        assert t.counts() == {}
        assert t.counting_only  # mode survives a clear
