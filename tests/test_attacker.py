"""Unit tests for the (R, H, M, s0, D)-attacker (Figure 1)."""

import random

import pytest

from repro.attacker import (
    AttackerSpec,
    AttackerState,
    AvoidRecentlyVisited,
    FollowAnyHeard,
    FollowFirstHeard,
    HeardMessage,
    paper_attacker,
)
from repro.errors import ConfigurationError


def hm(sender, slot, time=None):
    return HeardMessage(sender=sender, slot=slot, time=float(slot if time is None else time))


class TestSpec:
    def test_paper_attacker_is_1_0_1(self):
        spec = paper_attacker()
        assert (spec.r, spec.h, spec.m) == (1, 0, 1)
        assert isinstance(spec.decision, FollowFirstHeard)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AttackerSpec(messages_per_move=0)
        with pytest.raises(ConfigurationError):
            AttackerSpec(history_size=-1)
        with pytest.raises(ConfigurationError):
            AttackerSpec(moves_per_period=0)

    def test_describe_uses_paper_notation(self):
        assert paper_attacker().describe() == "(1, 0, 1, s0, FollowFirstHeard)-A"


class TestDecisionFunctions:
    def test_first_heard_picks_earliest(self):
        rng = random.Random(0)
        d = FollowFirstHeard()
        heard = [hm(5, 9, time=2.0), hm(3, 1, time=1.0)]
        assert d.choose(heard, (), rng) == 3
        assert d.candidates(heard, ()) == frozenset({3})

    def test_first_heard_empty_candidates(self):
        assert FollowFirstHeard().candidates([], ()) == frozenset()

    def test_any_heard_candidates_are_all(self):
        heard = [hm(1, 1), hm(2, 2), hm(3, 3)]
        assert FollowAnyHeard().candidates(heard, ()) == frozenset({1, 2, 3})

    def test_any_heard_choice_is_seeded(self):
        heard = [hm(1, 1), hm(2, 2), hm(3, 3)]
        a = FollowAnyHeard().choose(heard, (), random.Random(7))
        b = FollowAnyHeard().choose(heard, (), random.Random(7))
        assert a == b and a in {1, 2, 3}

    def test_avoid_recent_skips_history(self):
        d = AvoidRecentlyVisited()
        heard = [hm(1, 1, time=1.0), hm(2, 2, time=2.0)]
        assert d.choose(heard, history=(1,), rng=random.Random(0)) == 2
        assert d.candidates(heard, history=(1,)) == frozenset({2})

    def test_avoid_recent_falls_back_when_all_visited(self):
        d = AvoidRecentlyVisited()
        heard = [hm(1, 1, time=1.0)]
        assert d.choose(heard, history=(1,), rng=random.Random(0)) == 1


class TestStateMachine:
    def test_r1_decides_after_first_message(self):
        state = AttackerState(paper_attacker(), start=10)
        assert state.hear(hm(5, 3))  # ready immediately with R=1
        assert state.decide(random.Random(0)) == 5
        assert state.location == 5
        assert state.path == [10, 5]

    def test_r2_waits_for_two_messages(self):
        spec = AttackerSpec(messages_per_move=2)
        state = AttackerState(spec, start=10)
        assert not state.hear(hm(5, 3, time=1.0))
        assert state.hear(hm(6, 4, time=2.0))
        assert state.decide(random.Random(0)) == 5  # earliest of the two

    def test_messages_capped_at_r(self):
        spec = AttackerSpec(messages_per_move=1)
        state = AttackerState(spec, start=0)
        state.hear(hm(1, 1, time=5.0))
        state.hear(hm(2, 2, time=1.0))  # dropped: buffer already full
        assert state.decide(random.Random(0)) == 1

    def test_move_budget_enforced(self):
        spec = AttackerSpec(moves_per_period=1)
        state = AttackerState(spec, start=0)
        state.hear(hm(1, 1))
        assert state.decide(random.Random(0)) == 1
        state.hear(hm(2, 2))
        assert state.decide(random.Random(0)) is None  # M exhausted

    def test_next_period_refreshes_budget(self):
        spec = AttackerSpec(moves_per_period=1)
        state = AttackerState(spec, start=0)
        state.hear(hm(1, 1))
        state.decide(random.Random(0))
        state.next_period()
        state.hear(hm(2, 2))
        assert state.decide(random.Random(0)) == 2

    def test_decide_without_messages_is_noop(self):
        state = AttackerState(paper_attacker(), start=0)
        assert state.decide(random.Random(0)) is None

    def test_history_ring_buffer(self):
        spec = AttackerSpec(history_size=2, moves_per_period=5)
        state = AttackerState(spec, start=0)
        for sender in (1, 2, 3):
            state.hear(hm(sender, sender))
            state.decide(random.Random(0))
        # History holds the last two *previous* locations.
        assert state.history == [1, 2]

    def test_h0_keeps_no_history(self):
        state = AttackerState(paper_attacker(), start=0)
        state.hear(hm(1, 1))
        state.decide(random.Random(0))
        assert state.history == []

    def test_staying_put_does_not_extend_path(self):
        state = AttackerState(paper_attacker(), start=5)
        state.hear(hm(5, 1))  # own location transmitting
        assert state.decide(random.Random(0)) is None
        assert state.path == [5]

    def test_reset(self):
        state = AttackerState(paper_attacker(), start=7)
        state.hear(hm(1, 1))
        state.decide(random.Random(0))
        state.reset()
        assert state.location == 7
        assert state.path == [7]
        assert state.messages == [] and state.moves == 0
