"""Unit tests for grid topologies (the paper's evaluation layout)."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    PAPER_GRID_SIZES,
    PAPER_NODE_SPACING_M,
    GridTopology,
    paper_grid,
)


class TestGridConstruction:
    def test_node_count(self):
        assert GridTopology(4).num_nodes == 16

    def test_edge_count(self):
        # n x n grid has 2 n (n-1) edges.
        g = GridTopology(5)
        assert g.num_edges == 2 * 5 * 4

    def test_rejects_tiny_grid(self):
        with pytest.raises(TopologyError, match="at least 2x2"):
            GridTopology(1)

    def test_rejects_bad_spacing(self):
        with pytest.raises(TopologyError, match="positive"):
            GridTopology(3, spacing=0.0)

    def test_default_roles_match_paper(self):
        g = GridTopology(11)
        assert g.source == 0  # top-left
        assert g.source == g.node_at(0, 0)
        assert g.sink == g.node_at(5, 5)  # centre

    def test_role_overrides(self):
        g = GridTopology(5, source=24, sink=0)
        assert g.source == 24
        assert g.sink == 0

    def test_positions_use_spacing(self):
        g = GridTopology(3, spacing=4.5)
        assert g.position(g.node_at(1, 2)).x == pytest.approx(9.0)
        assert g.position(g.node_at(1, 2)).y == pytest.approx(4.5)

    def test_four_neighbour_connectivity_only(self):
        g = GridTopology(3)
        centre = g.node_at(1, 1)
        assert set(g.neighbours(centre)) == {
            g.node_at(0, 1),
            g.node_at(1, 0),
            g.node_at(1, 2),
            g.node_at(2, 1),
        }
        # no diagonals
        assert not g.are_linked(g.node_at(0, 0), g.node_at(1, 1))


class TestGridQueries:
    def test_coordinates_roundtrip(self):
        g = GridTopology(7)
        for node in (0, 13, 25, 48):
            r, c = g.coordinates_of(node)
            assert g.node_at(r, c) == node

    def test_coordinates_of_unknown_node(self):
        with pytest.raises(TopologyError):
            GridTopology(3).coordinates_of(99)

    def test_node_at_out_of_bounds(self):
        with pytest.raises(TopologyError, match="out of bounds"):
            GridTopology(3).node_at(3, 0)

    def test_corners(self):
        g = GridTopology(5)
        assert g.corners() == (0, 4, 20, 24)

    def test_sink_distance_is_manhattan(self):
        g = GridTopology(5)
        # hop distance from corner to centre = 2 + 2.
        assert g.sink_distance(0) == 4

    def test_source_sink_distance_paper_values(self):
        # Δss = 2 * (size // 2) for a corner source and centre sink.
        for size, expected in [(11, 10), (15, 14), (21, 20)]:
            assert paper_grid(size).source_sink_distance() == expected


class TestPaperGrid:
    def test_accepts_paper_sizes(self):
        for size in PAPER_GRID_SIZES:
            g = paper_grid(size)
            assert g.size == size
            assert g.spacing == PAPER_NODE_SPACING_M

    def test_rejects_other_sizes(self):
        with pytest.raises(TopologyError, match="paper evaluates"):
            paper_grid(13)

    def test_name_is_descriptive(self):
        assert paper_grid(11).name == "grid-11x11"
