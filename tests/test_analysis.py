"""Tests for the gradient-field analysis module."""

import pytest

from repro.analysis import (
    descent_path,
    gradient_field,
    gradient_successor,
    predicts_capture,
    refinement_footprint,
)
from repro.core import Schedule, safety_period
from repro.das import centralized_das_schedule
from repro.errors import VerificationError
from repro.mac import TdmaFrame
from repro.slp import SlpParameters, build_slp_schedule
from repro.topology import GridTopology, LineTopology
from repro.verification import verify_schedule


def line_schedule(line):
    n = line.length
    return Schedule(
        {i: i + 1 for i in range(n)},
        {i: i + 1 for i in range(n - 1)},
        sink=n - 1,
    )


class TestSuccessor:
    def test_descends_toward_smaller_slots(self, line5):
        s = line_schedule(line5)
        assert gradient_successor(line5, s, 4) == 3
        assert gradient_successor(line5, s, 3) == 2

    def test_local_minimum_camps(self, line5):
        s = line_schedule(line5)
        assert gradient_successor(line5, s, 0) is None

    def test_matches_attacker_next_hop(self, grid5, grid5_schedule):
        from repro.app import run_operational_phase

        run = run_operational_phase(grid5, grid5_schedule, seed=0)
        path = run.attacker_path
        for a, b in zip(path, path[1:]):
            assert gradient_successor(grid5, grid5_schedule, a) == b


class TestDescentPath:
    def test_line_descent(self, line5):
        s = line_schedule(line5)
        assert descent_path(line5, s) == (4, 3, 2, 1, 0)

    def test_max_steps_truncates(self, line5):
        s = line_schedule(line5)
        assert descent_path(line5, s, max_steps=2) == (4, 3, 2)

    def test_unknown_start_rejected(self, line5):
        with pytest.raises(VerificationError):
            descent_path(line5, line_schedule(line5), start=99)

    def test_descent_slots_strictly_decrease(self, grid5, grid5_schedule):
        path = descent_path(grid5, grid5_schedule)
        slots = [
            grid5_schedule.slot_of(n) for n in path if n != grid5.sink
        ]
        assert slots == sorted(slots, reverse=True)
        assert len(set(slots)) == len(slots)


class TestGradientField:
    def test_every_node_has_a_basin(self, grid5, grid5_schedule):
        field = gradient_field(grid5, grid5_schedule)
        assert set(field.basin_of) == set(grid5.nodes)
        for minimum in field.minima:
            assert field.successor[minimum] is None

    def test_basins_are_consistent_with_successors(self, grid5, grid5_schedule):
        field = gradient_field(grid5, grid5_schedule)
        for node in grid5.nodes:
            nxt = field.successor[node]
            if nxt is not None:
                assert field.basin_of[node] == field.basin_of[nxt]

    def test_basin_members_cover_network(self, grid5, grid5_schedule):
        field = gradient_field(grid5, grid5_schedule)
        covered = set()
        for minimum in field.minima:
            covered.update(field.basin_members(minimum))
        assert covered == set(grid5.nodes)


class TestCapturePrediction:
    def test_agrees_with_verifier(self):
        grid = GridTopology(7)
        frame = TdmaFrame()
        delta = safety_period(grid, frame.period_length).periods
        for seed in range(15):
            schedule = centralized_das_schedule(grid, seed=seed)
            fast = predicts_capture(grid, schedule, delta)
            formal = not verify_schedule(grid, schedule, delta).slp_aware
            assert fast == formal, f"seed {seed}"

    def test_safety_horizon_matters(self, line5):
        s = line_schedule(line5)
        assert predicts_capture(line5, s, safety_periods=4)
        assert not predicts_capture(line5, s, safety_periods=3)


class TestFootprint:
    def test_refinement_redirects_descent(self, grid7):
        for seed in range(6):
            base = centralized_das_schedule(grid7, seed=seed)
            refined = build_slp_schedule(
                grid7, SlpParameters(2), seed=seed, baseline=base
            ).schedule
            report = refinement_footprint(grid7, base, refined)
            assert report["redirected_nodes"], "refinement changed nothing"
            assert report["sink_descent_after"][0] == grid7.sink

    def test_identity_footprint_is_empty(self, grid5, grid5_schedule):
        report = refinement_footprint(grid5, grid5_schedule, grid5_schedule)
        assert report["redirected_nodes"] == ()
        assert not report["descent_changed"]
