"""Tests for the error hierarchy and package metadata."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    ScheduleError,
    SimulationError,
    TopologyError,
    VerificationError,
)
from repro.version import PAPER_AUTHORS, PAPER_TITLE, PAPER_VENUE, __version__


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            TopologyError,
            ScheduleError,
            SimulationError,
            ProtocolError,
            VerificationError,
            ConfigurationError,
        ],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        assert issubclass(error, Exception)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(ReproError):
            raise ScheduleError("x")

    def test_library_raises_its_own_errors(self):
        from repro.topology import LineTopology

        with pytest.raises(ReproError):
            LineTopology(0)


class TestMetadata:
    def test_version_exported(self):
        assert repro.__version__ == __version__
        assert __version__.count(".") == 2

    def test_paper_identity(self):
        assert "Source Location Privacy" in PAPER_TITLE
        assert "Jhumka" in " ".join(PAPER_AUTHORS)
        assert "ICDCS 2017" in PAPER_VENUE

    def test_public_api_is_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ names missing: {name}"
