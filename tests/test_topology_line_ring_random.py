"""Unit tests for line, ring and random geometric topologies."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    LineTopology,
    RingTopology,
    random_geometric_topology,
)


class TestLine:
    def test_roles_default_to_ends(self):
        line = LineTopology(6)
        assert line.sink == 5
        assert line.source == 0

    def test_length_property(self):
        assert LineTopology(4).length == 4

    def test_rejects_single_node(self):
        with pytest.raises(TopologyError, match="at least 2"):
            LineTopology(1)

    def test_rejects_bad_spacing(self):
        with pytest.raises(TopologyError, match="positive"):
            LineTopology(4, spacing=-1.0)

    def test_interior_degree_is_two(self):
        line = LineTopology(5)
        assert line.degree(0) == 1
        assert line.degree(2) == 2

    def test_sink_override_moves_default_source(self):
        line = LineTopology(5, sink=0)
        assert line.sink == 0
        assert line.source == 4

    def test_positions_are_collinear(self):
        line = LineTopology(3, spacing=2.0)
        assert line.position(2).x == pytest.approx(4.0)
        assert line.position(2).y == 0.0


class TestRing:
    def test_every_node_has_degree_two(self):
        ring = RingTopology(6)
        assert all(ring.degree(n) == 2 for n in ring.nodes)

    def test_source_is_antipodal(self):
        ring = RingTopology(8)
        assert ring.source == 4
        assert ring.hop_distance(ring.sink, ring.source) == 4

    def test_rejects_short_ring(self):
        with pytest.raises(TopologyError, match="at least 3"):
            RingTopology(2)

    def test_rejects_bad_radius(self):
        with pytest.raises(TopologyError, match="positive"):
            RingTopology(5, radius=0)

    def test_odd_ring_antipode(self):
        ring = RingTopology(7)
        assert ring.source == 3

    def test_length_property(self):
        assert RingTopology(9).length == 9


class TestRandomGeometric:
    def test_reproducible_given_seed(self):
        a = random_geometric_topology(20, area_side=40, communication_range=14, seed=7)
        b = random_geometric_topology(20, area_side=40, communication_range=14, seed=7)
        assert a.nodes == b.nodes
        assert a.num_edges == b.num_edges
        assert a.sink == b.sink and a.source == b.source

    def test_connected_and_roled(self):
        topo = random_geometric_topology(25, area_side=40, communication_range=14, seed=3)
        assert topo.has_source
        assert topo.source != topo.sink
        assert topo.source_sink_distance() >= 1

    def test_source_is_far_from_sink(self):
        topo = random_geometric_topology(25, area_side=40, communication_range=14, seed=3)
        max_distance = max(topo.sink_distance(n) for n in topo.nodes)
        assert topo.source_sink_distance() == max_distance

    def test_infeasible_range_raises(self):
        with pytest.raises(TopologyError, match="could not sample"):
            random_geometric_topology(
                20, area_side=1000, communication_range=1, seed=0, max_attempts=3
            )

    def test_rejects_bad_parameters(self):
        with pytest.raises(TopologyError):
            random_geometric_topology(1, 10, 5)
        with pytest.raises(TopologyError):
            random_geometric_topology(5, -1, 5)
        with pytest.raises(TopologyError):
            random_geometric_topology(5, 10, 5, max_attempts=0)

    def test_explicit_roles_respected(self):
        topo = random_geometric_topology(
            15, area_side=30, communication_range=14, seed=5, sink=0, source=1
        )
        assert topo.sink == 0
        assert topo.source == 1
