"""Tier-1-safe smoke test for the perf benchmark harness.

Runs ``scripts/bench.py --quick`` (seconds, not minutes) so the bench
suite itself cannot silently rot: it must import, execute every
workload, pass its own serial-vs-parallel identity checks, and write
well-formed JSON.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchQuickMode:
    @pytest.fixture(scope="class")
    def bench_output(self, tmp_path_factory):
        spec = importlib.util.spec_from_file_location("bench_run", SCRIPT)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        out = tmp_path_factory.mktemp("bench") / "BENCH_test.json"
        code = module.main(["--quick", "--workers", "2", "--out", str(out)])
        return code, out

    def test_exit_code_zero(self, bench_output):
        code, _ = bench_output
        assert code == 0

    def test_json_written_with_meta(self, bench_output):
        _, out = bench_output
        data = json.loads(out.read_text())
        assert data["meta"]["quick"] is True
        assert data["meta"]["workers"] == 2
        assert data["meta"]["cpu_count"] >= 1
        assert data["meta"]["python"] == ".".join(map(str, sys.version_info[:3]))

    def test_all_quick_workloads_present(self, bench_output):
        _, out = bench_output
        workloads = json.loads(out.read_text())["workloads"]
        assert set(workloads) == {"sweep11", "das_setup", "trace_heavy", "scenario"}

    def test_sweep_identity_checks_pass(self, bench_output):
        _, out = bench_output
        sweep = json.loads(out.read_text())["workloads"]["sweep11"]
        assert sweep["stats_identical"] is True
        assert sweep["results_identical"] is True
        assert sweep["serial_seconds"] > 0
        assert sweep["parallel_seconds"] > 0
        assert sweep["speedup"] > 0

    def test_trace_heavy_outcome_identical(self, bench_output):
        _, out = bench_output
        trace = json.loads(out.read_text())["workloads"]["trace_heavy"]
        assert trace["outcome_identical"] is True
        assert trace["counting_only_seconds"] > 0

    def test_scenario_identity_checks_pass(self, bench_output):
        _, out = bench_output
        scenario = json.loads(out.read_text())["workloads"]["scenario"]
        assert scenario["scenario"] == "two-sources"
        assert scenario["results_identical"] is True
        assert scenario["runs_per_second_serial"] > 0


class TestBenchHelpers:
    def test_workers_zero_means_cpu_count(self, bench, tmp_path, monkeypatch):
        seen = {}

        def fake_suite(workers, quick):
            seen["workers"] = workers
            return {"meta": {"workers": workers, "quick": quick}, "workloads": {}}

        monkeypatch.setattr(bench, "run_suite", fake_suite)
        out = tmp_path / "b.json"
        assert bench.main(["--quick", "--workers", "0", "--out", str(out)]) == 0
        assert seen["workers"] >= 1

    def test_identity_failure_fails_the_run(self, bench, tmp_path, monkeypatch):
        def bad_suite(workers, quick):
            return {
                "meta": {},
                "workloads": {"sweep11": {"stats_identical": False}},
            }

        monkeypatch.setattr(bench, "run_suite", bad_suite)
        out = tmp_path / "b.json"
        assert bench.main(["--quick", "--out", str(out)]) == 1
