"""Tier-1-safe smoke test for the perf benchmark harness.

Runs ``scripts/bench.py --quick`` (seconds, not minutes) so the bench
suite itself cannot silently rot: it must import, execute every
workload, pass its own serial-vs-parallel identity checks, and write
well-formed JSON.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchQuickMode:
    @pytest.fixture(scope="class")
    def bench_output(self, tmp_path_factory):
        spec = importlib.util.spec_from_file_location("bench_run", SCRIPT)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        out = tmp_path_factory.mktemp("bench") / "BENCH_test.json"
        code = module.main(["--quick", "--workers", "2", "--out", str(out)])
        return code, out

    def test_exit_code_zero(self, bench_output):
        code, _ = bench_output
        assert code == 0

    def test_json_written_with_meta(self, bench_output):
        _, out = bench_output
        data = json.loads(out.read_text())
        assert data["meta"]["quick"] is True
        assert data["meta"]["workers"] == 2
        assert data["meta"]["cpu_count"] >= 1
        assert data["meta"]["python"] == ".".join(map(str, sys.version_info[:3]))

    def test_all_quick_workloads_present(self, bench_output):
        _, out = bench_output
        workloads = json.loads(out.read_text())["workloads"]
        assert set(workloads) == {"sweep11", "das_setup", "trace_heavy", "scenario"}

    def test_sweep_identity_checks_pass(self, bench_output):
        _, out = bench_output
        sweep = json.loads(out.read_text())["workloads"]["sweep11"]
        assert sweep["stats_identical"] is True
        assert sweep["results_identical"] is True
        assert sweep["serial_seconds"] > 0
        assert sweep["parallel_seconds"] > 0
        assert sweep["speedup"] > 0

    def test_trace_heavy_outcome_identical(self, bench_output):
        _, out = bench_output
        trace = json.loads(out.read_text())["workloads"]["trace_heavy"]
        assert trace["outcome_identical"] is True
        assert trace["counting_only_seconds"] > 0

    def test_scenario_identity_checks_pass(self, bench_output):
        _, out = bench_output
        scenario = json.loads(out.read_text())["workloads"]["scenario"]
        assert scenario["scenario"] == "two-sources"
        assert scenario["results_identical"] is True
        assert scenario["runs_per_second_serial"] > 0


class TestBenchHelpers:
    def test_workers_zero_means_cpu_count(self, bench, tmp_path, monkeypatch):
        seen = {}

        def fake_suite(workers, quick):
            seen["workers"] = workers
            return {"meta": {"workers": workers, "quick": quick}, "workloads": {}}

        monkeypatch.setattr(bench, "run_suite", fake_suite)
        out = tmp_path / "b.json"
        assert bench.main(["--quick", "--workers", "0", "--out", str(out)]) == 0
        assert seen["workers"] >= 1

    def test_identity_failure_fails_the_run(self, bench, tmp_path, monkeypatch):
        def bad_suite(workers, quick):
            return {
                "meta": {},
                "workloads": {"sweep11": {"stats_identical": False}},
            }

        monkeypatch.setattr(bench, "run_suite", bad_suite)
        out = tmp_path / "b.json"
        assert bench.main(["--quick", "--out", str(out)]) == 1


def _fake_suite(runs_per_second: float) -> dict:
    return {
        "meta": {"quick": True},
        "workloads": {
            "sweep11": {
                "runs_per_second_serial": runs_per_second,
                "results_identical": True,
            },
            "das_setup": {"messages_per_second": 1000.0},
        },
    }


class TestRegressionGate:
    def test_workload_throughput_picks_the_right_metric(self, bench):
        assert bench.workload_throughput({"runs_per_second_serial": 30.0}) == 30.0
        assert bench.workload_throughput({"messages_per_second": 9.0}) == 9.0
        assert bench.workload_throughput({"counting_only_seconds": 0.25}) == 4.0
        assert bench.workload_throughput({"other": 1}) is None

    def test_compare_flags_breaches_only(self, bench):
        lines, regressions = bench.compare_with_previous(
            _fake_suite(10.0), _fake_suite(20.0), threshold=0.15
        )
        assert regressions == ["sweep11"]  # -50% breaches, das_setup flat
        assert any("-50.0%" in line for line in lines)
        _, ok = bench.compare_with_previous(
            _fake_suite(19.0), _fake_suite(20.0), threshold=0.15
        )
        assert ok == []

    def test_regression_fails_the_run(self, bench, tmp_path, monkeypatch):
        baseline = tmp_path / "BENCH_prev.json"
        baseline.write_text(json.dumps(_fake_suite(20.0)))
        monkeypatch.setattr(bench, "run_suite", lambda workers, quick: _fake_suite(10.0))
        out = tmp_path / "b.json"
        argv = ["--quick", "--out", str(out), "--baseline", str(baseline)]
        assert bench.main(argv) == 1
        assert bench.main(argv + ["--no-regression-check"]) == 0
        assert bench.main(argv + ["--regression-threshold", "0.6"]) == 0

    def test_improvement_passes(self, bench, tmp_path, monkeypatch):
        baseline = tmp_path / "BENCH_prev.json"
        baseline.write_text(json.dumps(_fake_suite(10.0)))
        monkeypatch.setattr(bench, "run_suite", lambda workers, quick: _fake_suite(20.0))
        out = tmp_path / "b.json"
        assert bench.main(
            ["--quick", "--out", str(out), "--baseline", str(baseline)]
        ) == 0

    def test_find_previous_bench_matches_mode(self, bench, tmp_path, monkeypatch):
        monkeypatch.setattr(bench, "REPO_ROOT", tmp_path)
        (tmp_path / "BENCH_1.json").write_text(json.dumps({"meta": {"quick": False}}))
        (tmp_path / "BENCH_2.json").write_text(json.dumps({"meta": {"quick": True}}))
        out = tmp_path / "BENCH_out.json"
        assert bench.find_previous_bench(True, exclude=out).name == "BENCH_2.json"
        assert bench.find_previous_bench(False, exclude=out).name == "BENCH_1.json"
        # A file is never its own baseline.
        assert bench.find_previous_bench(False, exclude=tmp_path / "BENCH_1.json") is None

    def test_default_output_never_clobbers(self, bench, tmp_path, monkeypatch):
        monkeypatch.setattr(bench, "REPO_ROOT", tmp_path)
        first = bench.default_output_path()
        first.write_text("{}")
        second = bench.default_output_path()
        assert second != first
        assert second.name.endswith("b.json")


class TestProfileMode:
    def test_profile_writes_hotspot_tables(self, bench, tmp_path, monkeypatch):
        artifacts = tmp_path / "benchmark_artifacts.txt"
        monkeypatch.setattr(bench, "ARTIFACTS", artifacts)
        monkeypatch.setattr(
            bench,
            "workload_plan",
            lambda workers, quick: [("toy", lambda: {"seconds": 0.0})],
        )
        assert bench.main(["--quick", "--profile"]) == 0
        text = artifacts.read_text()
        assert "cProfile hotspots" in text
        assert "workload: toy" in text
        assert "cumulative" in text

    def test_profile_reports_identity_failures(self, bench, tmp_path, monkeypatch):
        monkeypatch.setattr(bench, "ARTIFACTS", tmp_path / "a.txt")
        monkeypatch.setattr(
            bench,
            "workload_plan",
            lambda workers, quick: [("toy", lambda: {"results_identical": False})],
        )
        assert bench.main(["--quick", "--profile"]) == 1
