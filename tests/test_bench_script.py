"""Tier-1-safe smoke test for the perf benchmark harness.

Runs ``scripts/bench.py --quick`` (seconds, not minutes) so the bench
suite itself cannot silently rot: it must import, execute every
workload, pass its own serial-vs-parallel identity checks, and write
well-formed JSON.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchQuickMode:
    @pytest.fixture(scope="class")
    def bench_output(self, tmp_path_factory):
        spec = importlib.util.spec_from_file_location("bench_run", SCRIPT)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        out = tmp_path_factory.mktemp("bench") / "BENCH_test.json"
        code = module.main(["--quick", "--workers", "2", "--out", str(out)])
        return code, out

    def test_exit_code_zero(self, bench_output):
        code, _ = bench_output
        assert code == 0

    def test_json_written_with_meta(self, bench_output):
        _, out = bench_output
        data = json.loads(out.read_text())
        assert data["meta"]["quick"] is True
        assert data["meta"]["workers"] == 2
        assert data["meta"]["cpu_count"] >= 1
        assert data["meta"]["python"] == ".".join(map(str, sys.version_info[:3]))
        assert data["meta"]["host"]["cpu_count"] == data["meta"]["cpu_count"]
        assert data["meta"]["host"]["python"] == data["meta"]["python"]
        assert data["meta"]["host"]["cpu_model"]

    def test_all_quick_workloads_present(self, bench_output):
        _, out = bench_output
        workloads = json.loads(out.read_text())["workloads"]
        assert set(workloads) == {
            "sweep11",
            "setup7",
            "das_setup",
            "das_dissem15",
            "trace_heavy",
            "scenario",
            "telemetry",
        }

    def test_setup_workload_reports_cold_builds(self, bench_output):
        _, out = bench_output
        setup = json.loads(out.read_text())["workloads"]["setup7"]
        assert setup["grid"] == "7x7"
        assert setup["builds"] == 8  # 4 seeds × (protectionless + slp)
        assert setup["builds_per_second"] > 0

    def test_sweep_identity_checks_pass(self, bench_output):
        _, out = bench_output
        sweep = json.loads(out.read_text())["workloads"]["sweep11"]
        assert sweep["stats_identical"] is True
        assert sweep["results_identical"] is True
        assert sweep["serial_seconds"] > 0
        assert sweep["parallel_seconds"] > 0
        assert sweep["speedup"] > 0

    def test_das_dissem_identity_and_speedup_reported(self, bench_output):
        _, out = bench_output
        dissem = json.loads(out.read_text())["workloads"]["das_dissem15"]
        assert dissem["results_identical"] is True  # fast == legacy heap
        assert dissem["messages_per_second"] > 0
        assert dissem["kernel_speedup"] > 0

    def test_trace_heavy_outcome_identical(self, bench_output):
        _, out = bench_output
        trace = json.loads(out.read_text())["workloads"]["trace_heavy"]
        assert trace["outcome_identical"] is True
        assert trace["counting_only_seconds"] > 0

    def test_scenario_identity_checks_pass(self, bench_output):
        _, out = bench_output
        scenario = json.loads(out.read_text())["workloads"]["scenario"]
        assert scenario["scenario"] == "two-sources"
        assert scenario["results_identical"] is True
        assert scenario["runs_per_second_serial"] > 0

    def test_telemetry_workload_guards_the_noop_path(self, bench_output):
        _, out = bench_output
        telemetry = json.loads(out.read_text())["workloads"]["telemetry"]
        # The gated number is the telemetry-OFF leg's throughput, so
        # the regression gate protects the no-op path every normal
        # run takes; the on-leg delta is tracked alongside it.
        assert telemetry["runs_per_second_serial"] > 0
        assert telemetry["telemetry_overhead_fraction"] is not None
        assert telemetry["spans_recorded"] > 0
        assert telemetry["results_identical"] is True


class TestBenchHelpers:
    def test_workers_zero_means_cpu_count(self, bench, tmp_path, monkeypatch):
        seen = {}

        def fake_suite(workers, quick, telemetry_dir=None):
            seen["workers"] = workers
            return {"meta": {"workers": workers, "quick": quick}, "workloads": {}}

        monkeypatch.setattr(bench, "run_suite", fake_suite)
        out = tmp_path / "b.json"
        assert bench.main(["--quick", "--workers", "0", "--out", str(out)]) == 0
        assert seen["workers"] >= 1

    def test_identity_failure_fails_the_run(self, bench, tmp_path, monkeypatch):
        def bad_suite(workers, quick, telemetry_dir=None):
            return {
                "meta": {},
                "workloads": {"sweep11": {"stats_identical": False}},
            }

        monkeypatch.setattr(bench, "run_suite", bad_suite)
        out = tmp_path / "b.json"
        assert bench.main(["--quick", "--out", str(out)]) == 1


def _fake_suite(runs_per_second: float) -> dict:
    return {
        "meta": {"quick": True},
        "workloads": {
            "sweep11": {
                "runs_per_second_serial": runs_per_second,
                "results_identical": True,
            },
            "das_setup": {"messages_per_second": 1000.0},
        },
    }


class TestRegressionGate:
    def test_workload_throughput_picks_the_right_metric(self, bench):
        assert bench.workload_throughput({"runs_per_second_serial": 30.0}) == 30.0
        assert bench.workload_throughput({"messages_per_second": 9.0}) == 9.0
        assert bench.workload_throughput({"counting_only_seconds": 0.25}) == 4.0
        assert bench.workload_throughput({"other": 1}) is None

    def test_compare_flags_breaches_only(self, bench):
        lines, regressions = bench.compare_with_previous(
            _fake_suite(10.0), _fake_suite(20.0), threshold=0.15
        )
        assert regressions == ["sweep11"]  # -50% breaches, das_setup flat
        assert any("-50.0%" in line for line in lines)
        _, ok = bench.compare_with_previous(
            _fake_suite(19.0), _fake_suite(20.0), threshold=0.15
        )
        assert ok == []

    def test_regression_fails_the_run(self, bench, tmp_path, monkeypatch):
        baseline = tmp_path / "BENCH_prev.json"
        baseline.write_text(json.dumps(_fake_suite(20.0)))
        monkeypatch.setattr(
            bench, "run_suite", lambda workers, quick, telemetry_dir=None: _fake_suite(10.0)
        )
        out = tmp_path / "b.json"
        argv = ["--quick", "--out", str(out), "--baseline", str(baseline)]
        assert bench.main(argv) == 1
        assert bench.main(argv + ["--no-regression-check"]) == 0
        assert bench.main(argv + ["--regression-threshold", "0.6"]) == 0

    def test_improvement_passes(self, bench, tmp_path, monkeypatch):
        baseline = tmp_path / "BENCH_prev.json"
        baseline.write_text(json.dumps(_fake_suite(10.0)))
        monkeypatch.setattr(
            bench, "run_suite", lambda workers, quick, telemetry_dir=None: _fake_suite(20.0)
        )
        out = tmp_path / "b.json"
        assert bench.main(
            ["--quick", "--out", str(out), "--baseline", str(baseline)]
        ) == 0

    def test_find_previous_bench_matches_mode(self, bench, tmp_path, monkeypatch):
        monkeypatch.setattr(bench, "REPO_ROOT", tmp_path)
        (tmp_path / "BENCH_1.json").write_text(json.dumps({"meta": {"quick": False}}))
        (tmp_path / "BENCH_2.json").write_text(json.dumps({"meta": {"quick": True}}))
        out = tmp_path / "BENCH_out.json"
        assert bench.find_previous_bench(True, exclude=out).name == "BENCH_2.json"
        assert bench.find_previous_bench(False, exclude=out).name == "BENCH_1.json"
        # A file is never its own baseline.
        assert bench.find_previous_bench(False, exclude=tmp_path / "BENCH_1.json") is None

    def test_default_output_never_clobbers(self, bench, tmp_path, monkeypatch):
        monkeypatch.setattr(bench, "REPO_ROOT", tmp_path)
        first = bench.default_output_path()
        first.write_text("{}")
        second = bench.default_output_path()
        assert second != first
        assert second.name.endswith("b.json")


class TestHostFingerprint:
    def test_fingerprint_shape(self, bench):
        fingerprint = bench.host_fingerprint()
        assert set(fingerprint) == {"cpu_model", "cpu_count", "python"}
        assert fingerprint["cpu_count"] >= 1
        assert fingerprint["python"] == bench.platform.python_version()
        # Deterministic on one host: that is what makes it comparable.
        assert fingerprint == bench.host_fingerprint()

    def test_cross_host_regression_warns_but_passes(
        self, bench, tmp_path, monkeypatch, capsys
    ):
        """A regression against a baseline from *different* hardware is
        a warning, not a failure — the delta measures the machines."""
        baseline_suite = _fake_suite(20.0)
        baseline_suite["meta"]["host"] = {
            "cpu_model": "Imaginary CPU @ 9.99GHz",
            "cpu_count": 128,
            "python": "3.0.0",
        }
        baseline = tmp_path / "BENCH_prev.json"
        baseline.write_text(json.dumps(baseline_suite))
        current = _fake_suite(10.0)
        current["meta"]["host"] = bench.host_fingerprint()
        monkeypatch.setattr(
            bench, "run_suite", lambda workers, quick, telemetry_dir=None: current
        )
        out = tmp_path / "b.json"
        assert (
            bench.main(["--quick", "--out", str(out), "--baseline", str(baseline)])
            == 0
        )
        assert "fingerprint differs" in capsys.readouterr().err

    def test_same_host_regression_still_fails(
        self, bench, tmp_path, monkeypatch
    ):
        baseline_suite = _fake_suite(20.0)
        baseline_suite["meta"]["host"] = bench.host_fingerprint()
        baseline = tmp_path / "BENCH_prev.json"
        baseline.write_text(json.dumps(baseline_suite))
        current = _fake_suite(10.0)
        current["meta"]["host"] = bench.host_fingerprint()
        monkeypatch.setattr(
            bench, "run_suite", lambda workers, quick, telemetry_dir=None: current
        )
        out = tmp_path / "b.json"
        assert (
            bench.main(["--quick", "--out", str(out), "--baseline", str(baseline)])
            == 1
        )


class TestArtifactsPreservation:
    """The benchmark suite's session-start reset must not clobber the
    ``--profile`` cProfile tables other tooling appended to the shared
    ``benchmark_artifacts.txt``."""

    @pytest.fixture(scope="class")
    def bench_conftest(self):
        path = SCRIPT.parent.parent / "benchmarks" / "conftest.py"
        spec = importlib.util.spec_from_file_location("bench_conftest", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def _section(title: str, body: str) -> str:
        bar = "=" * 64
        return f"\n{bar}\n{title}\n{bar}\n{body}\n"

    def test_profile_sections_survive_reset(self, bench_conftest):
        text = (
            self._section("Ablation: attacker strength", "table rows")
            + self._section(
                "cProfile hotspots (2026-07-26, full suite, workers=4)",
                "---- workload: sweep15 ----\nncalls tottime",
            )
            + self._section("Figure 5a", "more rows")
        )
        kept = bench_conftest._preserved_sections(text)
        assert "cProfile hotspots" in kept
        assert "workload: sweep15" in kept
        assert "Ablation" not in kept
        assert "Figure 5a" not in kept

    def test_empty_or_profile_free_file_resets_clean(self, bench_conftest):
        assert bench_conftest._preserved_sections("") == ""
        only_tables = self._section("Ablation: link loss", "rows")
        assert bench_conftest._preserved_sections(only_tables) == ""

    def test_preservation_is_idempotent(self, bench_conftest):
        profile = self._section(
            "cProfile hotspots (2026-07-26, quick suite, workers=2)",
            "---- workload: sweep11 ----",
        )
        once = bench_conftest._preserved_sections(profile)
        assert bench_conftest._preserved_sections(once) == once


class TestProfileMode:
    def test_profile_writes_hotspot_tables(self, bench, tmp_path, monkeypatch):
        artifacts = tmp_path / "benchmark_artifacts.txt"
        monkeypatch.setattr(bench, "ARTIFACTS", artifacts)
        monkeypatch.setattr(
            bench,
            "workload_plan",
            lambda workers, quick: [("toy", lambda: {"seconds": 0.0})],
        )
        assert bench.main(["--quick", "--profile"]) == 0
        text = artifacts.read_text()
        assert "cProfile hotspots" in text
        assert "workload: toy" in text
        assert "cumulative" in text

    def test_profile_replaces_stale_tables_keeps_other_sections(
        self, bench, tmp_path, monkeypatch
    ):
        """Repeated --profile runs must not accumulate hotspot sections
        in the tracked artifact file, and must leave the benchmark
        suite's own sections untouched."""
        artifacts = tmp_path / "benchmark_artifacts.txt"
        bar = "=" * 64
        table = f"\n{bar}\nAblation: link loss\n{bar}\nrows\n"
        artifacts.write_text(table)
        monkeypatch.setattr(bench, "ARTIFACTS", artifacts)
        monkeypatch.setattr(
            bench,
            "workload_plan",
            lambda workers, quick: [("toy", lambda: {"seconds": 0.0})],
        )
        assert bench.main(["--quick", "--profile"]) == 0
        assert bench.main(["--quick", "--profile"]) == 0
        text = artifacts.read_text()
        assert text.count("cProfile hotspots") == 1
        assert "Ablation: link loss" in text

    def test_profile_reports_identity_failures(self, bench, tmp_path, monkeypatch):
        monkeypatch.setattr(bench, "ARTIFACTS", tmp_path / "a.txt")
        monkeypatch.setattr(
            bench,
            "workload_plan",
            lambda workers, quick: [("toy", lambda: {"results_identical": False})],
        )
        assert bench.main(["--quick", "--profile"]) == 1
