"""Shared fixtures: small topologies and schedules used across the suite."""

from __future__ import annotations

import pytest

from repro.core import Schedule
from repro.das import centralized_das_schedule
from repro.topology import GridTopology, LineTopology, RingTopology, Topology


@pytest.fixture
def line5() -> LineTopology:
    """A 5-node line: 0(source) - 1 - 2 - 3 - 4(sink)."""
    return LineTopology(5)


@pytest.fixture
def ring8() -> RingTopology:
    """An 8-node ring, sink at 0, source antipodal at 4."""
    return RingTopology(8)


@pytest.fixture
def grid5() -> GridTopology:
    """A 5x5 grid with the paper's role placement (source 0, sink centre)."""
    return GridTopology(5)


@pytest.fixture
def grid7() -> GridTopology:
    """A 7x7 grid — big enough for search distance 3 redirections."""
    return GridTopology(7)


@pytest.fixture
def tee() -> Topology:
    """A 7-node tee: two branches joining into a stem toward the sink.

    ::

        0   2
         \\ /
          1
          |
          3 - 4 - 5(sink)
          |
          6
    """
    edges = [(0, 1), (2, 1), (1, 3), (3, 4), (4, 5), (3, 6)]
    return Topology.from_edges(edges, sink=5, source=0, name="tee")


@pytest.fixture
def grid5_schedule(grid5: GridTopology) -> Schedule:
    """A deterministic (jitter-free) strong DAS schedule on grid5."""
    return centralized_das_schedule(grid5, seed=None, jitter=False)


@pytest.fixture
def line5_schedule(line5: LineTopology) -> Schedule:
    """The canonical line schedule: slots descend away from the sink."""
    return centralized_das_schedule(line5, seed=None, jitter=False)
