"""Differential tests for the operational-phase fast kernel.

The contract: the fast kernel is *bit-identical* to the legacy
event-heap engine — same :class:`OperationalResult`, same trace
counters, same retained records, same RNG consumption — for every
workload the repository can express.  Every registered scenario is
driven through both kernels here; the serial/parallel identity of the
fast kernel is additionally covered by ``tests/test_scenarios.py``
(the fast kernel is the default, so those sweeps already exercise it).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.app import (
    FAST_KERNEL,
    LEGACY_KERNEL,
    build_slot_timeline,
    fast_kernel_supported,
    run_operational_phase,
)
from repro.das import centralized_das_schedule
from repro.errors import ConfigurationError
from repro.experiments import ExperimentRunner
from repro.mac import TdmaFrame
from repro.scenarios import ScenarioRunner, get_scenario, scenario_names
from repro.simulator import CasinoLabNoise

#: Seeds per scenario for the differential sweep (kept small: the suite
#: runs every registered scenario through both kernels).
DIFF_SEEDS = 2


def _run_both(topology, schedule, *, seed, trace_kinds="default", **kwargs):
    """One run per kernel, returning (results, trace recorders)."""
    outcomes, traces = [], []
    for kernel in (LEGACY_KERNEL, FAST_KERNEL):
        out: list = []
        extra = {} if trace_kinds == "default" else {"trace_kinds": trace_kinds}
        outcomes.append(
            run_operational_phase(
                topology,
                schedule,
                seed=seed,
                kernel=kernel,
                trace_out=out,
                **extra,
                **kwargs,
            )
        )
        traces.append(out[0])
    return outcomes, traces


class TestKernelEquivalence:
    @pytest.mark.parametrize("name", sorted(scenario_names()))
    def test_every_registered_scenario_is_bit_identical(self, name):
        """Results AND trace counters agree, per scenario, per seed."""
        spec = get_scenario(name)
        topology = spec.build_topology()
        config = spec.to_config(repeats=DIFF_SEEDS)
        runner = ExperimentRunner(topology)
        for i in range(DIFF_SEEDS):
            seed = config.base_seed + i
            schedule = runner.build_schedule(config, seed)
            (legacy, fast), (legacy_trace, fast_trace) = _run_both(
                topology,
                schedule,
                seed=seed,
                attacker=config.attacker,
                noise=config.make_noise(),
                frame=config.parameters.frame(),
                safety_factor=config.parameters.safety_factor,
                max_periods=config.max_periods,
                source_plan=config.source_plan,
                perturbations=config.perturbations,
            )
            assert legacy == fast
            assert legacy_trace.counts() == fast_trace.counts()

    def test_full_trace_records_are_identical(self, grid7):
        """With every kind retained, the record streams match too."""
        schedule = centralized_das_schedule(grid7, seed=3)
        (legacy, fast), (legacy_trace, fast_trace) = _run_both(
            grid7,
            schedule,
            seed=3,
            noise=CasinoLabNoise(),
            trace_kinds=None,
        )
        assert legacy == fast
        assert legacy_trace.records == fast_trace.records

    def test_scenario_sweeps_identical_serial_and_parallel(self):
        """ScenarioRunner reports are byte-identical across kernels,
        through both the serial engine and a forced worker pool."""
        legacy = ScenarioRunner(workers=1, kernel=LEGACY_KERNEL).run(
            "churn-10pct", seeds=DIFF_SEEDS
        )
        fast_serial = ScenarioRunner(workers=1, kernel=FAST_KERNEL).run(
            "churn-10pct", seeds=DIFF_SEEDS
        )
        fast_parallel = ScenarioRunner(
            workers=2, force_parallel=True, kernel=FAST_KERNEL
        ).run("churn-10pct", seeds=DIFF_SEEDS)
        assert legacy.to_json() == fast_serial.to_json()
        assert legacy.to_json() == fast_parallel.to_json()


class TestKernelSelection:
    def test_invalid_kernel_rejected(self, grid5, grid5_schedule):
        with pytest.raises(ConfigurationError, match="kernel"):
            run_operational_phase(grid5, grid5_schedule, seed=0, kernel="warp")

    def test_unsupported_frame_falls_back_to_legacy(self, grid5, grid5_schedule):
        """A slot shorter than the propagation delay forces the legacy
        engine; the outcome still matches an explicit legacy run."""
        frame = TdmaFrame(num_slots=200, slot_duration=5e-5)
        assert not fast_kernel_supported(frame, 1e-4)
        fast = run_operational_phase(
            grid5, grid5_schedule, seed=1, frame=frame, kernel=FAST_KERNEL
        )
        legacy = run_operational_phase(
            grid5, grid5_schedule, seed=1, frame=frame, kernel=LEGACY_KERNEL
        )
        assert fast == legacy

    def test_supported_for_paper_frame(self):
        assert fast_kernel_supported(TdmaFrame(), 1e-4)

    def test_non_default_frame_timestamps_stay_bit_identical(self, grid7):
        """Float addition is not associative: a frame whose slot times
        differ by one ulp between grouping orders must still produce
        equal capture times (regression: the kernel once precomputed
        dissemination + offset, diverging from slot_start's order)."""
        frame = TdmaFrame(
            num_slots=50, slot_duration=0.1, dissemination_duration=0.3
        )
        schedule = centralized_das_schedule(grid7, num_slots=50, seed=0)
        for seed in range(3):
            (legacy, fast), _ = _run_both(
                grid7,
                schedule,
                seed=seed,
                noise=CasinoLabNoise(),
                frame=frame,
            )
            assert legacy == fast


class TestSlotTimeline:
    def test_fire_order_matches_heap_order(self, grid5, grid5_schedule):
        """Groups ascend by slot; senders ascend within a group; the
        sink (slot None) never appears."""
        from repro.app import ConvergecastNodeProcess

        compressed = grid5_schedule.compressed()
        processes = {}
        for node in grid5.nodes:
            is_sink = node == grid5.sink
            processes[node] = ConvergecastNodeProcess(
                node,
                slot=None if is_sink else compressed.slot_of(node),
                parent=compressed.parent_of(node),
                is_sink=is_sink,
                is_source=node == grid5.source,
            )
        frame = TdmaFrame()
        timeline = build_slot_timeline(frame, processes)
        slots = [slot for slot, _, _ in timeline]
        assert slots == sorted(slots)
        seen = set()
        for slot, offset, senders in timeline:
            # Reassembled in slot_start's own float-addition order, the
            # offsets reproduce the heap timestamps exactly.
            base = frame.period_start(0) + frame.dissemination_duration
            assert base + offset == frame.slot_start(0, slot)
            assert list(senders) == sorted(senders)
            assert grid5.sink not in senders
            seen.update(senders)
        assert seen == set(grid5.nodes) - {grid5.sink}
