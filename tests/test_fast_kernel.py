"""Differential tests for the operational-phase fast kernel.

The contract: the fast kernel — with or without its table-driven
message-path fast lane — is *bit-identical* to the legacy event-heap
engine: same :class:`OperationalResult`, same trace counters, same
retained records, same RNG consumption, for every workload the
repository can express.  Every registered scenario is driven through
all three kernels here; the serial/parallel identity of the fast
kernel is additionally covered by ``tests/test_scenarios.py`` (the
fast kernel is the default, so those sweeps already exercise it).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.app import (
    FAST_KERNEL,
    LEGACY_KERNEL,
    OBJECT_KERNEL,
    ConvergecastNodeProcess,
    DutyCycle,
    NodeDeath,
    NodeSleep,
    SourcePlan,
    build_slot_timeline,
    fast_kernel_supported,
    fast_lane_compilable,
    run_operational_phase,
)
from repro.das import centralized_das_schedule
from repro.errors import ConfigurationError
from repro.experiments import ExperimentRunner
from repro.mac import TdmaFrame
from repro.scenarios import ScenarioRunner, get_scenario, scenario_names
from repro.simulator import CasinoLabNoise

#: Seeds per scenario for the differential sweep (kept small: the suite
#: runs every registered scenario through all kernels).
DIFF_SEEDS = 2

#: Kernel order for differentials: the reference engine first.
ALL_KERNELS = (LEGACY_KERNEL, OBJECT_KERNEL, FAST_KERNEL)


def _attacker_spec(r, h, m, decision):
    """An AttackerSpec with a named decision function."""
    from repro.attacker import AttackerSpec
    from repro.attacker.decision import AvoidRecentlyVisited, FollowAnyHeard

    chooser = FollowAnyHeard() if decision == "any" else AvoidRecentlyVisited()
    return AttackerSpec(
        messages_per_move=r, history_size=h, moves_per_period=m, decision=chooser
    )


def _run_all(topology, schedule, *, seed, trace_kinds="default", **kwargs):
    """One run per kernel, returning (results, trace recorders)."""
    outcomes, traces = [], []
    for kernel in ALL_KERNELS:
        out: list = []
        extra = {} if trace_kinds == "default" else {"trace_kinds": trace_kinds}
        outcomes.append(
            run_operational_phase(
                topology,
                schedule,
                seed=seed,
                kernel=kernel,
                trace_out=out,
                **extra,
                **kwargs,
            )
        )
        traces.append(out[0])
    return outcomes, traces


def _assert_identical(outcomes, traces):
    """Every kernel's result and trace counters must match the legacy's."""
    legacy, legacy_trace = outcomes[0], traces[0]
    for outcome, trace in zip(outcomes[1:], traces[1:]):
        assert outcome == legacy
        assert trace.counts() == legacy_trace.counts()


class TestKernelEquivalence:
    @pytest.mark.parametrize("name", sorted(scenario_names()))
    def test_every_registered_scenario_is_bit_identical(self, name):
        """Results AND trace counters agree, per scenario, per seed,
        across legacy / fast-object / fast (table lane) kernels."""
        spec = get_scenario(name)
        topology = spec.build_topology()
        config = spec.to_config(repeats=DIFF_SEEDS)
        runner = ExperimentRunner(topology)
        for i in range(DIFF_SEEDS):
            seed = config.base_seed + i
            schedule = runner.build_schedule(config, seed)
            outcomes, traces = _run_all(
                topology,
                schedule,
                seed=seed,
                attacker=config.attacker,
                noise=config.make_noise(),
                frame=config.parameters.frame(),
                safety_factor=config.parameters.safety_factor,
                max_periods=config.max_periods,
                source_plan=config.source_plan,
                perturbations=config.perturbations,
            )
            _assert_identical(outcomes, traces)

    def test_full_trace_records_are_identical(self, grid7):
        """With every kind retained, the record streams match too (the
        fast lane declines retained per-message traces and the object
        path must reproduce the exact record stream)."""
        schedule = centralized_das_schedule(grid7, seed=3)
        outcomes, traces = _run_all(
            grid7,
            schedule,
            seed=3,
            noise=CasinoLabNoise(),
            trace_kinds=None,
        )
        _assert_identical(outcomes, traces)
        for trace in traces[1:]:
            assert trace.records == traces[0].records

    def test_scenario_sweeps_identical_serial_and_parallel(self):
        """ScenarioRunner reports are byte-identical across kernels,
        through both the serial engine and a forced worker pool."""
        legacy = ScenarioRunner(workers=1, kernel=LEGACY_KERNEL).run(
            "churn-10pct", seeds=DIFF_SEEDS
        )
        fast_serial = ScenarioRunner(workers=1, kernel=FAST_KERNEL).run(
            "churn-10pct", seeds=DIFF_SEEDS
        )
        fast_parallel = ScenarioRunner(
            workers=2, force_parallel=True, kernel=FAST_KERNEL
        ).run("churn-10pct", seeds=DIFF_SEEDS)
        assert legacy.to_json() == fast_serial.to_json()
        assert legacy.to_json() == fast_parallel.to_json()


class TestFastLaneDynamics:
    """The fast lane × workload-dynamics interplay: perturbations must
    invalidate/patch the forwarding tables mid-run and stay bit-identical
    to the object path and the legacy heap."""

    def _grid_nodes(self, topology):
        """A few perturbable nodes (not sink, not source)."""
        excluded = {topology.sink, topology.source}
        return [n for n in topology.nodes if n not in excluded]

    def test_node_death_is_bit_identical(self, grid7):
        schedule = centralized_das_schedule(grid7, seed=5)
        victims = tuple(self._grid_nodes(grid7)[3:7])
        for seed in range(DIFF_SEEDS):
            outcomes, traces = _run_all(
                grid7,
                schedule,
                seed=seed,
                noise=CasinoLabNoise(),
                perturbations=(NodeDeath(period=2, nodes=victims),),
            )
            _assert_identical(outcomes, traces)
            # The perturbation really engaged: dead nodes stop sending.
            healthy = run_operational_phase(
                grid7, schedule, seed=seed, noise=CasinoLabNoise()
            )
            if outcomes[0].periods_run == healthy.periods_run:
                assert outcomes[0].messages_sent < healthy.messages_sent

    def test_sleep_and_duty_cycle_rebuild_tables(self, grid7):
        """Sleep/wake and recurring duty cycles flip radio attachment
        (and therefore the compiled fan-out tables) repeatedly."""
        schedule = centralized_das_schedule(grid7, seed=8)
        nodes = self._grid_nodes(grid7)
        perturbations = (
            NodeSleep(period=1, wake_period=3, nodes=(nodes[0], nodes[1])),
            DutyCycle(nodes=(nodes[5], nodes[6]), cycle_length=3, sleep_for=1),
        )
        for seed in range(DIFF_SEEDS):
            outcomes, traces = _run_all(
                grid7,
                schedule,
                seed=seed,
                noise=CasinoLabNoise(),
                perturbations=perturbations,
            )
            _assert_identical(outcomes, traces)

    def test_mobile_source_rotation_capture_is_bit_identical(self, grid7):
        """A rotating source can capture by walking onto the attacker
        (a period-boundary capture with buffered state to sync)."""
        schedule = centralized_das_schedule(grid7, seed=2)
        pool = tuple(self._grid_nodes(grid7)[:3])
        for seed in range(DIFF_SEEDS):
            outcomes, traces = _run_all(
                grid7,
                schedule,
                seed=seed,
                noise=CasinoLabNoise(),
                source_plan=SourcePlan(nodes=pool, rotation_period=2),
            )
            _assert_identical(outcomes, traces)

    def test_mid_period_capture_is_bit_identical(self, grid7):
        """Seeds where the attacker wins mid-period: the lane must stop
        after the capturing transmission with the group's buffered
        deliveries discarded, exactly like the heap."""
        schedule = centralized_das_schedule(grid7, seed=0)
        captured = 0
        for seed in range(12):
            outcomes, traces = _run_all(
                grid7, schedule, seed=seed, noise=CasinoLabNoise()
            )
            _assert_identical(outcomes, traces)
            captured += outcomes[0].captured
        assert captured > 0  # the differential covered real captures

    @pytest.mark.parametrize(
        "spec_name,spec",
        [
            ("buffered", lambda: _attacker_spec(3, 0, 2, "any")),
            ("multi-move", lambda: _attacker_spec(1, 0, 3, "any")),
            ("history", lambda: _attacker_spec(1, 2, 1, "avoid")),
            ("rng-heavy", lambda: _attacker_spec(2, 1, 2, "any")),
        ],
    )
    def test_attacker_specs_exercise_inline_hear_decide(
        self, grid7, spec_name, spec
    ):
        """The lane's compiled hear/decide path — ARcv buffering past
        R=1, repeated same-period moves (each refreshing the audibility
        row), H-deep history and RNG tie-breaks — must stay bit-identical
        for capture times, periods and full attacker paths."""
        schedule = centralized_das_schedule(grid7, seed=4)
        moved = 0
        for seed in range(6):
            outcomes, traces = _run_all(
                grid7,
                schedule,
                seed=seed,
                noise=CasinoLabNoise(),
                attacker=spec(),
            )
            _assert_identical(outcomes, traces)
            first = outcomes[0]
            for outcome in outcomes[1:]:
                assert outcome.attacker_path == first.attacker_path
                assert outcome.capture_time == first.capture_time
                assert outcome.capture_period == first.capture_period
            moved += len(first.attacker_path) > 1
        assert moved > 0  # the inline Decide really fired


class TestFastLaneCompilability:
    def _setup(self, topology, schedule, **kwargs):
        """A simulator + processes + agent mirroring the runtime wiring,
        for direct compile-gate checks."""
        from repro.app.dynamics import SourceTracker
        from repro.attacker import EavesdropperAgent, paper_attacker
        from repro.simulator import Simulator

        compressed = schedule.compressed()
        sim = Simulator(topology, seed=0, trace_kinds=kwargs.get("trace_kinds"))
        processes = {}
        for node in topology.nodes:
            is_sink = node == topology.sink
            cls = kwargs.get("process_cls", ConvergecastNodeProcess)
            proc = cls(
                node,
                slot=None if is_sink else compressed.slot_of(node),
                parent=compressed.parent_of(node),
                is_sink=is_sink,
                is_source=node == topology.source,
                children=set(compressed.children_of(node)),
            )
            processes[node] = proc
            sim.register_process(proc)
        tracker = SourceTracker(SourcePlan.single(topology.source))
        agent = EavesdropperAgent(
            sim,
            paper_attacker(),
            start=topology.sink,
            source=topology.source,
            slot_lookup=compressed.slot_of,
            capture_test=tracker.is_source,
        )
        sim.radio.attach_eavesdropper(agent)
        timeline = build_slot_timeline(TdmaFrame(), processes)
        return sim, processes, agent, timeline

    def test_standard_run_is_compilable(self, grid5, grid5_schedule):
        from repro.app import OPERATIONAL_TRACE_KINDS

        sim, processes, agent, timeline = self._setup(
            grid5, grid5_schedule, trace_kinds=OPERATIONAL_TRACE_KINDS
        )
        assert fast_lane_compilable(sim, processes, agent, timeline)

    def test_retained_message_trace_is_not_compilable(self, grid5, grid5_schedule):
        sim, processes, agent, timeline = self._setup(
            grid5, grid5_schedule, trace_kinds=None
        )
        assert not fast_lane_compilable(sim, processes, agent, timeline)

    def test_process_subclass_is_not_compilable(self, grid5, grid5_schedule):
        from repro.app import OPERATIONAL_TRACE_KINDS

        class CustomProcess(ConvergecastNodeProcess):
            pass

        sim, processes, agent, timeline = self._setup(
            grid5,
            grid5_schedule,
            trace_kinds=OPERATIONAL_TRACE_KINDS,
            process_cls=CustomProcess,
        )
        assert not fast_lane_compilable(sim, processes, agent, timeline)

    def test_audible_slot_sharing_is_not_compilable(self, grid5, grid5_schedule):
        """Two adjacent senders in one slot group (impossible under
        Def. 1, but expressible via a hand-built schedule) must force
        the object path: live-set delivery would skip the emit-time
        snapshot the legacy semantics require."""
        from repro.app import OPERATIONAL_TRACE_KINDS

        slots = grid5_schedule.slots()
        a = grid5.sink
        neighbours = [n for n in grid5.neighbours(a) if n != grid5.sink]
        n1 = neighbours[0]
        n2 = [m for m in grid5.neighbours(n1) if m not in (a, grid5.sink)][0]
        slots[n2] = slots[n1]  # adjacent nodes, same slot
        shared = grid5_schedule.with_slots(slots)
        sim, processes, agent, timeline = self._setup(
            grid5, shared, trace_kinds=OPERATIONAL_TRACE_KINDS
        )
        assert not fast_lane_compilable(sim, processes, agent, timeline)

    def test_default_run_uses_the_table_lane(self, grid5, grid5_schedule, monkeypatch):
        """The default kernel actually engages the lane (not a silent
        permanent fallback)."""
        import repro.app.fast_kernel as fk

        calls = []
        real = fk._run_table_lane

        def spy(*args, **kwargs):
            calls.append(True)
            return real(*args, **kwargs)

        monkeypatch.setattr(fk, "_run_table_lane", spy)
        run_operational_phase(grid5, grid5_schedule, seed=0)
        assert calls


class TestKernelSelection:
    def test_invalid_kernel_rejected(self, grid5, grid5_schedule):
        with pytest.raises(ConfigurationError, match="kernel"):
            run_operational_phase(grid5, grid5_schedule, seed=0, kernel="warp")

    def test_unsupported_frame_falls_back_to_legacy(self, grid5, grid5_schedule):
        """A slot shorter than the propagation delay forces the legacy
        engine; the outcome still matches an explicit legacy run."""
        frame = TdmaFrame(num_slots=200, slot_duration=5e-5)
        assert not fast_kernel_supported(frame, 1e-4)
        legacy = run_operational_phase(
            grid5, grid5_schedule, seed=1, frame=frame, kernel=LEGACY_KERNEL
        )
        for kernel in (FAST_KERNEL, OBJECT_KERNEL):
            fast = run_operational_phase(
                grid5, grid5_schedule, seed=1, frame=frame, kernel=kernel
            )
            assert fast == legacy

    def test_supported_for_paper_frame(self):
        assert fast_kernel_supported(TdmaFrame(), 1e-4)

    def test_non_default_frame_timestamps_stay_bit_identical(self, grid7):
        """Float addition is not associative: a frame whose slot times
        differ by one ulp between grouping orders must still produce
        equal capture times (regression: the kernel once precomputed
        dissemination + offset, diverging from slot_start's order)."""
        frame = TdmaFrame(
            num_slots=50, slot_duration=0.1, dissemination_duration=0.3
        )
        schedule = centralized_das_schedule(grid7, num_slots=50, seed=0)
        for seed in range(3):
            outcomes, traces = _run_all(
                grid7,
                schedule,
                seed=seed,
                noise=CasinoLabNoise(),
                frame=frame,
            )
            _assert_identical(outcomes, traces)


class TestSlotTimeline:
    def test_fire_order_matches_heap_order(self, grid5, grid5_schedule):
        """Groups ascend by slot; senders ascend within a group; the
        sink (slot None) never appears."""
        from repro.app import ConvergecastNodeProcess

        compressed = grid5_schedule.compressed()
        processes = {}
        for node in grid5.nodes:
            is_sink = node == grid5.sink
            processes[node] = ConvergecastNodeProcess(
                node,
                slot=None if is_sink else compressed.slot_of(node),
                parent=compressed.parent_of(node),
                is_sink=is_sink,
                is_source=node == grid5.source,
            )
        frame = TdmaFrame()
        timeline = build_slot_timeline(frame, processes)
        slots = [slot for slot, _, _ in timeline]
        assert slots == sorted(slots)
        seen = set()
        for slot, offset, senders in timeline:
            # Reassembled in slot_start's own float-addition order, the
            # offsets reproduce the heap timestamps exactly.
            base = frame.period_start(0) + frame.dissemination_duration
            assert base + offset == frame.slot_start(0, slot)
            assert list(senders) == sorted(senders)
            assert grid5.sink not in senders
            seen.update(senders)
        assert seen == set(grid5.nodes) - {grid5.sink}
