"""Telemetry subsystem tests: span tracer, metrics registry, progress
reporter, session export, and — the load-bearing contract — that
telemetry never changes a single result byte.

The neutrality tests sweep the same scenarios with the subsystem off,
on, serially and across a forced worker pool, on every operational
kernel, and require byte-identical JSON reports throughout.  The
well-formedness test runs a fault-injection drill under a recording
session and checks the assembled multi-process span forest is a proper
tree per track.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    FaultPlan,
    ParallelExperimentRunner,
    RetryPolicy,
)
from repro.scenarios import ScenarioRunner
from repro.telemetry import (
    MetricsRegistry,
    ProgressReporter,
    SpanTracer,
    TelemetrySession,
    active_tracer,
    chrome_trace,
    default_registry,
    spans_jsonl,
    tracing,
    use_registry,
)
from repro.topology import GridTopology

FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.002)


class TestSpanTracer:
    def test_nesting_depth_and_lifo(self):
        tracer = SpanTracer()
        outer = tracer.begin("outer")
        inner = tracer.begin("inner", seed=3)
        assert (outer.depth, inner.depth) == (0, 1)
        tracer.end(inner)
        tracer.end(outer)
        spans = tracer.spans()
        # Closed innermost-first, each with start <= end.
        assert [s.name for s in spans] == ["inner", "outer"]
        assert all(s.end >= s.start for s in spans)
        assert spans[0].attrs == {"seed": 3}

    def test_non_lifo_end_rejected(self):
        tracer = SpanTracer()
        outer = tracer.begin("outer")
        tracer.begin("inner")
        with pytest.raises(RuntimeError):
            tracer.end(outer)

    def test_context_manager_and_instant(self):
        tracer = SpanTracer()
        with tracer.span("work"):
            tracer.instant("tick", n=1)
        names = {s.name for s in tracer.spans()}
        assert names == {"work", "tick"}
        tick = next(s for s in tracer.spans() if s.name == "tick")
        assert tick.end == tick.start

    def test_bounded_buffer_counts_drops(self):
        tracer = SpanTracer(max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_active_tracer_installed_and_restored(self):
        assert active_tracer() is None
        tracer = SpanTracer()
        with tracing(tracer):
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_export_payload_absorb_aligns_tracks(self):
        parent = SpanTracer(pid=100)
        worker = SpanTracer(pid=200)
        # Simulate the worker starting on a different wall clock.
        worker.wall0 = parent.wall0 + 5.0
        with worker.span("chunk.run", seeds=[0, 1]):
            with worker.span("run.once"):
                pass
        parent.absorb(worker.export_payload())
        absorbed = parent.spans()
        assert {s.pid for s in absorbed} == {200}
        # Shifted onto the parent timeline: 5 s after the parent origin.
        assert all(s.start >= 5.0 for s in absorbed)
        chunk = next(s for s in absorbed if s.name == "chunk.run")
        run = next(s for s in absorbed if s.name == "run.once")
        assert chunk.start <= run.start and run.end <= chunk.end


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 2)
        registry.gauge("g", 0.5)
        registry.observe("h", 1.0)
        registry.observe("h", 3.0)
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 3
        assert snap["gauges"]["g"] == 0.5
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["mean"] == 2.0
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 3.0

    def test_merge_combines_worker_snapshots(self):
        parent = MetricsRegistry()
        parent.inc("runs", 2)
        parent.observe("h", 1.0)
        worker = MetricsRegistry()
        worker.inc("runs", 3)
        worker.gauge("g", 7)
        worker.observe("h", 5.0)
        parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["runs"] == 5
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["max"] == 5.0

    def test_use_registry_scopes_the_default(self):
        scoped = MetricsRegistry()
        with use_registry(scoped):
            default_registry().inc("x")
        assert scoped.counter("x") == 1
        assert default_registry().counter("x") == 0


class TestProgressReporter:
    def test_renders_progress_and_rate(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=3, label="demo: ", stream=stream, enabled=True, min_interval=0.0
        )
        for seed in range(3):
            reporter.on_result(seed, None)
        reporter.finish()
        text = stream.getvalue()
        assert "demo: 3/3 seeds" in text
        assert "runs/s" in text
        assert text.endswith("\n")

    def test_silent_on_non_tty_by_default(self):
        stream = io.StringIO()  # not a TTY
        reporter = ProgressReporter(total=2, stream=stream)
        assert not reporter.enabled
        reporter.on_result(0, None)
        reporter.finish()
        assert stream.getvalue() == ""

    def test_ticker_shows_supervisor_deltas(self):
        registry = MetricsRegistry()
        registry.inc("supervisor.retries", 4)  # pre-existing: not shown
        stream = io.StringIO()
        with use_registry(registry):
            reporter = ProgressReporter(
                total=2, stream=stream, enabled=True, min_interval=0.0
            )
            reporter.on_result(0, None)
            registry.inc("supervisor.retries", 2)
            reporter.on_result(1, None)
        assert "retries 2" in stream.getvalue()


def _schema_check(trace: dict) -> None:
    """Chrome trace-event JSON the way Perfetto/about:tracing load it."""
    assert set(trace) >= {"traceEvents", "displayTimeUnit"}
    events = trace["traceEvents"]
    assert events, "trace must not be empty"
    pids_with_names = set()
    for event in events:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        if event["ph"] == "M":
            assert event["name"] == "process_name"
            pids_with_names.add(event["pid"])
        elif event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0
        elif event["ph"] == "i":
            assert event["s"] == "t"
        else:  # no other phases are emitted
            raise AssertionError(f"unexpected phase {event['ph']!r}")
    # Every track that carries events is named.
    assert {e["pid"] for e in events} == pids_with_names


class TestChromeTrace:
    def test_schema_and_categories(self):
        tracer = SpanTracer()
        with tracer.span("sweep.execute"):
            with tracer.span("operational.period", period=0):
                pass
            tracer.instant("chunk.retry", seeds=[1])
        trace = chrome_trace(tracer, label="unit")
        _schema_check(trace)
        x_events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["cat"] for e in x_events} == {"sweep", "operational"}
        json.dumps(trace)  # must be serialisable as-is

    def test_spans_jsonl_round_trips(self):
        tracer = SpanTracer()
        with tracer.span("a", k=1):
            pass
        rows = [json.loads(line) for line in spans_jsonl(tracer).splitlines()]
        assert rows[0]["name"] == "a"
        assert rows[0]["attrs"] == {"k": 1}


class TestTelemetrySession:
    def test_exports_all_three_artifacts(self, grid5, tmp_path):
        target = tmp_path / "telemetry"
        with TelemetrySession(directory=target, label="unit.session"):
            ExperimentRunner(grid5).run(
                ExperimentConfig(algorithm="protectionless", repeats=2)
            )
        spans = [
            json.loads(line)
            for line in (target / "spans.jsonl").read_text().splitlines()
        ]
        assert any(s["name"] == "unit.session" for s in spans)
        assert any(s["name"] == "sweep.execute" for s in spans)
        _schema_check(json.loads((target / "trace.json").read_text()))
        metrics = json.loads((target / "metrics.json").read_text())
        assert metrics["counters"]["sweep.runs"] == 2
        assert "trace.send" in metrics["counters"]
        assert "cache.hits" in metrics["gauges"]
        assert "sweep.capture_ratio" in metrics["gauges"]

    def test_root_span_covers_the_run(self, grid5, tmp_path):
        target = tmp_path / "telemetry"
        with TelemetrySession(directory=target, label="unit.cover"):
            ExperimentRunner(grid5).run(
                ExperimentConfig(algorithm="protectionless", repeats=1)
            )
        spans = [
            json.loads(line)
            for line in (target / "spans.jsonl").read_text().splitlines()
        ]
        root = next(s for s in spans if s["name"] == "unit.cover")
        first = min(s["start"] for s in spans)
        last = max(s["end"] for s in spans)
        span_of_wall = (root["end"] - root["start"]) / (last - first)
        assert span_of_wall >= 0.95

    def test_nested_sessions_rejected(self, tmp_path):
        with TelemetrySession(directory=None):
            with pytest.raises(RuntimeError):
                with TelemetrySession(directory=None):
                    pass

    def test_config_not_stamped_without_session(self, grid5):
        outcome = ExperimentRunner(grid5).run(
            ExperimentConfig(algorithm="protectionless", repeats=1)
        )
        assert outcome.results  # and no tracer was ever active
        assert active_tracer() is None


def _scenario_report(
    name: str, kernel, workers: int = 1, telemetry: bool = False
) -> str:
    runner = ScenarioRunner(
        workers=workers, force_parallel=workers > 1, kernel=kernel
    )
    if not telemetry:
        return runner.run(name, seeds=4).to_json()
    with TelemetrySession(directory=None):
        return runner.run(name, seeds=4).to_json()


class TestTelemetryNeutrality:
    """Telemetry on/off, serial/pool: the report bytes never move."""

    @pytest.mark.parametrize(
        "scenario, kernel",
        [
            ("paper-baseline", None),
            ("paper-baseline", "fast-object"),
            ("paper-baseline", "legacy"),
            ("churn-10pct", None),
            ("churn-10pct", "legacy"),
        ],
    )
    def test_byte_identical_reports(self, scenario, kernel):
        reference = _scenario_report(scenario, kernel)
        assert _scenario_report(scenario, kernel, telemetry=True) == reference
        assert _scenario_report(scenario, kernel, workers=2) == reference
        assert (
            _scenario_report(scenario, kernel, workers=2, telemetry=True)
            == reference
        )


def _assert_span_forest(spans) -> None:
    """Per track (pid): intervals are sane and properly nested."""
    by_pid: dict = {}
    for span in spans:
        assert span.end >= span.start, f"negative span {span.name}"
        by_pid.setdefault(span.pid, []).append(span)
    for pid_spans in by_pid.values():
        stack = []
        for span in sorted(pid_spans, key=lambda s: (s.start, -s.end)):
            while stack and span.start >= stack[-1].end:
                stack.pop()
            if stack:
                assert span.end <= stack[-1].end + 1e-9, (
                    f"{span.name} leaks out of {stack[-1].name}"
                )
                assert span.depth > stack[-1].depth
            stack.append(span)


class TestSpanTreeUnderFaults:
    def test_crash_retry_drill_produces_well_formed_forest(self, tmp_path):
        topology = GridTopology(7)
        config = ExperimentConfig(algorithm="protectionless", repeats=8)
        plan = FaultPlan(
            transient_seeds=(1,),
            crash_seeds=(4,),
            marker_dir=str(tmp_path),
        )
        session = TelemetrySession(directory=None, label="drill")
        with session:
            with plan.activated():
                with ParallelExperimentRunner(
                    topology,
                    workers=2,
                    retry_policy=FAST_RETRY,
                    chunk_timeout=60.0,
                ) as runner:
                    outcome = runner.run(config)
        assert not outcome.failures  # crash + transient both recover
        _assert_span_forest(session.tracer.spans())
        names = {s.name for s in session.tracer.spans()}
        assert "chunk.retry" in names  # the drill really retried
        assert {s.pid for s in session.tracer.spans() if s.name == "chunk.run"}
        registry = session.registry.snapshot()["counters"]
        assert registry["supervisor.retries"] >= 1
        assert registry["supervisor.chunks"] >= 4


class TestCliTelemetry:
    def test_quiet_run_writes_artifacts_and_no_status(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        telemetry = tmp_path / "telemetry"
        code = main(
            [
                "scenario",
                "run",
                "paper-baseline",
                "--seeds",
                "2",
                "--out",
                str(out),
                "--telemetry",
                str(telemetry),
                "--quiet",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert out.exists()
        for name in ("spans.jsonl", "trace.json", "metrics.json"):
            assert (telemetry / name).exists()
        _schema_check(json.loads((telemetry / "trace.json").read_text()))

    def test_status_lines_without_quiet(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            [
                "scenario",
                "run",
                "paper-baseline",
                "--seeds",
                "2",
                "--out",
                str(out),
                "--telemetry",
                str(tmp_path / "telemetry"),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert f"wrote {out}" in err
        assert "schedule cache:" in err
        assert "telemetry written to" in err

    def test_figure5_telemetry(self, tmp_path, capsys):
        telemetry = tmp_path / "telemetry"
        code = main(
            [
                "figure5",
                "--repeats",
                "1",
                "--sizes",
                "11",
                "--telemetry",
                str(telemetry),
                "--quiet",
            ]
        )
        assert code == 0
        assert capsys.readouterr().err == ""
        metrics = json.loads((telemetry / "metrics.json").read_text())
        assert metrics["counters"]["sweep.runs"] == 2  # both algorithms

    def test_overhead_telemetry(self, tmp_path, capsys):
        telemetry = tmp_path / "telemetry"
        code = main(
            [
                "overhead",
                "--size",
                "11",
                "--seeds",
                "1",
                "--setup-periods",
                "30",
                "--telemetry",
                str(telemetry),
                "--quiet",
            ]
        )
        assert code == 0
        assert capsys.readouterr().err == ""
        spans = [
            json.loads(line)
            for line in (telemetry / "spans.jsonl").read_text().splitlines()
        ]
        names = {s["name"] for s in spans}
        assert "overhead.seed" in names
        assert "setup.phase1" in names
