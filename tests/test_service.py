"""The resilient experiment service: durable jobs, shard supervision,
crash-safe resume.

The contracts under test, in increasing order of violence:

* job identity is content-addressed — the same submission dedups, any
  knob change produces a different job;
* the durable store's state machine admits only legal edges, claims
  are atomic, and recovery re-queues whatever a dead process held;
* a shard-scheduled job's merged report is *byte-identical* to an
  uninterrupted serial run — including after a worker is killed
  mid-job (crash drill) and after the whole service "dies" and a
  fresh instance resumes from the same data dir (halt drill);
* malformed submissions are a 400 over HTTP, never a crash, and the
  result endpoint serves the report's exact bytes.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments import FaultPlan, RetryPolicy, ServiceHalt
from repro.scenarios import ScenarioRunner, ScenarioSpec, get_scenario
from repro.service import (
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobStore,
    ServiceClient,
    ServiceError,
    ShardScheduler,
    SweepService,
    check_transition,
    job_key,
    lower_job,
)

SEEDS = 5
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.002)


@pytest.fixture(scope="module")
def direct():
    """The uninterrupted serial run every service path must reproduce."""
    return ScenarioRunner().run("paper-baseline", seeds=SEEDS)


def make_record(spec=None, repeats=SEEDS, base_seed=0, **knobs):
    spec = spec if spec is not None else get_scenario("paper-baseline")
    return JobRecord(
        job_id=job_key(spec, repeats, base_seed, **knobs),
        spec_json=spec.to_json(indent=None),
        repeats=repeats,
        base_seed=base_seed,
        kernel=knobs.get("kernel"),
        setup_kernel=knobs.get("setup_kernel"),
        state=QUEUED,
    )


def start_service(tmp_path, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    return SweepService(
        tmp_path / "svc", port=0, shard_workers=2, **kwargs
    ).start()


def wait_for(predicate, timeout=60.0, poll=0.02):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition not reached in time"
        time.sleep(poll)


# ----------------------------------------------------------------------
# Content-addressed job identity
# ----------------------------------------------------------------------
class TestJobKey:
    def test_stable_across_equal_submissions(self):
        spec = get_scenario("paper-baseline")
        again = ScenarioSpec.from_json(spec.to_json())
        assert job_key(spec, 5, 0) == job_key(again, 5, 0)

    def test_every_knob_is_part_of_the_identity(self):
        spec = get_scenario("paper-baseline")
        base = job_key(spec, 5, 0)
        assert job_key(spec, 6, 0) != base
        assert job_key(spec, 5, 1) != base
        assert job_key(spec, 5, 0, kernel="legacy") != base
        assert job_key(spec, 5, 0, setup_kernel="legacy") != base
        assert job_key(get_scenario("two-sources"), 5, 0) != base


class TestSpecJsonRoundTrip:
    @pytest.mark.parametrize("name", ["paper-baseline", "two-sources", "mobile-source"])
    def test_json_round_trip_is_lossless(self, name):
        spec = get_scenario(name)
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_json(json.dumps(["not", "an", "object"]))


# ----------------------------------------------------------------------
# The durable job store
# ----------------------------------------------------------------------
class TestJobStore:
    def test_submit_then_dedup(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        record, created = store.submit(make_record())
        assert created and record.state == QUEUED
        again, created = store.submit(make_record())
        assert not created
        assert again.job_id == record.job_id
        assert again.submit_order == record.submit_order
        assert len(store.list_jobs()) == 1

    def test_claim_is_fifo_and_exhaustible(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        first, _ = store.submit(make_record(repeats=2))
        second, _ = store.submit(make_record(repeats=3))
        assert store.claim_next().job_id == first.job_id
        assert store.claim_next().job_id == second.job_id
        assert store.claim_next() is None
        assert all(r.state == RUNNING for r in store.list_jobs())

    def test_transition_validates_edges(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        record, _ = store.submit(make_record())
        with pytest.raises(ConfigurationError):  # queued -> done skips running
            store.transition(record.job_id, DONE)
        store.claim_next()
        done = store.transition(record.job_id, DONE, result_json="{}")
        assert done.state == DONE and done.result_json == "{}"
        with pytest.raises(ConfigurationError):  # terminal states are immutable
            store.transition(record.job_id, QUEUED)
        with pytest.raises(KeyError):
            store.transition("no-such-job", DONE)

    def test_recover_requeues_running_jobs(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite")
        record, _ = store.submit(make_record())
        store.claim_next()
        # A second store over the same file is "the restarted process".
        restarted = JobStore(tmp_path / "jobs.sqlite")
        assert restarted.recover() == 1
        assert restarted.get(record.job_id).state == QUEUED
        assert restarted.recover() == 0

    def test_check_transition_rejects_unknown_states(self):
        with pytest.raises(ConfigurationError):
            check_transition(QUEUED, "paused")
        with pytest.raises(ConfigurationError):
            check_transition("limbo", DONE)
        check_transition(RUNNING, FAILED)
        check_transition(RUNNING, QUARANTINED)


# ----------------------------------------------------------------------
# The shard scheduler (no HTTP involved)
# ----------------------------------------------------------------------
class TestShardScheduler:
    def test_clean_job_is_byte_identical_to_serial(self, tmp_path, direct):
        scheduler = ShardScheduler(
            tmp_path, shard_workers=2, retry=FAST_RETRY
        )
        try:
            outcome = scheduler.run_job(
                get_scenario("paper-baseline"), repeats=SEEDS
            )
        finally:
            scheduler.close()
        assert not outcome.failures
        assert outcome.to_json() == direct.to_json()

    def test_second_run_merges_from_checkpoint(self, tmp_path, direct):
        scheduler = ShardScheduler(
            tmp_path, shard_workers=2, retry=FAST_RETRY
        )
        try:
            scheduler.run_job(get_scenario("paper-baseline"), repeats=SEEDS)
            # Every seed is checkpointed now; the re-run must merge
            # without executing anything (progress shows 0 missing).
            outcome = scheduler.run_job(
                get_scenario("paper-baseline"), repeats=SEEDS
            )
        finally:
            scheduler.close()
        assert outcome.to_json() == direct.to_json()

    def test_validates_parameters(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ShardScheduler(tmp_path, shard_workers=0)
        with pytest.raises(ConfigurationError):
            ShardScheduler(tmp_path, shard_timeout=-1.0)

    def test_lower_job_matches_scenario_runner(self):
        spec = get_scenario("paper-baseline")
        topology, config = lower_job(spec, repeats=SEEDS)
        assert config.repeats == SEEDS
        assert config.kernel is None  # no knobs -> spec's own config
        _, overridden = lower_job(spec, repeats=SEEDS, kernel="legacy")
        assert overridden.kernel == "legacy"


# ----------------------------------------------------------------------
# The HTTP front
# ----------------------------------------------------------------------
class TestServiceHttp:
    def test_submit_run_result_and_dedup(self, tmp_path, direct):
        service = start_service(tmp_path)
        try:
            client = ServiceClient(service.url)
            assert client.health() == {"ok": True}
            submitted = client.submit(
                {"scenario": "paper-baseline", "seeds": SEEDS}
            )
            assert submitted["created"] is True
            duplicate = client.submit(
                {"scenario": "paper-baseline", "seeds": SEEDS}
            )
            assert duplicate["created"] is False
            assert duplicate["job"] == submitted["job"]

            status = client.wait(submitted["job"], timeout=120.0)
            assert status["state"] == "done"
            assert "service.submissions.created" in status["metrics"]["counters"]
            # The result endpoint serves the direct run's exact bytes.
            assert client.result_text(submitted["job"]) == direct.to_json() + "\n"
        finally:
            service.drain()

    def test_malformed_submissions_are_400_never_a_crash(self, tmp_path):
        service = start_service(tmp_path)
        try:
            client = ServiceClient(service.url)
            cases = [
                {},  # neither scenario nor spec
                {"scenario": "x", "spec": {}},  # both
                {"scenario": "no-such-scenario"},
                {"scenario": "paper-baseline", "bogus": 1},
                {"scenario": "paper-baseline", "seeds": "five"},
                {"scenario": "paper-baseline", "seeds": 0},
                {"spec": "not-an-object"},
                {"spec": {"name": "x", "algorithm": "rot13"}},
            ]
            for payload in cases:
                with pytest.raises(ServiceError) as excinfo:
                    client.submit(payload)
                assert excinfo.value.status == 400, payload
            # A body that is not JSON at all is a 400 too.
            request = urllib.request.Request(
                f"{service.url}/jobs",
                data=b"{definitely not json",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400
            # ...and the service is still alive and empty afterwards.
            assert client.health() == {"ok": True}
            assert service.store.list_jobs() == []
        finally:
            service.drain()

    def test_unknown_job_is_404_and_pending_result_is_409(self, tmp_path):
        service = start_service(tmp_path)
        try:
            client = ServiceClient(service.url)
            for probe in (client.status, client.result):
                with pytest.raises(ServiceError) as excinfo:
                    probe("0" * 64)
                assert excinfo.value.status == 404
            # A job that only exists in the store (the drain loop never
            # saw it) serves 409 from the result endpoint.
            record, _ = service.store.submit(make_record(repeats=2))
            service.store.claim_next()
            with pytest.raises(ServiceError) as excinfo:
                client.result(record.job_id)
            assert excinfo.value.status == 409
        finally:
            service.drain()


# ----------------------------------------------------------------------
# Chaos drills
# ----------------------------------------------------------------------
class TestChaosDrills:
    def test_worker_killed_mid_job_still_byte_identical(self, tmp_path, direct):
        """A shard worker dies with ``kill -9`` semantics mid-job; the
        pool is respawned, the shard retried, and the merged report is
        indistinguishable from a run in which nothing happened."""
        plan = FaultPlan(crash_seeds=(2,), marker_dir=str(tmp_path / "markers"))
        with plan.activated():
            service = start_service(tmp_path)
            try:
                record, created = service.submit(
                    {"scenario": "paper-baseline", "seeds": SEEDS}
                )
                assert created
                wait_for(
                    lambda: service.store.get(record.job_id).state == DONE,
                    timeout=120.0,
                )
            finally:
                service.drain()
        # The fault really fired (a vacuous pass would prove nothing).
        assert (tmp_path / "markers" / "crash-2").exists()
        final = service.store.get(record.job_id)
        assert final.result_json == direct.to_json()

    def test_service_killed_mid_job_resumes_byte_identical(self, tmp_path, direct):
        """The whole service "dies" (ServiceHalt, the in-process kill -9
        stand-in: the job record is left ``running``, nothing is
        flushed); a fresh instance over the same data dir recovers,
        finishes only the missing seeds and serves the same bytes."""
        plan = FaultPlan(halt_seeds=(3,), marker_dir=str(tmp_path / "markers"))
        with plan.activated():
            service = start_service(tmp_path)
            try:
                record, _ = service.submit(
                    {"scenario": "paper-baseline", "seeds": SEEDS}
                )
                wait_for(lambda: service.halted, timeout=120.0)
            finally:
                service.drain()
            # The fault really fired, and the dead service never
            # touched the record: still running.
            assert (tmp_path / "markers" / "halt-3").exists()
            assert service.store.get(record.job_id).state == RUNNING

            restarted = start_service(tmp_path)
            try:
                client = ServiceClient(restarted.url)
                status = client.wait(record.job_id, timeout=120.0)
                assert status["state"] == "done"
                assert client.result_text(record.job_id) == direct.to_json() + "\n"
            finally:
                restarted.drain()

    def test_halt_plan_env_round_trip(self, tmp_path):
        plan = FaultPlan(halt_seeds=(1, 2), marker_dir=str(tmp_path))
        assert FaultPlan.from_env(plan.to_env()) == plan

    def test_before_shard_halts_once_only(self, tmp_path):
        plan = FaultPlan(halt_seeds=(7,), marker_dir=str(tmp_path))
        with pytest.raises(ServiceHalt):
            plan.before_shard((6, 7, 8))
        plan.before_shard((6, 7, 8))  # the restart proceeds
        plan.before_shard((0, 1))  # unlisted seeds never halt

    def test_service_halt_is_not_an_exception(self):
        # The kill -9 stand-in must escape every `except Exception`
        # in the supervision ladder.
        assert not issubclass(ServiceHalt, Exception)
        assert issubclass(ServiceHalt, BaseException)


# ----------------------------------------------------------------------
# The service CLI
# ----------------------------------------------------------------------
class TestServiceCli:
    def test_scenario_export_then_run_file(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        assert (
            main(["scenario", "export", "paper-baseline", "--out", str(spec_file)])
            == 0
        )
        capsys.readouterr()
        assert ScenarioSpec.from_json(spec_file.read_text()) == get_scenario(
            "paper-baseline"
        )
        assert main(["scenario", "run", str(spec_file), "--seeds", "2"]) == 0
        from_file = capsys.readouterr().out
        assert main(["scenario", "run", "paper-baseline", "--seeds", "2"]) == 0
        assert from_file == capsys.readouterr().out

    def test_export_to_stdout(self, capsys):
        assert main(["scenario", "export", "two-sources"]) == 0
        out = capsys.readouterr().out
        assert ScenarioSpec.from_json(out) == get_scenario("two-sources")

    def test_unknown_scenario_is_a_config_error_exit(self, capsys):
        assert main(["scenario", "export", "no-such-scenario"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_submit_status_result_against_live_service(
        self, tmp_path, capsys, direct
    ):
        service = start_service(tmp_path)
        try:
            url = service.url
            assert (
                main(
                    [
                        "service", "submit", "paper-baseline",
                        "--url", url, "--seeds", str(SEEDS), "--wait",
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert out.endswith(direct.to_json() + "\n")
            job_id = service.store.list_jobs()[0].job_id
            assert main(["service", "status", job_id, "--url", url]) == 0
            status = json.loads(capsys.readouterr().out)
            assert status["state"] == "done"
            result_file = tmp_path / "result.json"
            assert (
                main(
                    [
                        "service", "result", job_id,
                        "--url", url, "--out", str(result_file),
                    ]
                )
                == 0
            )
            capsys.readouterr()
            assert result_file.read_text() == direct.to_json() + "\n"
        finally:
            service.drain()

    def test_client_errors_exit_2(self, tmp_path, capsys):
        service = start_service(tmp_path)
        try:
            url = service.url
            assert (
                main(["service", "submit", "no-such-scenario", "--url", url]) == 2
            )
            assert "error:" in capsys.readouterr().err
            assert main(["service", "status", "bogus-job", "--url", url]) == 2
        finally:
            service.drain()
        capsys.readouterr()
