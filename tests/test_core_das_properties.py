"""Unit tests for the Definition 1-3 checkers."""

import pytest

from repro.core import (
    COLLISION,
    MISSING_SLOT,
    ORDERING,
    Schedule,
    check_strong_das,
    check_weak_das,
    first_violation,
    is_non_colliding,
    is_strong_das,
    is_weak_das,
)
from repro.topology import LineTopology, Topology


def line_schedule(line: LineTopology, slots=None) -> Schedule:
    """Valid line schedule by default: slots ascend toward the sink."""
    n = line.length
    if slots is None:
        slots = {i: i + 1 for i in range(n)}
    parents = {i: i + 1 for i in range(n - 1)}
    parents[n - 1] = None
    return Schedule(slots, parents, sink=n - 1)


class TestNonColliding:
    def test_valid_line_is_non_colliding(self, line5):
        s = line_schedule(line5)
        assert all(is_non_colliding(line5, s, n) for n in line5.nodes)

    def test_detects_two_hop_collision(self, line5):
        s = line_schedule(line5, slots={0: 1, 1: 2, 2: 1, 3: 4, 4: 9})
        assert not is_non_colliding(line5, s, 0)
        assert not is_non_colliding(line5, s, 2)
        assert is_non_colliding(line5, s, 3)

    def test_three_hop_reuse_is_fine(self):
        line = LineTopology(6)
        slots = {0: 1, 1: 2, 2: 3, 3: 1, 4: 5, 5: 9}
        s = line_schedule(line, slots={**slots})
        # nodes 0 and 3 share slot 1 but are 3 hops apart.
        assert is_non_colliding(line, s, 0)
        assert is_non_colliding(line, s, 3)


class TestStrongDas:
    def test_valid_line(self, line5):
        assert is_strong_das(line5, line_schedule(line5))

    def test_missing_slot_detected(self, line5):
        s = Schedule({0: 1, 1: 2, 2: 3, 4: 9}, {}, sink=4)  # node 3 missing
        result = check_strong_das(line5, s)
        assert not result.ok
        kinds = {v.kind for v in result.violations}
        assert kinds == {MISSING_SLOT}
        assert first_violation(result).nodes == (3,)

    def test_ordering_violation_detected(self, line5):
        # Node 1 transmits after node 2, but 2 is on 1's shortest path.
        s = line_schedule(line5, slots={0: 1, 1: 5, 2: 3, 3: 7, 4: 9})
        result = check_strong_das(line5, s)
        assert result.violations_of_kind(ORDERING)
        nodes = {v.nodes for v in result.violations_of_kind(ORDERING)}
        assert (1, 2) in nodes

    def test_collision_violation_detected(self, line5):
        s = line_schedule(line5, slots={0: 2, 1: 2, 2: 3, 3: 4, 4: 9})
        result = check_strong_das(line5, s)
        assert result.violations_of_kind(COLLISION)

    def test_sink_neighbour_exempt(self, line5):
        # Node 3 is next to the sink; the m = S case is unconstrained, so
        # a huge slot on 3 (still below sink) is fine.
        s = line_schedule(line5, slots={0: 1, 1: 2, 2: 3, 3: 8, 4: 9})
        assert is_strong_das(line5, s)

    def test_summary_mentions_kind(self, line5):
        s = line_schedule(line5, slots={0: 2, 1: 2, 2: 3, 3: 4, 4: 9})
        assert "collision" in check_strong_das(line5, s).summary()

    def test_ok_summary(self, line5):
        assert "valid strong DAS" in check_strong_das(line5, line_schedule(line5)).summary()


class TestWeakDas:
    def test_strong_implies_weak(self, grid5, grid5_schedule):
        assert is_strong_das(grid5, grid5_schedule)
        assert is_weak_das(grid5, grid5_schedule)

    def test_weak_but_not_strong(self, grid5):
        """Lowering one toward-sink neighbour's slot breaks strong only."""
        s = grid5_schedule = None
        from repro.das import centralized_das_schedule

        base = centralized_das_schedule(grid5, jitter=False)
        # Node 0 (corner) has toward-sink neighbours 1 and 5; its parent
        # is one of them.  Drop the *non-parent* one below node 0.
        parent = base.parent_of(0)
        other = next(m for m in grid5.shortest_path_children(0) if m != parent)
        crafted = base.with_slot(other, 1).with_slot(0, 2)
        # Repair any accidental collisions introduced by the crafting:
        # keep only the ordering aspect under test.
        strong = check_strong_das(grid5, crafted)
        weak = check_weak_das(grid5, crafted)
        assert strong.violations_of_kind(ORDERING)
        assert not weak.violations_of_kind(ORDERING)

    def test_dead_end_node_fails_weak(self, line5):
        # Node 0's only route to the sink is via node 1; if 1 transmits
        # before 0, node 0 has no outlet.
        s = line_schedule(line5, slots={0: 3, 1: 2, 2: 4, 3: 5, 4: 9})
        result = check_weak_das(line5, s)
        assert result.violations_of_kind(ORDERING)
        assert (0,) in {v.nodes for v in result.violations_of_kind(ORDERING)}

    def test_alternative_path_satisfies_weak(self):
        # A diamond: 0 can reach the sink via 1 or 2.
        topo = Topology.from_edges(
            [(0, 1), (0, 2), (1, 3), (2, 3)], sink=3, source=0
        )
        # 1 transmits before 0 (bad direction) but 2 transmits after.
        s = Schedule(
            {0: 2, 1: 1, 2: 4, 3: 9},
            {0: 2, 1: 3, 2: 3, 3: None},
            sink=3,
        )
        assert check_weak_das(topo, s).ok

    def test_weak_missing_slot(self, line5):
        s = Schedule({0: 1, 1: 2, 2: 3, 4: 9}, {}, sink=4)
        assert check_weak_das(line5, s).violations_of_kind(MISSING_SLOT)


class TestCheckResult:
    def test_bool_conversion(self, line5):
        assert bool(check_strong_das(line5, line_schedule(line5)))

    def test_violation_str(self, line5):
        s = line_schedule(line5, slots={0: 2, 1: 3, 2: 2, 3: 4, 4: 9})
        result = check_strong_das(line5, s)
        v = result.violations_of_kind(COLLISION)[0]
        assert "collision" in str(v)
        assert v.nodes == (0, 2)
