"""Tests for Phase 3 — slot refinement and the decoy gradient."""

import pytest

from repro.core import check_weak_das
from repro.das import centralized_das_schedule
from repro.errors import ProtocolError
from repro.slp import locate_redirection_node, refine_slots
from repro.topology import GridTopology


def build(grid, seed, sd=3, cl=4):
    schedule = centralized_das_schedule(grid, seed=seed)
    search = locate_redirection_node(grid, schedule, search_distance=sd)
    refinement = refine_slots(grid, schedule, search, change_length=cl, seed=seed)
    return schedule, search, refinement


class TestRefinement:
    def test_result_is_weak_das(self, grid7):
        for seed in range(8):
            _, _, refinement = build(grid7, seed)
            result = check_weak_das(grid7, refinement.schedule)
            assert result.ok, f"seed {seed}: {result.summary()}"

    def test_decoy_path_is_connected_to_start(self, grid7):
        for seed in range(5):
            _, search, refinement = build(grid7, seed)
            chain = [search.start_node, *refinement.decoy_path]
            for a, b in zip(chain, chain[1:]):
                assert grid7.are_linked(a, b)

    def test_decoy_length_bounded_by_change_length(self, grid7):
        for cl in (1, 2, 5):
            _, _, refinement = build(grid7, seed=0, cl=cl)
            assert 1 <= len(refinement.decoy_path) <= cl

    def test_first_decoy_is_spare_parent(self, grid7):
        schedule, search, refinement = build(grid7, seed=1)
        first = refinement.decoy_path[0]
        assert first in grid7.shortest_path_children(search.start_node)
        assert first != schedule.parent_of(search.start_node)

    def test_decoy_gradient_attracts_attacker(self, grid7):
        """A slot-gradient attacker reaching the start node must step
        into the diversion basin (a decoy node or a cascaded member of a
        decoy subtree) — the paper's redirection requirement: "For the
        attacker to move to n first, the slot value of n needs to be
        smaller than all the other nodes in m's neighbourhood"."""
        from repro.slp.refine import _subtree

        for seed in range(6):
            _, search, refinement = build(grid7, seed)
            refined = refinement.schedule
            start = search.start_node
            basin = set()
            for decoy in refinement.decoy_path:
                basin |= _subtree(refined, decoy)
            audible = [
                m for m in grid7.neighbours(start) if m != grid7.sink
            ]
            next_hop = min(
                audible, key=lambda m: (refined.slot_of(m), m)
            )
            assert next_hop in basin, (
                f"seed {seed}: attacker at {start} moves to {next_hop}, "
                f"outside the basin {sorted(basin)}"
            )

    def test_parents_unchanged(self, grid7):
        schedule, _, refinement = build(grid7, seed=2)
        assert refinement.schedule.parents() == schedule.parents()

    def test_slots_stay_positive(self, grid7):
        _, _, refinement = build(grid7, seed=3)
        assert min(refinement.schedule.slots().values()) >= 1

    def test_cascade_counted(self, grid7):
        _, _, refinement = build(grid7, seed=4)
        assert refinement.cascade_changes >= 0

    def test_change_length_validation(self, grid7):
        schedule = centralized_das_schedule(grid7, seed=0)
        search = locate_redirection_node(grid7, schedule, search_distance=3)
        with pytest.raises(ProtocolError, match="at least 1"):
            refine_slots(grid7, schedule, search, change_length=0)

    def test_seed_reproducibility(self, grid7):
        _, _, a = build(grid7, seed=7)
        _, _, b = build(grid7, seed=7)
        assert a.schedule == b.schedule
        assert a.decoy_path == b.decoy_path

    def test_avoid_source_pull_keeps_decoy_off_source(self, grid7):
        """With the default policy the decoy path never reaches the
        source itself."""
        for seed in range(8):
            _, _, refinement = build(grid7, seed)
            assert grid7.source not in refinement.decoy_path
