"""The declarative scenario subsystem: specs, registry, runner, CLI.

The load-bearing contracts:

* every registered scenario sweeps serial/parallel **bit-identically**
  (same per-run results, same bytes of JSON report);
* ``paper-baseline`` reproduces the plain :class:`ExperimentRunner`
  results exactly — the scenario layer adds workloads, it does not
  perturb the paper's;
* spec validation names the offending field and value.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.scenarios import (
    ScenarioRunner,
    ScenarioSpec,
    TopologySpec,
    format_comparison,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from repro.topology import paper_grid

#: Seeds per scenario for the identity sweep — small but non-trivial.
IDENTITY_SEEDS = 2


# ----------------------------------------------------------------------
# TopologySpec
# ----------------------------------------------------------------------
class TestTopologySpec:
    def test_families_build(self):
        assert TopologySpec("grid", 5).build().num_nodes == 25
        assert TopologySpec("line", 5).build().num_nodes == 5
        assert TopologySpec("ring", 8).build().num_nodes == 8

    def test_grid_placements(self):
        spec = TopologySpec("grid", 5)
        assert spec.resolve_placement("top-left") == 0
        assert spec.resolve_placement("top-right") == 4
        assert spec.resolve_placement("bottom-left") == 20
        assert spec.resolve_placement("bottom-right") == 24
        assert spec.resolve_placement("centre") == 12
        assert spec.resolve_placement(7) == 7

    def test_validation_names_field_and_value(self):
        with pytest.raises(ConfigurationError, match=r"TopologySpec\.family='torus'"):
            TopologySpec("torus", 5)
        with pytest.raises(ConfigurationError, match=r"TopologySpec\.size=1"):
            TopologySpec("grid", 1)

    def test_bad_placements_name_the_value(self):
        spec = TopologySpec("grid", 5)
        with pytest.raises(ConfigurationError, match="'north-pole'"):
            spec.resolve_placement("north-pole")
        with pytest.raises(ConfigurationError, match="=25:"):
            spec.resolve_placement(25)
        with pytest.raises(ConfigurationError, match="'top-left'"):
            TopologySpec("ring", 8).resolve_placement("top-left")


# ----------------------------------------------------------------------
# ScenarioSpec
# ----------------------------------------------------------------------
class TestScenarioSpec:
    def test_defaults_are_the_paper_workload(self):
        spec = ScenarioSpec(name="x")
        assert spec.resolved_sources() == (0,)
        assert spec.workload_kind() == "static"
        plan = spec.source_plan()
        assert plan.nodes == (0,) and not plan.is_rotating

    def test_lowering_to_config(self):
        spec = ScenarioSpec(
            name="x",
            topology=TopologySpec("grid", 5),
            sources=("top-left", "top-right"),
            repeats=7,
            base_seed=3,
        )
        config = spec.to_config()
        assert isinstance(config, ExperimentConfig)
        assert config.repeats == 7 and config.base_seed == 3
        assert config.source_plan.nodes == (0, 4)
        assert spec.to_config(repeats=2, base_seed=9).repeats == 2

    def test_primary_source_designated_on_topology(self):
        spec = ScenarioSpec(
            name="x", topology=TopologySpec("grid", 5), sources=(4, 20)
        )
        assert spec.build_topology().source == 4

    def test_validation_names_field_and_value(self):
        with pytest.raises(ConfigurationError, match=r"ScenarioSpec\.name=''"):
            ScenarioSpec(name="")
        with pytest.raises(ConfigurationError, match=r"ScenarioSpec\.algorithm='rot13'"):
            ScenarioSpec(name="x", algorithm="rot13")
        with pytest.raises(ConfigurationError, match=r"ScenarioSpec\.noise='loud'"):
            ScenarioSpec(name="x", noise="loud")
        with pytest.raises(ConfigurationError, match=r"ScenarioSpec\.sources=\(\)"):
            ScenarioSpec(name="x", sources=())
        with pytest.raises(ConfigurationError, match=r"ScenarioSpec\.repeats=0"):
            ScenarioSpec(name="x", repeats=0)
        with pytest.raises(
            ConfigurationError, match=r"ScenarioSpec\.source_rotation_period=0"
        ):
            ScenarioSpec(name="x", sources=(0, 1), source_rotation_period=0)
        with pytest.raises(ConfigurationError, match="at least two placements"):
            ScenarioSpec(name="x", source_rotation_period=2)
        with pytest.raises(ConfigurationError, match="duplicate"):
            ScenarioSpec(name="x", sources=("top-left", 0))

    def test_sink_placements_rejected_eagerly(self):
        # Grid "centre" IS the sink; the spec must refuse it at
        # construction instead of crashing mid-lowering.
        with pytest.raises(ConfigurationError, match="sink"):
            ScenarioSpec(
                name="x", topology=TopologySpec("grid", 5), sources=("centre",)
            )
        with pytest.raises(ConfigurationError, match="sink"):
            ScenarioSpec(
                name="x", topology=TopologySpec("grid", 5), sources=(0, 12)
            )
        with pytest.raises(ConfigurationError, match="sink"):
            ScenarioSpec(
                name="x", topology=TopologySpec("line", 5), sources=(4,)
            )

    def test_perturbations_validated_eagerly(self):
        from repro.app import NodeDeath

        with pytest.raises(
            ConfigurationError, match=r"ScenarioSpec\.perturbations=99"
        ):
            ScenarioSpec(
                name="x",
                topology=TopologySpec("grid", 5),
                perturbations=(NodeDeath(period=1, nodes=(99,)),),
            )
        with pytest.raises(
            ConfigurationError, match=r"ScenarioSpec\.perturbations=12"
        ):
            ScenarioSpec(
                name="x",
                topology=TopologySpec("grid", 5),
                perturbations=(NodeDeath(period=1, nodes=(12,)),),
            )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_gallery_breadth(self):
        names = scenario_names()
        assert len(names) >= 6
        for required in (
            "paper-baseline",
            "two-sources",
            "mobile-source",
            "churn-10pct",
            "strong-attacker",
        ):
            assert required in names

    def test_workload_axes_covered(self):
        kinds = {spec.workload_kind().split("(")[0] for spec in iter_scenarios()}
        assert {"static", "multi", "mobile"} <= kinds
        assert any(spec.perturbations for spec in iter_scenarios())

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(ConfigurationError, match="paper-baseline"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_guarded(self):
        spec = get_scenario("paper-baseline")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scenario(spec)
        assert register_scenario(spec, replace=True) is spec


# ----------------------------------------------------------------------
# Runner determinism
# ----------------------------------------------------------------------
class TestScenarioRunnerDeterminism:
    @pytest.mark.parametrize("name", sorted(scenario_names()))
    def test_serial_and_parallel_sweeps_are_bit_identical(self, name):
        serial = ScenarioRunner(workers=1).run(name, seeds=IDENTITY_SEEDS)
        # force_parallel: the worker policy would (rightly) collapse a
        # 2-seed sweep to the serial engine; this test exists to prove
        # the pool path is bit-identical, so it must really fan out.
        parallel = ScenarioRunner(workers=2, force_parallel=True).run(
            name, seeds=IDENTITY_SEEDS
        )
        assert serial.results == parallel.results
        assert serial.stats == parallel.stats
        assert serial.per_source == parallel.per_source
        assert serial.first_capture == parallel.first_capture
        assert serial.to_json() == parallel.to_json()
        assert serial.to_jsonl() == parallel.to_jsonl()

    def test_paper_baseline_reproduces_experiment_runner_exactly(self):
        scenario = ScenarioRunner().run("paper-baseline", seeds=3)
        plain = ExperimentRunner(paper_grid(11)).run(ExperimentConfig(repeats=3))
        assert scenario.results == tuple(plain.results)
        assert scenario.stats == plain.stats

    def test_rerun_is_reproducible(self):
        first = ScenarioRunner().run("mobile-source", seeds=2)
        second = ScenarioRunner().run("mobile-source", seeds=2)
        assert first.to_json() == second.to_json()


# ----------------------------------------------------------------------
# Outcome reporting
# ----------------------------------------------------------------------
class TestScenarioOutcome:
    def test_report_shape(self):
        outcome = ScenarioRunner().run("two-sources", seeds=3)
        report = json.loads(outcome.to_json())
        assert report["scenario"] == "two-sources"
        assert report["workload"]["sources"] == [0, 10]
        assert len(report["runs"]) == 3
        assert report["runs"][0]["seed"] == 0
        assert {e["source"] for e in report["per_source"]} == {0, 10}
        assert report["stats"]["runs"] == 3
        assert report["first_capture"]["runs"] == 3

    def test_jsonl_is_one_line_per_run(self):
        outcome = ScenarioRunner().run("paper-baseline", seeds=3)
        lines = outcome.to_jsonl().strip().splitlines()
        assert len(lines) == 3
        rows = [json.loads(line) for line in lines]
        assert [r["seed"] for r in rows] == [0, 1, 2]
        assert all(r["scenario"] == "paper-baseline" for r in rows)

    def test_comparison_table_mentions_every_scenario(self):
        outcomes = ScenarioRunner().compare(
            ["paper-baseline", "two-sources"], seeds=2
        )
        table = format_comparison(outcomes)
        assert "paper-baseline" in table and "two-sources" in table
        assert "multi(2 sources)" in table


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestScenarioCli:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "paper-baseline" in out and "mobile-source" in out
        assert "scenarios registered" in out

    def test_run_serial_and_parallel_prints_identical_json(self, capsys):
        from repro.cli import main

        assert main(["scenario", "run", "two-sources", "--seeds", "2"]) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(
                ["scenario", "run", "two-sources", "--seeds", "2", "--workers", "2"]
            )
            == 0
        )
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
        assert json.loads(serial_out)["scenario"] == "two-sources"

    def test_run_jsonl_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "runs.jsonl"
        assert (
            main(
                [
                    "scenario", "run", "paper-baseline",
                    "--seeds", "2", "--jsonl", "--out", str(out_file),
                ]
            )
            == 0
        )
        capsys.readouterr()  # drain the "wrote ..." notice
        lines = out_file.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["scenario"] == "paper-baseline"

    def test_compare(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "scenario", "compare", "paper-baseline", "churn-10pct",
                    "--seeds", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "churn-10pct" in out and "capture" in out
