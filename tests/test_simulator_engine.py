"""Unit tests for the discrete event engine."""

import pytest

from repro.errors import SimulationError
from repro.simulator import EventQueue, Process, Simulator
from repro.topology import LineTopology


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(2.0, fired.append, (2,))
        q.push(1.0, fired.append, (1,))
        q.push(3.0, fired.append, (3,))
        while not q.empty:
            q.pop().fire()
        assert fired == [1, 2, 3]

    def test_fifo_at_equal_times(self):
        q = EventQueue()
        fired = []
        for i in range(5):
            q.push(1.0, fired.append, (i,))
        while not q.empty:
            q.pop().fire()
        assert fired == [0, 1, 2, 3, 4]

    def test_cancellation(self):
        q = EventQueue()
        fired = []
        handle = q.push(1.0, fired.append, (1,))
        q.push(2.0, fired.append, (2,))
        handle.cancel()
        assert handle.cancelled
        while not q.empty:
            q.pop().fire()
        assert fired == [2]

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        handle = q.push(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert q.empty

    def test_len_counts_live_events(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        h.cancel()
        assert len(q) == 1

    def test_len_is_tracked_through_pop_and_clear(self):
        q = EventQueue()
        handles = [q.push(float(i), lambda: None) for i in range(4)]
        q.pop()
        assert len(q) == 3
        handles[1].cancel()
        assert len(q) == 2
        q.clear()
        assert len(q) == 0
        assert q.empty

    def test_cancel_after_fire_keeps_count_consistent(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.pop()           # fires the event behind h
        h.cancel()        # late cancel of an already-popped event
        h.cancel()        # ... twice
        assert len(q) == 1
        q.pop()
        assert len(q) == 0

    def test_cancelled_events_do_not_resurface(self):
        q = EventQueue()
        for i in range(3):
            q.push(1.0, lambda: None)
        head = q.push(0.5, lambda: None)
        head.cancel()
        assert q.peek_time() == 1.0
        assert len(q) == 3

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            EventQueue().push(-1.0, lambda: None)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError, match="empty"):
            EventQueue().pop()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        assert q.peek_time() == 5.0


class TestSimulator:
    def topo(self):
        return LineTopology(3)

    def test_clock_advances(self):
        sim = Simulator(self.topo())
        times = []
        sim.schedule_at(1.0, lambda: times.append(sim.now))
        sim.schedule_at(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 2.5]
        assert sim.now == 2.5

    def test_run_until_is_inclusive_and_advances_clock(self):
        sim = Simulator(self.topo())
        fired = []
        sim.schedule_at(1.0, fired.append, (1,))
        sim.schedule_at(5.0, fired.append, (5,))
        sim.run(until=3.0)
        assert fired == [1]
        assert sim.now == 3.0
        sim.run()
        assert fired == [1, 5]

    def test_schedule_after(self):
        sim = Simulator(self.topo())
        result = []
        sim.schedule_at(2.0, lambda: sim.schedule_after(1.5, lambda: result.append(sim.now)))
        sim.run()
        assert result == [3.5]

    def test_cannot_schedule_in_past(self):
        sim = Simulator(self.topo())
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="cannot schedule"):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator(self.topo())
        with pytest.raises(SimulationError, match="negative delay"):
            sim.schedule_after(-1.0, lambda: None)

    def test_max_events(self):
        sim = Simulator(self.topo())
        fired = []
        for i in range(10):
            sim.schedule_at(float(i), fired.append, (i,))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_request_stop(self):
        sim = Simulator(self.topo())
        fired = []

        def stopper():
            fired.append("stop")
            sim.request_stop()

        sim.schedule_at(1.0, stopper)
        sim.schedule_at(2.0, fired.append, ("late",))
        sim.run()
        assert fired == ["stop"]

    def test_deterministic_rng(self):
        a = Simulator(self.topo(), seed=42).rng.random()
        b = Simulator(self.topo(), seed=42).rng.random()
        assert a == b

    def test_step(self):
        sim = Simulator(self.topo())
        sim.schedule_at(1.0, lambda: None)
        assert sim.step()
        assert not sim.step()
        assert sim.events_executed >= 1

    def test_process_registration(self):
        sim = Simulator(self.topo())
        proc = Process(0)
        sim.register_process(proc)
        assert sim.process_at(0) is proc
        with pytest.raises(SimulationError, match="already registered"):
            sim.register_process(Process(0))

    def test_unknown_node_process_rejected(self):
        sim = Simulator(self.topo())
        with pytest.raises(SimulationError, match="unknown node"):
            sim.register_process(Process(99))

    def test_process_at_unknown(self):
        with pytest.raises(SimulationError, match="no process"):
            Simulator(self.topo()).process_at(0)

    def test_processes_started_in_node_order(self):
        sim = Simulator(self.topo())
        order = []

        class P(Process):
            def start(self):
                order.append(self.node)

        for n in [2, 0, 1]:
            sim.register_process(P(n))
        sim.schedule_at(0.0, lambda: None)
        sim.run()
        assert order == [0, 1, 2]


class TestProcessTimers:
    def test_timer_fires(self):
        sim = Simulator(LineTopology(3))
        fired = []

        class P(Process):
            def start(self):
                self.set_timer("tick", 1.5)

            def on_timer(self, name, time):
                fired.append((name, time))

        sim.register_process(P(0))
        sim.run()
        assert fired == [("tick", 1.5)]

    def test_timer_rearm_replaces(self):
        sim = Simulator(LineTopology(3))
        fired = []

        class P(Process):
            def start(self):
                self.set_timer("tick", 1.0)
                self.set_timer("tick", 3.0)  # replaces

            def on_timer(self, name, time):
                fired.append(time)

        sim.register_process(P(0))
        sim.run()
        assert fired == [3.0]

    def test_cancel_timer(self):
        sim = Simulator(LineTopology(3))
        fired = []

        class P(Process):
            def start(self):
                self.set_timer("tick", 1.0)
                self.cancel_timer("tick")

            def on_timer(self, name, time):
                fired.append(time)

        sim.register_process(P(0))
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        assert fired == []

    def test_timer_pending(self):
        sim = Simulator(LineTopology(3))
        states = []

        class P(Process):
            def start(self):
                self.set_timer("tick", 1.0)
                states.append(self.timer_pending("tick"))

            def on_timer(self, name, time):
                states.append(self.timer_pending("tick"))

        sim.register_process(P(0))
        sim.run()
        assert states == [True, False]

    def test_unbound_process_rejects_actions(self):
        p = Process(0)
        with pytest.raises(SimulationError, match="not registered"):
            p.set_timer("x", 1.0)

    def test_double_bind_rejected(self):
        sim = Simulator(LineTopology(3))
        p = Process(0)
        sim.register_process(p)
        with pytest.raises(SimulationError, match="already registered"):
            p.bind(sim)
