"""Tests for radio energy accounting."""

import pytest

from repro.das import DasProtocolConfig, run_das_setup
from repro.errors import ConfigurationError
from repro.metrics import (
    EnergyModel,
    EnergyReport,
    estimate_lifetime_periods,
    measure_energy,
)
from repro.simulator import DELIVER, SEND, TraceRecorder
from repro.slp import SlpProtocolConfig, run_slp_setup
from repro.topology import GridTopology


def trace_with(sends: int, delivers: int) -> TraceRecorder:
    t = TraceRecorder(kinds=frozenset())  # counts only, nothing retained
    for _ in range(sends):
        t.record(0.0, SEND)
    for _ in range(delivers):
        t.record(0.0, DELIVER)
    return t


class TestEnergyModel:
    def test_defaults_positive(self):
        m = EnergyModel()
        assert m.tx_microjoules > m.rx_microjoules > 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(tx_microjoules=-1)


class TestMeasurement:
    def test_counts_folded(self):
        report = measure_energy(trace_with(10, 30), EnergyModel(50.0, 25.0))
        assert report.transmissions == 10
        assert report.receptions == 30
        assert report.tx_microjoules == pytest.approx(500.0)
        assert report.rx_microjoules == pytest.approx(750.0)
        assert report.total_microjoules == pytest.approx(1250.0)
        assert report.total_millijoules == pytest.approx(1.25)

    def test_filtered_trace_still_counts(self):
        # kinds filter retains nothing, but counts survive.
        report = measure_energy(trace_with(5, 5))
        assert report.transmissions == 5

    def test_overhead_versus(self):
        base = measure_energy(trace_with(100, 300))
        slp = measure_energy(trace_with(110, 330))
        assert slp.overhead_versus(base) == pytest.approx(0.10)

    def test_overhead_zero_baseline(self):
        zero = measure_energy(trace_with(0, 0))
        assert zero.overhead_versus(zero) == 0.0
        assert measure_energy(trace_with(1, 0)).overhead_versus(zero) == float("inf")


class TestLifetime:
    def test_estimate(self):
        # 1 J per period from an 8640 J budget -> 8640 periods.
        assert estimate_lifetime_periods(1e6, battery_joules=8640.0) == pytest.approx(
            8640.0
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            estimate_lifetime_periods(0.0)
        with pytest.raises(ConfigurationError):
            estimate_lifetime_periods(1.0, battery_joules=0.0)


class TestEndToEnd:
    def test_slp_energy_overhead_is_small(self):
        """The energy form of the paper's overhead claim."""
        grid = GridTopology(5)
        das_cfg = DasProtocolConfig(setup_periods=35)
        baseline = run_das_setup(grid, config=das_cfg, seed=0)
        slp = run_slp_setup(
            grid,
            config=SlpProtocolConfig(
                das=das_cfg, search_distance=2, change_length=3,
                refinement_periods=20,
            ),
            seed=0,
        )
        base_energy = measure_energy(baseline.simulator.trace)
        slp_energy = measure_energy(slp.simulator.trace)
        assert slp_energy.total_microjoules >= base_energy.total_microjoules
        # At this deliberately tiny scale (5x5, 35-round setup) the
        # refinement's update disseminations weigh relatively heavily;
        # at the paper's scale (MSP = 80, 11x11) the measured overhead
        # is under 10% (see EXPERIMENTS.md).  Guard the order of
        # magnitude here, not the paper-scale figure.
        assert slp_energy.overhead_versus(base_energy) < 0.5
