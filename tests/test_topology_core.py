"""Unit tests for the Topology abstraction."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology import Coordinate, Topology


def simple_square() -> Topology:
    """A 4-cycle: 0-1-2-3-0 with sink 0, source 2."""
    return Topology.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)], sink=0, source=2)


class TestConstruction:
    def test_rejects_empty_graph(self):
        with pytest.raises(TopologyError, match="at least one node"):
            Topology(nx.Graph(), sink=0)

    def test_rejects_disconnected_graph(self):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(TopologyError, match="connected"):
            Topology(g, sink=0)

    def test_rejects_unknown_sink(self):
        g = nx.path_graph(3)
        with pytest.raises(TopologyError, match="sink"):
            Topology(g, sink=99)

    def test_rejects_unknown_source(self):
        g = nx.path_graph(3)
        with pytest.raises(TopologyError, match="source"):
            Topology(g, sink=0, source=99)

    def test_rejects_source_equal_to_sink(self):
        g = nx.path_graph(3)
        with pytest.raises(TopologyError, match="distinct"):
            Topology(g, sink=0, source=0)

    def test_graph_is_defensively_copied(self):
        g = nx.path_graph(3)
        topo = Topology(g, sink=0)
        g.add_edge(0, 2)
        assert not topo.are_linked(0, 2)

    def test_underlying_graph_is_frozen(self):
        topo = simple_square()
        with pytest.raises(nx.NetworkXError):
            topo.graph.add_edge(0, 2)


class TestRoles:
    def test_sink_and_source(self):
        topo = simple_square()
        assert topo.sink == 0
        assert topo.source == 2
        assert topo.has_source

    def test_missing_source_raises(self):
        topo = Topology.from_edges([(0, 1)], sink=0)
        assert not topo.has_source
        with pytest.raises(TopologyError, match="no designated source"):
            _ = topo.source

    def test_with_source_returns_new_topology(self):
        topo = simple_square()
        other = topo.with_source(1)
        assert other.source == 1
        assert topo.source == 2  # original untouched


class TestStructure:
    def test_nodes_sorted(self):
        topo = simple_square()
        assert topo.nodes == (0, 1, 2, 3)

    def test_len_and_contains(self):
        topo = simple_square()
        assert len(topo) == 4
        assert 2 in topo
        assert 99 not in topo

    def test_neighbours_sorted(self):
        topo = simple_square()
        assert topo.neighbours(0) == (1, 3)

    def test_neighbours_unknown_node(self):
        with pytest.raises(TopologyError, match="not part of"):
            simple_square().neighbours(42)

    def test_degree(self):
        assert simple_square().degree(1) == 2

    def test_are_linked(self):
        topo = simple_square()
        assert topo.are_linked(0, 1)
        assert not topo.are_linked(0, 2)


class TestCollisionNeighbourhood:
    def test_two_hop_on_square(self):
        topo = simple_square()
        # On a 4-cycle everything is within two hops of everything.
        assert topo.collision_neighbourhood(0) == frozenset({1, 2, 3})

    def test_excludes_self(self, line5):
        assert 2 not in line5.collision_neighbourhood(2)

    def test_two_hop_on_line(self, line5):
        assert line5.collision_neighbourhood(0) == frozenset({1, 2})
        assert line5.collision_neighbourhood(2) == frozenset({0, 1, 3, 4})

    def test_cached_result_is_stable(self, line5):
        first = line5.collision_neighbourhood(1)
        second = line5.collision_neighbourhood(1)
        assert first == second


class TestDistances:
    def test_sink_distance(self, line5):
        assert line5.sink_distance(line5.sink) == 0
        assert line5.sink_distance(0) == 4

    def test_source_sink_distance(self, line5):
        assert line5.source_sink_distance() == 4

    def test_hop_distance(self, ring8):
        assert ring8.hop_distance(0, 4) == 4
        assert ring8.hop_distance(1, 7) == 2

    def test_diameter(self, line5):
        assert line5.diameter() == 4

    def test_shortest_path_children(self, line5):
        # On a line, the unique toward-sink neighbour of node 2 is node 3.
        assert line5.shortest_path_children(2) == (3,)
        assert line5.shortest_path_children(line5.sink) == ()

    def test_shortest_path_children_on_grid(self, grid5):
        # Node 0 (corner) has two neighbours, both one hop closer to the
        # centre sink.
        children = grid5.shortest_path_children(0)
        assert set(children) == {1, 5}

    def test_all_shortest_paths(self, grid5):
        paths = grid5.shortest_paths_to_sink(0)
        assert all(p[0] == 0 and p[-1] == grid5.sink for p in paths)
        assert all(len(p) == grid5.sink_distance(0) + 1 for p in paths)

    def test_bfs_layers_partition_nodes(self, grid5):
        layers = grid5.bfs_layers()
        assert layers[0] == [grid5.sink]
        flattened = [n for layer in layers for n in layer]
        assert sorted(flattened) == list(grid5.nodes)


class TestGeometry:
    def test_positions_absent_by_default(self):
        topo = simple_square()
        assert not topo.has_positions
        with pytest.raises(TopologyError, match="no physical position"):
            topo.position(0)

    def test_unit_disk_construction(self):
        positions = {
            0: Coordinate(0.0, 0.0),
            1: Coordinate(4.0, 0.0),
            2: Coordinate(8.0, 0.0),
        }
        topo = Topology.from_unit_disk(positions, communication_range=4.5, sink=2)
        assert topo.are_linked(0, 1)
        assert topo.are_linked(1, 2)
        assert not topo.are_linked(0, 2)

    def test_unit_disk_rejects_bad_range(self):
        with pytest.raises(TopologyError, match="positive"):
            Topology.from_unit_disk({0: Coordinate(0, 0)}, 0.0, sink=0)

    def test_unit_disk_disconnected_rejected(self):
        positions = {0: Coordinate(0, 0), 1: Coordinate(100, 100)}
        with pytest.raises(TopologyError, match="connected"):
            Topology.from_unit_disk(positions, communication_range=5.0, sink=0)


class TestArrayMetrics:
    """The array-backed TopologyMetrics tables must agree with the
    networkx queries they replaced, for every node pair."""

    @pytest.fixture
    def topo(self):
        from repro.topology import GridTopology

        return GridTopology(5, sink=12, source=0)

    def test_sink_distance_matches_networkx(self, topo):
        reference = nx.single_source_shortest_path_length(topo.graph, topo.sink)
        for node in topo.nodes:
            assert topo.sink_distance(node) == reference[node]

    def test_hop_distance_matches_networkx_all_pairs(self, topo):
        for a in topo.nodes:
            for b in topo.nodes:
                assert topo.hop_distance(a, b) == nx.shortest_path_length(
                    topo.graph, a, b
                )

    def test_hop_distance_reuses_cached_rows_symmetrically(self, topo):
        metrics = topo.metrics
        cached_before = len(metrics._rows)
        topo.hop_distance(3, 17)
        assert len(metrics._rows) == cached_before + 1
        # The reverse query answers from the same row: no new BFS.
        topo.hop_distance(17, 3)
        assert len(metrics._rows) == cached_before + 1

    def test_shortest_path_children_match_definition(self, topo):
        for node in topo.nodes:
            expected = tuple(
                m
                for m in topo.neighbours(node)
                if topo.sink_distance(m) == topo.sink_distance(node) - 1
            )
            assert topo.shortest_path_children(node) == expected

    def test_bfs_layers_partition_by_distance(self, topo):
        layers = topo.bfs_layers()
        seen = []
        for depth, layer in enumerate(layers):
            assert layer == sorted(layer)
            for node in layer:
                assert topo.sink_distance(node) == depth
            seen.extend(layer)
        assert sorted(seen) == list(topo.nodes)

    def test_unknown_node_still_raises(self, topo):
        with pytest.raises(TopologyError):
            topo.sink_distance(999)
        with pytest.raises(TopologyError):
            topo.hop_distance(0, 999)
        with pytest.raises(TopologyError):
            topo.shortest_path_children(-1)

    def test_metrics_survive_pickle_exclusion(self, topo):
        import pickle

        topo.hop_distance(0, 24)  # populate a non-sink BFS row
        clone = pickle.loads(pickle.dumps(topo))
        assert clone._metrics is None
        for node in topo.nodes:
            assert clone.sink_distance(node) == topo.sink_distance(node)
            assert clone.shortest_path_children(
                node
            ) == topo.shortest_path_children(node)
