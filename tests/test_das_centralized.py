"""Unit tests for the centralised DAS generator."""

import pytest

from repro.core import check_strong_das, check_weak_das, is_strong_das
from repro.das import centralized_das_schedule
from repro.errors import ProtocolError
from repro.topology import (
    GridTopology,
    LineTopology,
    RingTopology,
    random_geometric_topology,
)


class TestGeneratorValidity:
    @pytest.mark.parametrize(
        "topology",
        [
            LineTopology(6),
            RingTopology(9),
            GridTopology(5),
            GridTopology(7),
        ],
        ids=lambda t: t.name,
    )
    def test_strong_das_on_standard_topologies(self, topology):
        for seed in range(5):
            schedule = centralized_das_schedule(topology, seed=seed)
            result = check_strong_das(topology, schedule)
            assert result.ok, result.summary()

    def test_strong_das_on_random_geometric(self):
        topo = random_geometric_topology(
            30, area_side=45, communication_range=14, seed=11
        )
        schedule = centralized_das_schedule(topo, seed=0)
        assert check_strong_das(topo, schedule).ok

    def test_every_node_scheduled(self, grid5):
        schedule = centralized_das_schedule(grid5, seed=1)
        assert schedule.covers(grid5)

    def test_sink_has_top_slot(self, grid5):
        schedule = centralized_das_schedule(grid5, seed=1)
        assert schedule.sink_slot == max(schedule.slots().values())

    def test_parents_form_tree_toward_sink(self, grid5):
        schedule = centralized_das_schedule(grid5, seed=2)
        for node in grid5.nodes:
            if node == grid5.sink:
                assert schedule.parent_of(node) is None
                continue
            parent = schedule.parent_of(node)
            assert parent is not None
            assert grid5.are_linked(node, parent)
            assert grid5.sink_distance(parent) < grid5.sink_distance(node)

    def test_slots_fit_default_frame_on_paper_grids(self):
        # Even the 21x21 grid stays within the 100-slot budget.
        from repro.topology import paper_grid

        schedule = centralized_das_schedule(paper_grid(21), seed=0)
        values = schedule.slots().values()
        assert min(values) >= 1
        assert max(values) <= 100


class TestDeterminism:
    def test_same_seed_same_schedule(self, grid5):
        a = centralized_das_schedule(grid5, seed=123)
        b = centralized_das_schedule(grid5, seed=123)
        assert a == b

    def test_different_seeds_differ(self, grid7):
        a = centralized_das_schedule(grid7, seed=1)
        b = centralized_das_schedule(grid7, seed=2)
        assert a != b

    def test_jitter_free_is_canonical(self, grid5):
        a = centralized_das_schedule(grid5, jitter=False)
        b = centralized_das_schedule(grid5, jitter=False, seed=99)
        assert a == b  # seed ignored without jitter


class TestVariance:
    def test_seeds_spread_attacker_basins(self):
        """The slot-gradient endpoint should vary across seeds — this is
        the run-to-run variance that makes capture a ratio, not a bit."""
        grid = GridTopology(7)
        endpoints = set()
        for seed in range(12):
            schedule = centralized_das_schedule(grid, seed=seed)
            cur = grid.sink
            for _ in range(40):
                nbrs = [m for m in grid.neighbours(cur) if m != grid.sink]
                nxt = min(nbrs, key=lambda m: (schedule.slot_of(m), m))
                if cur != grid.sink and schedule.slot_of(nxt) >= schedule.slot_of(cur):
                    break
                cur = nxt
            endpoints.add(cur)
        assert len(endpoints) >= 3


class TestFailureModes:
    def test_repair_budget_exhaustion_raises(self, grid5):
        with pytest.raises(ProtocolError, match="did not converge"):
            centralized_das_schedule(grid5, seed=0, max_repair_passes=1)
