"""Determinism and lifecycle tests for the parallel experiment engine.

The contract under test: a parallel seed sweep is *bit-identical* to a
serial sweep of the same configuration — same per-run results in the
same (seed) order, same aggregated stats — and the counting-only trace
mode changes no outcome, only what the recorder retains.
"""

from __future__ import annotations

import pickle
from dataclasses import asdict

import pytest

from repro.app import run_operational_phase
from repro.das import centralized_das_schedule
from repro.errors import ConfigurationError
from repro.experiments import (
    MIN_NODE_RUNS_FOR_POOL,
    ExperimentConfig,
    ExperimentRunner,
    ParallelExperimentRunner,
    default_workers,
    make_runner,
    plan_workers,
    seed_chunks,
)
from repro.experiments import parallel as parallel_module
from repro.simulator import ATTACKER_MOVE, CAPTURE, CasinoLabNoise


class TestSeedChunks:
    def test_contiguous_and_ordered(self):
        assert seed_chunks(list(range(10)), 3) == [
            (0, 1, 2, 3),
            (4, 5, 6),
            (7, 8, 9),
        ]

    def test_more_tasks_than_seeds(self):
        assert seed_chunks([7, 8], 5) == [(7,), (8,)]

    def test_empty(self):
        assert seed_chunks([], 4) == []

    def test_flatten_restores_order(self):
        seeds = list(range(23))
        chunks = seed_chunks(seeds, 7)
        assert [s for chunk in chunks for s in chunk] == seeds

    def test_zero_tasks_rejected(self):
        with pytest.raises(ConfigurationError):
            seed_chunks([1], 0)


class TestMakeRunner:
    def test_serial_by_default(self, grid5):
        assert type(make_runner(grid5)) is ExperimentRunner
        assert type(make_runner(grid5, 1)) is ExperimentRunner

    def test_parallel_for_multiple_workers(self, grid5):
        # force_parallel bypasses the worker policy (which would pick
        # the serial engine on a single-core host).
        with make_runner(grid5, 2, force_parallel=True) as runner:
            assert isinstance(runner, ParallelExperimentRunner)
            assert runner.workers == 2

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_zero_workers_means_one_per_cpu(self, grid5):
        """The CLI convention holds at the library layer too."""
        assert ParallelExperimentRunner(grid5, workers=0).workers == default_workers()
        runner = make_runner(grid5, 0)
        if default_workers() == 1:
            assert type(runner) is ExperimentRunner
        else:
            assert isinstance(runner, ParallelExperimentRunner)
            runner.close()

    def test_invalid_worker_count_rejected(self, grid5):
        with pytest.raises(ConfigurationError):
            ParallelExperimentRunner(grid5, workers=-1)
        with pytest.raises(ConfigurationError):
            ParallelExperimentRunner(grid5, workers=2, chunks_per_worker=0)


class TestWorkerPolicy:
    """plan_workers: fall back to serial where a pool cannot win
    (the bench's scenario_churn regression: 0.57x with 4 workers on a
    1-core container)."""

    def test_serial_requests_stay_serial(self, grid5):
        assert plan_workers(None) == 1
        assert plan_workers(1) == 1

    def test_capped_at_usable_cores(self, grid5, monkeypatch):
        monkeypatch.setattr(parallel_module, "default_workers", lambda: 2)
        assert plan_workers(8) == 2

    def test_single_core_falls_back_to_serial(self, grid5, monkeypatch):
        monkeypatch.setattr(parallel_module, "default_workers", lambda: 1)
        assert plan_workers(4) == 1
        assert type(make_runner(grid5, 4)) is ExperimentRunner

    def test_tiny_sweep_falls_back_to_serial(self, grid5, monkeypatch):
        monkeypatch.setattr(parallel_module, "default_workers", lambda: 8)
        # 2 repeats x 25 nodes is far below the dispatch threshold.
        assert plan_workers(4, repeats=2, topology=grid5) == 1
        big_enough = MIN_NODE_RUNS_FOR_POOL // grid5.num_nodes + 1
        assert plan_workers(4, repeats=big_enough, topology=grid5) == 4

    def test_force_parallel_is_verbatim(self, grid5, monkeypatch):
        monkeypatch.setattr(parallel_module, "default_workers", lambda: 1)
        assert plan_workers(4, repeats=1, topology=grid5, force_parallel=True) == 4
        runner = make_runner(grid5, 3, repeats=1, force_parallel=True)
        assert isinstance(runner, ParallelExperimentRunner)
        assert runner.workers == 3

    def test_policy_choice_never_changes_results(self, grid5):
        """A sweep the policy would serialize equals a forced-pool sweep."""
        cfg = ExperimentConfig(repeats=3, noise="casino")
        with make_runner(grid5, 2, repeats=3) as policy_runner:
            policy = policy_runner.run(cfg)
        with make_runner(grid5, 2, force_parallel=True) as forced_runner:
            forced = forced_runner.run(cfg)
        assert policy.results == forced.results
        assert asdict(policy.stats) == asdict(forced.stats)


class TestSerialParallelIdentity:
    """The determinism regression: serial and parallel sweeps agree."""

    @pytest.mark.parametrize("algorithm,kwargs", [
        ("protectionless", {}),
        ("slp", {"search_distance": 2}),
    ])
    def test_bit_identical_outcomes(self, grid5, algorithm, kwargs):
        cfg = ExperimentConfig(
            algorithm=algorithm, repeats=5, base_seed=11, noise="casino", **kwargs
        )
        serial = ExperimentRunner(grid5).run(cfg)
        with ParallelExperimentRunner(grid5, workers=2) as runner:
            parallel = runner.run(cfg)
        assert serial.results == parallel.results
        assert asdict(serial.stats) == asdict(parallel.stats)

    def test_single_worker_degenerates_to_serial(self, grid5):
        cfg = ExperimentConfig(repeats=3, noise="ideal")
        serial = ExperimentRunner(grid5).run(cfg)
        runner = ParallelExperimentRunner(grid5, workers=1)
        assert runner.run(cfg).results == serial.results
        assert runner._executor is None  # no pool was ever spawned

    def test_pool_reuse_across_runs(self, grid5):
        with ParallelExperimentRunner(grid5, workers=2) as runner:
            a = runner.run(ExperimentConfig(repeats=4, noise="ideal"))
            executor = runner._executor
            b = runner.run(ExperimentConfig(repeats=4, noise="ideal"))
            assert runner._executor is executor
        assert runner._executor is None
        assert a.results == b.results

    def test_close_is_idempotent(self, grid5):
        runner = ParallelExperimentRunner(grid5, workers=2)
        runner.close()
        runner.close()

    def test_external_executor_is_shared_and_survives_close(self, grid5, grid7):
        """One pool can serve runners for several topologies (the
        figure-level pattern); close() must not shut it down."""
        from concurrent.futures import ProcessPoolExecutor

        cfg = ExperimentConfig(repeats=4, noise="ideal")
        serial5 = ExperimentRunner(grid5).run(cfg)
        serial7 = ExperimentRunner(grid7).run(cfg)
        with ProcessPoolExecutor(max_workers=2) as pool:
            for grid, serial in ((grid5, serial5), (grid7, serial7)):
                runner = ParallelExperimentRunner(grid, workers=2, executor=pool)
                assert runner.run(cfg).results == serial.results
                runner.close()  # must leave the external pool running
            # The pool still works after both runners closed.
            again = ParallelExperimentRunner(grid5, workers=2, executor=pool)
            assert again.run(cfg).results == serial5.results


class TestTopologyPickleDeterminism:
    """A topology shipped to a worker must behave like a fresh one.

    Pickling a frozenset does not preserve its iteration order, so the
    topology excludes its derived caches from its pickled state; the
    schedule tie-breaks that iterate 2-hop sets then match in-process
    construction exactly.
    """

    def test_schedule_identical_after_pickle(self, grid7):
        # Populate the lazy caches the way a sweep would.
        for node in grid7.nodes:
            grid7.collision_neighbourhood(node)
            grid7.neighbours(node)
        clone = pickle.loads(pickle.dumps(grid7))
        for seed in range(3):
            original = centralized_das_schedule(grid7, seed=seed)
            restored = centralized_das_schedule(clone, seed=seed)
            assert original.slots() == restored.slots()

    def test_pickled_state_drops_caches(self, grid5):
        grid5.collision_neighbourhood(0)
        grid5.sink_distance(0)
        clone = pickle.loads(pickle.dumps(grid5))
        assert clone._two_hop == {}
        assert clone._neighbour_cache == {}
        assert clone._metrics is None
        # ... and the clone still answers queries correctly.
        assert clone.collision_neighbourhood(0) == grid5.collision_neighbourhood(0)


class TestTraceModeDeterminism:
    """Counting-only tracing must not change a run's outcome."""

    def test_counting_only_vs_full_trace(self, grid5, grid5_schedule):
        noise = CasinoLabNoise()
        counting = run_operational_phase(
            grid5, grid5_schedule, seed=3, noise=noise,
        )
        noise_full = CasinoLabNoise()
        full = run_operational_phase(
            grid5, grid5_schedule, seed=3, noise=noise_full, trace_kinds=None,
        )
        assert counting == full

    def test_outcome_identical_across_all_trace_modes(self, grid5, grid5_schedule):
        results = [
            run_operational_phase(grid5, grid5_schedule, seed=7, trace_kinds=kinds)
            for kinds in (frozenset(), None, frozenset({ATTACKER_MOVE, CAPTURE}))
        ]
        assert results[0] == results[1] == results[2]

    def test_per_kind_totals_identical_across_trace_modes(self, line5):
        """Same simulation, different trace modes: identical counts()."""
        from repro.simulator import BernoulliNoise, Simulator

        def run(kinds):
            sim = Simulator(line5, noise=BernoulliNoise(0.3), seed=5, trace_kinds=kinds)
            from repro.simulator import Process

            class Chatter(Process):
                def start(self):
                    self.set_timer("tick", 0.1)

                def on_timer(self, name, time):
                    self.broadcast(("hello", self.node))
                    if time < 2.0:
                        self.set_timer("tick", 0.25)

            for node in line5.nodes:
                sim.register_process(Chatter(node))
            sim.run(until=5.0)
            return sim.trace.counts(), len(sim.trace.records)

        full_counts, full_records = run(None)
        counting_counts, counting_records = run(frozenset())
        assert counting_counts == full_counts
        assert counting_records == 0
        assert full_records == sum(full_counts.values())
