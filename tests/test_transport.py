"""The multi-host worker transport: lease-based shards, network chaos,
partition-tolerant resume.

The contracts under test, in increasing order of violence:

* the lease board grants shards once, dedups seed uploads by
  ``(job, shard, seed)``, revokes stalled leases blame-free, and a
  revoked lease can never double-count a seed;
* the worker transport retries transport-level failures with bounded
  backoff and never retries an HTTP answer; the hardened
  ``ServiceClient`` does the same;
* a job executed by remote workers ends byte-identical to an
  uninterrupted serial run — including under dropped requests,
  duplicated uploads, a partitioned worker, a SIGKILLed worker
  subprocess, and graceful SIGTERM drain;
* ``service gc`` evicts result blobs counter-ordered, keeps records
  for dedup, and the result endpoint answers 410 for evicted reports;
* ``JobStore.recover`` stays correct against live claims, and the
  server-side checkpoint append tolerates a torn trailing line.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.cli import main
from repro.experiments import (
    ExperimentRunner,
    FaultPlan,
    RetryPolicy,
    SweepCheckpoint,
    result_to_dict,
)
from repro.scenarios import ScenarioRunner, get_scenario
from repro.service import (
    DONE,
    QUEUED,
    RUNNING,
    JobStore,
    RemoteShardScheduler,
    ServiceClient,
    ServiceError,
    ShardBoard,
    ShardWorker,
    SweepService,
    TransportError,
    WorkerTransport,
    job_key,
    lower_job,
    worker_main,
)

SEEDS = 5
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.002)


@pytest.fixture(scope="module")
def direct():
    """The uninterrupted serial run every remote path must reproduce."""
    return ScenarioRunner().run("paper-baseline", seeds=SEEDS)


@pytest.fixture(scope="module")
def result_docs(direct):
    """Valid per-seed result documents for board-level tests."""
    return {
        seed: result_to_dict(result)
        for seed, result in enumerate(direct.results)
    }


def start_remote_service(tmp_path, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("shard_timeout", 20.0)
    kwargs.setdefault("shards_per_job", 2)
    kwargs.setdefault("poll_interval", 0.01)
    return SweepService(
        tmp_path / "svc", port=0, remote=True, **kwargs
    ).start()


def start_worker_thread(url, worker_id, **kwargs):
    kwargs.setdefault("poll_interval", 0.02)
    kwargs.setdefault("retry", FAST_RETRY)
    worker = ShardWorker(url, worker_id=worker_id, **kwargs)
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return worker, thread


class StopAfterFirstUpload(ShardWorker):
    """A worker that drains itself the moment its first upload lands —
    the deterministic stand-in for "SIGTERM arrived mid-shard" (a seed
    runs in ~10ms, so wall-clock racing would be flaky)."""

    def _upload(self, job_id, shard_id, seed, document, plan):
        accepted = super()._upload(job_id, shard_id, seed, document, plan)
        self.request_stop()
        return accepted


def wait_for(predicate, timeout=60.0, poll=0.02):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition not reached in time"
        time.sleep(poll)


def make_board(tmp_path, spec=None, seeds=SEEDS, retry=FAST_RETRY,
               shards=None, done=()):
    """A board with one open job over real (topology, config) lowering."""
    spec = spec if spec is not None else get_scenario("paper-baseline")
    topology, config = lower_job(spec, repeats=seeds)
    checkpoint = SweepCheckpoint(tmp_path / "checkpoints")
    key = checkpoint.key_for(topology, config)
    job_id = job_key(spec, config.repeats, config.base_seed, None, None)
    board = ShardBoard(checkpoint)
    board.open_job(
        job_id, spec.to_json(indent=None), config.repeats, config.base_seed,
        None, None, key, retry,
        shards if shards is not None else [tuple(range(seeds))],
        set(done),
    )
    return board, job_id, checkpoint, key


# ----------------------------------------------------------------------
# FaultPlan network chaos kinds
# ----------------------------------------------------------------------
class TestNetworkFaultPlan:
    def test_env_round_trip_includes_network_kinds(self, tmp_path):
        plan = FaultPlan(
            drop_requests=(2,),
            delay_requests=(3,),
            duplicate_uploads=(1,),
            partition_worker=(4,),
            delay_seconds=0.01,
            partition_seconds=0.5,
            marker_dir=str(tmp_path),
        )
        assert FaultPlan.from_env(plan.to_env()) == plan

    def test_drop_and_delay_fire_once_per_ordinal(self, tmp_path):
        plan = FaultPlan(
            drop_requests=(2,), delay_requests=(2,), marker_dir=str(tmp_path)
        )
        assert not plan.transport_drop(1)
        assert plan.transport_drop(2)
        assert not plan.transport_drop(2)  # once only
        assert plan.transport_delay(2)
        assert not plan.transport_delay(2)

    def test_duplicate_upload_is_unconditional(self, tmp_path):
        plan = FaultPlan(duplicate_uploads=(3,))
        assert plan.duplicate_upload(3)
        assert plan.duplicate_upload(3)  # every time
        assert not plan.duplicate_upload(4)

    def test_partition_fires_once_per_seed(self, tmp_path):
        plan = FaultPlan(partition_worker=(1,), marker_dir=str(tmp_path))
        assert plan.partition_before_upload(1)
        assert not plan.partition_before_upload(1)
        assert not plan.partition_before_upload(0)

    def test_once_only_network_kinds_need_marker_dir(self):
        for kind in ("drop_requests", "delay_requests", "partition_worker"):
            with pytest.raises(ValueError):
                FaultPlan(**{kind: (1,)})
        FaultPlan(duplicate_uploads=(1,))  # unconditional: no marker needed


class TestSweepKeyStability:
    def test_every_scenario_keys_identically_after_json_round_trip(
        self, tmp_path
    ):
        """The checkpoint key is derived independently by the scheduler
        and by each worker from the job's spec JSON; any value whose
        repr leaks object identity (a decision function without
        ``__repr__`` once did) silently splits the sweep into two
        stores and the job can never finish."""
        from repro.scenarios import scenario_names

        checkpoint = SweepCheckpoint(tmp_path / "c")
        for name in scenario_names():
            spec = get_scenario(name)
            round_tripped = type(spec).from_json(spec.to_json(indent=None))
            t1, c1 = lower_job(spec, repeats=2)
            t2, c2 = lower_job(round_tripped, repeats=2)
            assert checkpoint.key_for(t1, c1) == checkpoint.key_for(t2, c2), name


# ----------------------------------------------------------------------
# The lease board (no HTTP involved)
# ----------------------------------------------------------------------
class TestShardBoard:
    def test_claim_filters_done_seeds_and_leases_once(self, tmp_path):
        board, job_id, _, _ = make_board(tmp_path, done=(0, 1))
        claim = board.claim("w1")
        assert claim["job"] == job_id
        assert claim["seeds"] == [2, 3, 4]  # durable seeds never re-leased
        assert board.claim("w2") is None  # nothing else to hand out

    def test_upload_is_dedup_by_seed_and_renews_lease(
        self, tmp_path, result_docs
    ):
        board, job_id, checkpoint, key = make_board(tmp_path)
        claim = board.claim("w1")
        shard = claim["shard"]
        first = board.record_seed(job_id, shard, "w1", 0, result_docs[0])
        assert first == {
            "accepted": True, "known": True, "duplicate": False, "stale": False,
        }
        replay = board.record_seed(job_id, shard, "w1", 0, result_docs[0])
        assert replay["duplicate"] and not replay["accepted"]
        # The durable store holds exactly one entry for the seed.
        assert list(checkpoint.load(key)) == [0]

    def test_revoked_lease_never_double_counts_a_seed(
        self, tmp_path, result_docs
    ):
        """The acceptance-criteria invariant, stated directly: a worker
        whose lease was revoked uploads late; the seed is counted once,
        and the re-leased shard only covers what is still missing."""
        board, job_id, checkpoint, key = make_board(tmp_path)
        stale_claim = board.claim("w1")
        shard = stale_claim["shard"]
        board.record_seed(job_id, shard, "w1", 0, result_docs[0])
        # The lease stalls; the supervisor revokes it blame-free.
        future = time.monotonic() + 60.0
        assert board.revoke_stale(0.0, now=future) == 1
        fresh_claim = board.claim("w2", now=future)
        assert fresh_claim["seeds"] == [1, 2, 3, 4]  # seed 0 not re-run
        assert fresh_claim["attempt"] == stale_claim["attempt"]  # blame-free
        # The partitioned-away worker's late traffic arrives now.
        late = board.record_seed(job_id, shard, "w1", 1, result_docs[1])
        assert late["accepted"] and late["stale"]  # durable, but no renewal
        again = board.record_seed(
            job_id, fresh_claim["shard"], "w2", 1, result_docs[1]
        )
        assert again["duplicate"]
        assert sorted(checkpoint.load(key)) == [0, 1]  # once each, ever

    def test_fail_walks_retry_bisect_quarantine_ladder(self, tmp_path):
        retry = RetryPolicy(max_attempts=2, base_delay=0.001, max_delay=0.001)
        board, job_id, _, _ = make_board(tmp_path, retry=retry)
        # Attempt 1 fails -> requeued with backoff, attempt 2.
        claim = board.claim("w1")
        assert claim["attempt"] == 1
        board.fail_shard(job_id, claim["shard"], "w1", "boom")

        def claim_when_ready():  # requeued shards back off briefly
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                granted = board.claim("w1")
                if granted is not None:
                    return granted
                time.sleep(0.002)
            raise AssertionError("no shard became claimable")

        claim = claim_when_ready()
        assert claim["attempt"] == 2
        # Attempt 2 fails -> out of attempts, bisected into halves.
        board.fail_shard(job_id, claim["shard"], "w1", "boom")
        left = claim_when_ready()
        right = claim_when_ready()
        assert left["attempt"] == right["attempt"] == 1
        assert sorted(left["seeds"] + right["seeds"]) == list(range(SEEDS))
        # Keep the right half leased; grind the left down to quarantine.
        poison = set(left["seeds"])
        board.fail_shard(job_id, left["shard"], "w1", "boom")
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            claim = board.claim("w1")
            if claim is None:
                if board.progress(job_id)["pending_shards"] == 0:
                    break  # everything poisonous is quarantined
                time.sleep(0.002)  # a requeued shard still backing off
                continue
            assert set(claim["seeds"]) <= poison  # right half untouched
            board.fail_shard(job_id, claim["shard"], "w1", "boom")
        failures = board.take_failures(job_id)
        assert sorted(f.seed for f in failures) == sorted(poison)
        assert all(f.kind == "error" and f.error == "boom" for f in failures)

    def test_release_requeues_blame_free(self, tmp_path, result_docs):
        board, job_id, _, _ = make_board(tmp_path)
        claim = board.claim("w1")
        board.record_seed(job_id, claim["shard"], "w1", 0, result_docs[0])
        reply = board.release_shard(job_id, claim["shard"], "w1")
        assert reply == {"known": True, "stale": False}
        again = board.claim("w2")
        assert again["seeds"] == [1, 2, 3, 4]
        assert again["attempt"] == claim["attempt"]  # no blame

    def test_closed_job_reports_unknown(self, tmp_path, result_docs):
        board, job_id, _, _ = make_board(tmp_path)
        claim = board.claim("w1")
        board.close_job(job_id)
        reply = board.record_seed(
            job_id, claim["shard"], "w1", 0, result_docs[0]
        )
        assert reply == {"accepted": False, "known": False}
        assert board.claim("w1") is None

    def test_job_finishes_when_all_seeds_durable(self, tmp_path, result_docs):
        board, job_id, _, _ = make_board(tmp_path)
        claim = board.claim("w1")
        assert not board.job_finished(job_id)
        for seed in claim["seeds"]:
            board.record_seed(job_id, claim["shard"], "w1", seed, result_docs[seed])
        assert board.job_finished(job_id)
        # The final upload auto-released the lease; done is a no-op.
        assert board.complete_shard(job_id, claim["shard"], "w1")["known"]

    def test_malformed_result_is_rejected_without_poisoning(self, tmp_path):
        board, job_id, _, checkpoint_key = make_board(tmp_path)
        claim = board.claim("w1")
        with pytest.raises((KeyError, TypeError, ValueError)):
            board.record_seed(
                job_id, claim["shard"], "w1", 0, {"captured": "garbage"}
            )
        assert not board.job_finished(job_id)


# ----------------------------------------------------------------------
# The worker transport (retry/backoff, chaos injection)
# ----------------------------------------------------------------------
class TestWorkerTransport:
    def test_connection_failures_retry_with_backoff_then_raise(self):
        sleeps = []
        transport = WorkerTransport(
            "http://127.0.0.1:9",  # discard port: nothing listens
            timeout=0.2,
            retry=RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.002),
            sleep=sleeps.append,
        )
        with pytest.raises(TransportError) as excinfo:
            transport.post("/shards/claim", {"worker": "w"})
        assert excinfo.value.status == 0
        assert len(sleeps) == 2  # attempts 1 and 2 backed off; 3rd raised

    def test_http_answers_are_never_retried(self, tmp_path):
        service = SweepService(tmp_path / "svc", port=0).start()  # not remote
        try:
            sleeps = []
            transport = WorkerTransport(
                service.url, timeout=5.0, retry=FAST_RETRY, sleep=sleeps.append
            )
            with pytest.raises(TransportError) as excinfo:
                transport.post("/shards/claim", {"worker": "w"})
            assert excinfo.value.status == 409  # non-remote service says so
            assert sleeps == []  # an answer is not an outage
        finally:
            service.drain()

    def test_partition_fails_client_side(self):
        transport = WorkerTransport(
            "http://127.0.0.1:9", retry=FAST_RETRY, sleep=lambda _: None
        )
        transport.partition(30.0)
        started = time.monotonic()
        with pytest.raises(TransportError):
            transport.post("/healthz", {})
        # Partitioned requests never touch a socket (no connect timeout).
        assert time.monotonic() - started < 1.0

    def test_injected_drop_consumes_retry_budget_once(self, tmp_path):
        plan = FaultPlan(drop_requests=(1,), marker_dir=str(tmp_path / "m"))
        service = start_remote_service(tmp_path)
        try:
            with plan.activated():
                sleeps = []
                transport = WorkerTransport(
                    service.url, timeout=5.0, retry=FAST_RETRY,
                    sleep=sleeps.append,
                )
                reply = transport.post("/shards/claim", {"worker": "w"})
            assert reply == {"shard": None}  # retried through the drop
            assert len(sleeps) == 1
        finally:
            service.drain()


# ----------------------------------------------------------------------
# The hardened ServiceClient
# ----------------------------------------------------------------------
class TestServiceClientHardening:
    def test_connection_errors_retry_then_surface(self):
        from repro.service.client import _request_raw

        sleeps = []
        with pytest.raises(ServiceError) as excinfo:
            _request_raw(
                "http://127.0.0.1:9/healthz",
                timeout=0.2,
                retries=3,
                backoff=0.001,
                sleep=sleeps.append,
            )
        assert excinfo.value.status == 0
        assert sleeps == [0.001, 0.002]  # bounded exponential backoff

    def test_http_errors_surface_without_retry(self, tmp_path):
        service = SweepService(tmp_path / "svc", port=0).start()
        try:
            client = ServiceClient(service.url, retries=3, backoff=0.001)
            with pytest.raises(ServiceError) as excinfo:
                client.status("0" * 64)
            assert excinfo.value.status == 404
        finally:
            service.drain()

    def test_fail_fast_configuration(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.2, retries=1)
        started = time.monotonic()
        with pytest.raises(ServiceError):
            client.health()
        assert time.monotonic() - started < 2.0


# ----------------------------------------------------------------------
# Remote end-to-end: byte identity under chaos
# ----------------------------------------------------------------------
class TestRemoteByteIdentity:
    def submit_and_finish(self, service, n_workers=1, timeout=120.0, **worker_kwargs):
        client = ServiceClient(service.url)
        reply = client.submit({"scenario": "paper-baseline", "seeds": SEEDS})
        workers = [
            start_worker_thread(service.url, f"w{i}", **worker_kwargs)
            for i in range(n_workers)
        ]
        try:
            final = client.wait(reply["job"], timeout=timeout)
            return reply["job"], final, client.result_text(reply["job"])
        finally:
            for worker, thread in workers:
                worker.request_stop()
                thread.join(timeout=10.0)

    def test_clean_remote_run_is_byte_identical(self, tmp_path, direct):
        service = start_remote_service(tmp_path)
        try:
            _, final, text = self.submit_and_finish(service)
            assert final["state"] == "done"
            assert text == direct.to_json() + "\n"
        finally:
            service.drain()

    def test_duplicated_uploads_are_byte_identical(self, tmp_path, direct):
        """Every seed's upload is sent twice; the server's
        (job, shard, seed) dedup makes each replay harmless."""
        plan = FaultPlan(duplicate_uploads=tuple(range(SEEDS)))
        service = start_remote_service(tmp_path)
        try:
            with plan.activated():
                job_id, final, text = self.submit_and_finish(service)
            assert final["state"] == "done"
            assert text == direct.to_json() + "\n"
            # The chaos really fired: the server saw and absorbed dups.
            counters = ServiceClient(service.url).status(job_id)[
                "metrics"
            ]["counters"]
            assert counters.get("service.uploads.duplicate", 0) >= SEEDS
        finally:
            service.drain()

    def test_dropped_and_delayed_requests_are_byte_identical(
        self, tmp_path, direct
    ):
        """Requests 2 and 4 of the worker's transport are dropped, 3 is
        delayed; bounded retry absorbs all of it."""
        plan = FaultPlan(
            drop_requests=(2, 4),
            delay_requests=(3,),
            delay_seconds=0.05,
            marker_dir=str(tmp_path / "markers"),
        )
        service = start_remote_service(tmp_path)
        try:
            with plan.activated():
                _, final, text = self.submit_and_finish(service)
            assert final["state"] == "done"
            assert text == direct.to_json() + "\n"
        finally:
            service.drain()
        assert (tmp_path / "markers" / "drop-2").exists()
        assert (tmp_path / "markers" / "delay-3").exists()

    def test_partitioned_worker_mid_shard_is_byte_identical(
        self, tmp_path, direct
    ):
        """Worker w0 is cut off right before uploading seed 1: its lease
        stalls, is revoked blame-free, and w1 finishes the remainder;
        when the partition heals, w0's late traffic dedups away."""
        plan = FaultPlan(
            partition_worker=(1,),
            partition_seconds=1.5,
            marker_dir=str(tmp_path / "markers"),
        )
        service = start_remote_service(
            tmp_path, shard_timeout=0.3, shards_per_job=1
        )
        try:
            with plan.activated():
                client = ServiceClient(service.url)
                reply = client.submit(
                    {"scenario": "paper-baseline", "seeds": SEEDS}
                )
                w0, t0 = start_worker_thread(
                    service.url, "w0", poll_interval=0.02, retry=FAST_RETRY
                )
                # Only w0 runs until the partition has certainly fired.
                wait_for(lambda: (tmp_path / "markers" / "partition-1").exists())
                w1, t1 = start_worker_thread(
                    service.url, "w1", poll_interval=0.02, retry=FAST_RETRY
                )
                final = client.wait(reply["job"], timeout=120.0)
                text = client.result_text(reply["job"])
                for worker, thread in ((w0, t0), (w1, t1)):
                    worker.request_stop()
                    thread.join(timeout=10.0)
            assert final["state"] == "done"
            assert text == direct.to_json() + "\n"
        finally:
            service.drain()

    def test_sigterm_drain_hands_the_lease_back(self, tmp_path, direct):
        """A worker stopped mid-shard (the SIGTERM handler calls
        ``request_stop``) uploads what it finished, releases the lease,
        and a second worker completes the job."""
        service = start_remote_service(tmp_path, shards_per_job=1)
        try:
            client = ServiceClient(service.url)
            reply = client.submit({"scenario": "paper-baseline", "seeds": SEEDS})
            w0 = StopAfterFirstUpload(
                service.url, worker_id="w0", poll_interval=0.02,
                retry=FAST_RETRY,
            )
            t0 = threading.Thread(target=w0.run, daemon=True)
            t0.start()
            t0.join(timeout=30.0)
            assert not t0.is_alive()
            # One seed landed, the rest was released: the job is not
            # done, and nothing is charged against the shard.
            assert client.status(reply["job"])["state"] == "running"
            w1, t1 = start_worker_thread(service.url, "w1")
            final = client.wait(reply["job"], timeout=120.0)
            text = client.result_text(reply["job"])
            w1.request_stop()
            t1.join(timeout=10.0)
            assert final["state"] == "done"
            assert text == direct.to_json() + "\n"
        finally:
            service.drain()

    def test_sigkilled_worker_subprocess_is_byte_identical(
        self, tmp_path, direct
    ):
        """The literal drill: a real worker process is SIGKILLed while
        wedged mid-shard; the lease times out, a fresh worker finishes,
        and the report cannot tell the story apart from a clean run."""
        plan = FaultPlan(
            hang_seeds=(2,),
            hang_seconds=120.0,
            marker_dir=str(tmp_path / "markers"),
        )
        service = start_remote_service(
            tmp_path, shard_timeout=0.5, shards_per_job=1
        )
        try:
            with plan.activated():
                client = ServiceClient(service.url)
                reply = client.submit(
                    {"scenario": "paper-baseline", "seeds": SEEDS}
                )
                context = multiprocessing.get_context("spawn")
                victim = context.Process(
                    target=worker_main,
                    args=(service.url,),
                    kwargs={"worker_id": "victim", "poll_interval": 0.02},
                    daemon=True,
                )
                victim.start()
                # The marker appears the instant the worker starts its
                # injected hang inside the shard — provably mid-shard.
                wait_for(
                    lambda: (tmp_path / "markers" / "hang-2").exists(),
                    timeout=90.0,
                )
                victim.kill()  # SIGKILL: no drain, no release, nothing
                victim.join(timeout=10.0)
                # The in-process finisher skips the hang (marker exists).
                w1, t1 = start_worker_thread(service.url, "rescuer")
                final = client.wait(reply["job"], timeout=120.0)
                text = client.result_text(reply["job"])
                w1.request_stop()
                t1.join(timeout=10.0)
            assert final["state"] == "done"
            assert text == direct.to_json() + "\n"
        finally:
            service.drain()

    def test_remote_resume_after_service_restart(self, tmp_path, direct):
        """Seeds uploaded before a service restart are never re-run:
        the checkpoint survives, recovery re-queues the job, and the
        new instance's merge serves the same bytes."""
        service = start_remote_service(tmp_path, shards_per_job=1)
        client = ServiceClient(service.url)
        reply = client.submit({"scenario": "paper-baseline", "seeds": SEEDS})
        w0 = StopAfterFirstUpload(
            service.url, worker_id="w0", poll_interval=0.02, retry=FAST_RETRY
        )
        t0 = threading.Thread(target=w0.run, daemon=True)
        t0.start()
        t0.join(timeout=30.0)
        service.drain()
        assert service.store.get(reply["job"]).state == QUEUED  # re-queued
        restarted = start_remote_service(tmp_path)
        try:
            client = ServiceClient(restarted.url)
            w1, t1 = start_worker_thread(restarted.url, "w1")
            final = client.wait(reply["job"], timeout=120.0)
            text = client.result_text(reply["job"])
            w1.request_stop()
            t1.join(timeout=10.0)
            assert final["state"] == "done"
            assert text == direct.to_json() + "\n"
        finally:
            restarted.drain()


# ----------------------------------------------------------------------
# Concurrent job dispatch (--max-jobs)
# ----------------------------------------------------------------------
class TestMaxJobs:
    def test_two_jobs_run_concurrently_and_both_finish_clean(self, tmp_path):
        service = SweepService(
            tmp_path / "svc", port=0, remote=True, max_jobs=2,
            retry=FAST_RETRY, shard_timeout=20.0, shards_per_job=2,
            poll_interval=0.01,
        ).start()
        try:
            client = ServiceClient(service.url)
            first = client.submit({"scenario": "paper-baseline", "seeds": 3})
            second = client.submit(
                {"scenario": "paper-baseline", "seeds": 3, "base_seed": 100}
            )
            # Both leave the queue before either finishes: concurrent.
            wait_for(
                lambda: [
                    r.state for r in service.store.list_jobs()
                ].count(RUNNING) == 2,
                timeout=30.0,
            )
            worker, thread = start_worker_thread(service.url, "w0")
            for reply, base in ((first, 0), (second, 100)):
                final = client.wait(reply["job"], timeout=120.0)
                assert final["state"] == "done"
                expected = ScenarioRunner().run(
                    "paper-baseline", seeds=3, base_seed=base
                )
                assert client.result_text(reply["job"]) == expected.to_json() + "\n"
            worker.request_stop()
            thread.join(timeout=10.0)
        finally:
            service.drain()

    def test_max_jobs_must_be_positive(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SweepService(tmp_path / "svc", max_jobs=0)


# ----------------------------------------------------------------------
# Job-store retention (service gc)
# ----------------------------------------------------------------------
class TestServiceGc:
    #: Distinct scenarios so each job owns a distinct checkpoint file
    #: (the sweep key canonicalises repeats/base_seed away).
    SCENARIOS = ("paper-baseline", "two-sources", "cautious-attacker")

    def finish_jobs(self, tmp_path, count):
        """Run `count` tiny jobs to completion through a local service."""
        service = SweepService(
            tmp_path / "svc", port=0, shard_workers=2, retry=FAST_RETRY
        ).start()
        try:
            client = ServiceClient(service.url)
            ids = []
            for i in range(count):
                reply = client.submit(
                    {"scenario": self.SCENARIOS[i], "seeds": 2}
                )
                ids.append(reply["job"])
            for job_id in ids:
                assert client.wait(job_id, timeout=120.0)["state"] == "done"
        finally:
            service.drain()
        return ids

    def test_gc_keeps_newest_and_preserves_records(self, tmp_path):
        ids = self.finish_jobs(tmp_path, 3)
        store = JobStore(tmp_path / "svc" / "jobs.sqlite")
        evicted = store.gc(keep=1)
        assert [r.job_id for r in evicted] == ids[:2][::-1]  # oldest evicted
        for record in evicted:
            assert record.result_json is not None  # pre-eviction snapshot
        survivors = {r.job_id: r for r in store.list_jobs()}
        assert survivors[ids[2]].result_json is not None
        for job_id in ids[:2]:
            record = survivors[job_id]
            assert record.state == DONE  # the record survives for dedup
            assert record.result_json is None
            assert record.describe()["evicted"] is True
        assert store.gc(keep=1) == []  # idempotent
        with pytest.raises(ValueError):
            store.gc(keep=-1)

    def test_evicted_result_is_410_and_resubmission_dedups(self, tmp_path):
        """The documented trade-off, end to end: after gc the record
        still dedups a resubmission, and the result endpoint says 410
        (gone), never 404 (unknown) or a recompute."""
        ids = self.finish_jobs(tmp_path, 2)
        JobStore(tmp_path / "svc" / "jobs.sqlite").gc(keep=1)
        service = SweepService(
            tmp_path / "svc", port=0, shard_workers=2, retry=FAST_RETRY
        ).start()
        try:
            client = ServiceClient(service.url)
            reply = client.submit(
                {"scenario": "paper-baseline", "seeds": 2, "base_seed": 0}
            )
            assert reply["created"] is False  # dedup across the gc
            assert reply["job"] == ids[0]
            with pytest.raises(ServiceError) as excinfo:
                client.result(ids[0])
            assert excinfo.value.status == 410
            assert client.status(ids[0])["evicted"] is True
        finally:
            service.drain()

    def test_gc_cli_prunes_checkpoints_too(self, tmp_path, capsys):
        ids = self.finish_jobs(tmp_path, 2)
        data_dir = tmp_path / "svc"
        checkpoints = list((data_dir / "checkpoints").glob("sweep-*.jsonl"))
        assert len(checkpoints) == 2
        assert main(
            ["service", "gc", "--data-dir", str(data_dir), "--keep", "1"]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert out == [ids[0]]  # the evicted id, printed for scripting
        remaining = list((data_dir / "checkpoints").glob("sweep-*.jsonl"))
        assert len(remaining) == 1  # the evicted job's seeds are gone

    def test_gc_cli_without_store_is_an_error(self, tmp_path, capsys):
        assert main(
            ["service", "gc", "--data-dir", str(tmp_path / "empty"), "--keep", "1"]
        ) == 2
        assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# JobStore.recover edge cases
# ----------------------------------------------------------------------
class TestRecoverEdgeCases:
    def make_jobs(self, tmp_path, count):
        store = JobStore(tmp_path / "jobs.sqlite")
        spec = get_scenario("paper-baseline")
        for i in range(count):
            from repro.service import JobRecord

            record = JobRecord(
                job_id=job_key(spec, 2, 1000 + i, None, None),
                spec_json=spec.to_json(indent=None),
                repeats=2,
                base_seed=1000 + i,
                kernel=None,
                setup_kernel=None,
                state=QUEUED,
            )
            store.submit(record)
        return store

    def test_recovery_racing_live_claims_loses_nothing(self, tmp_path):
        """`recover()` firing while claim threads are live must neither
        lose a job nor hand one out twice per requeue round: claims are
        atomic edges, recovery is one atomic UPDATE."""
        store = self.make_jobs(tmp_path, 8)
        claimed, errors = [], []
        lock = threading.Lock()

        def claimer():
            try:
                local = JobStore(tmp_path / "jobs.sqlite")
                while True:
                    job = local.claim_next()
                    if job is None:
                        break
                    with lock:
                        claimed.append(job.job_id)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        def recoverer():
            try:
                local = JobStore(tmp_path / "jobs.sqlite")
                for _ in range(3):
                    local.recover()
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=claimer) for _ in range(4)]
        threads.append(threading.Thread(target=recoverer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert errors == []
        # Every job ends accounted for: running (claimed and kept) or
        # queued (recovered after its claim); no job vanished.
        states = {r.job_id: r.state for r in store.list_jobs()}
        assert len(states) == 8
        assert set(states.values()) <= {QUEUED, RUNNING}
        assert set(claimed) == set(states)  # all 8 were claimed at least once
        # A final recover + drain claims each job exactly once.
        store.recover()
        final = set()
        while True:
            job = store.claim_next()
            if job is None:
                break
            assert job.job_id not in final  # atomic: never handed out twice
            final.add(job.job_id)
        assert final == set(states)

    def test_server_side_append_tolerates_torn_trailing_line(
        self, tmp_path, result_docs
    ):
        """A torn trailing line (the previous process died mid-write)
        must neither break the server-side append nor leak into the
        merge: load skips it, the appended seed lands cleanly."""
        board, job_id, checkpoint, key = make_board(tmp_path, done=())
        claim = board.claim("w1")
        board.record_seed(job_id, claim["shard"], "w1", 0, result_docs[0])
        # Tear the file the way a crash mid-append would.
        path = checkpoint.path_for(key)
        with path.open("a") as handle:
            handle.write('{"seed": 1, "result": {"cap')
        board.record_seed(job_id, claim["shard"], "w1", 2, result_docs[2])
        on_disk = checkpoint.load(key)
        assert sorted(on_disk) == [0, 2]  # torn line skipped, append clean
        # And a fresh board over the same store sees exactly that.
        board2, job2, _, _ = make_board(
            tmp_path, done=set(on_disk)
        )
        fresh = board2.claim("w2")
        assert fresh["seeds"] == [1, 3, 4]

    def test_dedup_after_gc_survives_recovery(self, tmp_path):
        """A gc'd terminal job resubmitted after a recover() round still
        dedups to the original record (content addressing is durable
        against both eviction and recovery)."""
        store = self.make_jobs(tmp_path, 1)
        record = store.list_jobs()[0]
        store.claim_next()
        store.transition(record.job_id, DONE, result_json="{}")
        assert store.gc(keep=0) != []
        assert store.recover() == 0  # terminal rows are not recovery's business
        again, created = store.submit(record)
        assert not created
        assert again.job_id == record.job_id
        assert again.state == DONE and again.result_json is None


# ----------------------------------------------------------------------
# The RemoteShardScheduler's own contract
# ----------------------------------------------------------------------
class TestRemoteShardScheduler:
    def test_validates_parameters(self, tmp_path):
        from repro.errors import ConfigurationError

        board = ShardBoard(SweepCheckpoint(tmp_path / "c"))
        with pytest.raises(ConfigurationError):
            RemoteShardScheduler(tmp_path, board, shard_timeout=0.0)
        with pytest.raises(ConfigurationError):
            RemoteShardScheduler(tmp_path, board, shards_per_job=0)

    def test_fully_checkpointed_job_merges_without_workers(
        self, tmp_path, direct
    ):
        """Every seed already durable: the merge happens without a
        single claim — resume costs only what is missing."""
        spec = get_scenario("paper-baseline")
        topology, config = lower_job(spec, repeats=SEEDS)
        checkpoint = SweepCheckpoint(tmp_path / "checkpoints")
        key = checkpoint.key_for(topology, config)
        runner = ExperimentRunner(topology)
        for seed in range(SEEDS):
            checkpoint.append(key, seed, runner.run_once(config, seed))
        board = ShardBoard(checkpoint)
        scheduler = RemoteShardScheduler(tmp_path, board, retry=FAST_RETRY)
        outcome = scheduler.run_job(spec, repeats=SEEDS)
        assert outcome.to_json() == direct.to_json()
