"""Unit tests for the TDMA frame arithmetic and driver."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mac import TdmaDriver, TdmaFrame
from repro.simulator import Simulator
from repro.topology import LineTopology


class TestFrame:
    def test_paper_defaults(self):
        f = TdmaFrame()
        assert f.num_slots == 100
        assert f.slot_duration == 0.05
        assert f.dissemination_duration == 0.5
        # Table I self-consistency: period = source period = 5.5 s.
        assert f.period_length == pytest.approx(5.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TdmaFrame(num_slots=0)
        with pytest.raises(ConfigurationError):
            TdmaFrame(slot_duration=0)
        with pytest.raises(ConfigurationError):
            TdmaFrame(dissemination_duration=-1)

    def test_period_start(self):
        f = TdmaFrame(num_slots=10, slot_duration=0.1, dissemination_duration=0.5)
        assert f.period_start(0) == 0.0
        assert f.period_start(3) == pytest.approx(4.5)

    def test_slot_start(self):
        f = TdmaFrame(num_slots=10, slot_duration=0.1, dissemination_duration=0.5)
        assert f.slot_start(0, 1) == pytest.approx(0.5)
        assert f.slot_start(0, 10) == pytest.approx(1.4)
        assert f.slot_start(2, 1) == pytest.approx(3.5)

    def test_slot_start_bounds(self):
        f = TdmaFrame(num_slots=10)
        with pytest.raises(ConfigurationError):
            f.slot_start(0, 0)
        with pytest.raises(ConfigurationError):
            f.slot_start(0, 11)
        with pytest.raises(ConfigurationError):
            f.period_start(-1)

    def test_inverse_mapping(self):
        f = TdmaFrame(num_slots=10, slot_duration=0.1, dissemination_duration=0.5)
        assert f.period_of(0.0) == 0
        assert f.period_of(1.6) == 1
        assert f.slot_at(0.2) is None  # dissemination window
        assert f.slot_at(0.55) == 1
        assert f.slot_at(1.45) == 10

    def test_position_of(self):
        f = TdmaFrame(num_slots=10, slot_duration=0.1, dissemination_duration=0.5)
        assert f.position_of(1.5 + 0.5 + 0.25) == (1, 3)

    def test_forward_inverse_consistency(self):
        f = TdmaFrame(num_slots=20, slot_duration=0.05, dissemination_duration=0.3)
        for period in (0, 1, 7):
            for slot in (1, 5, 20):
                t = f.slot_start(period, slot)
                assert f.position_of(t + 1e-9) == (period, slot)

    def test_fits(self):
        f = TdmaFrame(num_slots=10)
        assert f.fits(1) and f.fits(10)
        assert not f.fits(0) and not f.fits(11)

    def test_negative_time_rejected(self):
        f = TdmaFrame()
        with pytest.raises(ConfigurationError):
            f.period_of(-0.1)
        with pytest.raises(ConfigurationError):
            f.slot_at(-0.1)


class FakeClient:
    def __init__(self, node):
        self.node = node
        self.periods = []
        self.slots = []

    def on_period_start(self, period, time):
        self.periods.append((period, time))

    def on_slot(self, period, slot, time):
        self.slots.append((period, slot, time))


class TestDriver:
    def make(self, num_slots=4):
        topo = LineTopology(3)
        sim = Simulator(topo)
        frame = TdmaFrame(num_slots=num_slots, slot_duration=0.1, dissemination_duration=0.2)
        return sim, TdmaDriver(sim, frame), frame

    def test_slot_events_fire_at_right_times(self):
        sim, driver, frame = self.make()
        a, b = FakeClient(0), FakeClient(1)
        driver.register(a, 2)
        driver.register(b, 4)
        driver.start(stop_after=2)
        sim.run()
        assert [s[:2] for s in a.slots] == [(0, 2), (1, 2)]
        assert a.slots[0][2] == pytest.approx(frame.slot_start(0, 2))
        assert b.slots[1][2] == pytest.approx(frame.slot_start(1, 4))

    def test_period_start_delivered_to_all(self):
        sim, driver, _ = self.make()
        a, b = FakeClient(0), FakeClient(1)
        driver.register(a, 1)
        driver.register(b, None)  # listen-only
        driver.start(stop_after=3)
        sim.run()
        assert [p for p, _ in a.periods] == [0, 1, 2]
        assert [p for p, _ in b.periods] == [0, 1, 2]
        assert b.slots == []

    def test_duplicate_registration_rejected(self):
        _, driver, _ = self.make()
        driver.register(FakeClient(0), 1)
        with pytest.raises(SimulationError, match="already registered"):
            driver.register(FakeClient(0), 2)

    def test_slot_out_of_frame_rejected(self):
        _, driver, _ = self.make(num_slots=4)
        with pytest.raises(SimulationError, match="does not fit"):
            driver.register(FakeClient(0), 5)

    def test_reassignment_takes_effect_next_period(self):
        sim, driver, _ = self.make()
        a = FakeClient(0)
        driver.register(a, 1)
        driver.start(stop_after=3)
        # Change the slot during period 0 (before period 1 is scheduled).
        sim.schedule_at(0.05, lambda: driver.reassign(0, 3))
        sim.run()
        slots_fired = [(p, s) for p, s, _ in a.slots]
        assert (0, 1) not in slots_fired  # retracted within period 0
        assert (1, 3) in slots_fired and (2, 3) in slots_fired

    def test_reassign_unknown_node(self):
        _, driver, _ = self.make()
        with pytest.raises(SimulationError, match="no TDMA client"):
            driver.reassign(0, 1)

    def test_reassign_to_none_silences(self):
        sim, driver, _ = self.make()
        a = FakeClient(0)
        driver.register(a, 1)
        driver.reassign(0, None)
        driver.start(stop_after=2)
        sim.run()
        assert a.slots == []
        assert driver.slot_of(0) is None

    def test_double_start_rejected(self):
        sim, driver, _ = self.make()
        driver.start(stop_after=1)
        with pytest.raises(SimulationError, match="already running"):
            driver.start()

    def test_stop_after_bounds_periods(self):
        sim, driver, _ = self.make()
        a = FakeClient(0)
        driver.register(a, 1)
        driver.start(stop_after=2)
        sim.run()
        assert len(a.periods) == 2
