"""Failure-injection tests: node loss, heavy noise, partitioned hearing.

The paper assumes a reliable network ("an ideal communication model was
used"); these tests probe how gracefully the reproduction degrades
outside that envelope, which is what a downstream user will hit first.
"""

import pytest

from repro.app import run_operational_phase
from repro.core import check_weak_das
from repro.das import DasProtocolConfig, run_das_setup
from repro.errors import ProtocolError
from repro.simulator import BernoulliNoise, Process, Simulator
from repro.topology import GridTopology, LineTopology


class TestSetupUnderLoss:
    def test_moderate_loss_still_converges(self):
        grid = GridTopology(5)
        result = run_das_setup(
            grid,
            config=DasProtocolConfig(setup_periods=60),
            seed=1,
            noise=BernoulliNoise(0.10),
        )
        assert result.schedule.covers(grid)
        assert check_weak_das(grid, result.schedule).ok

    def test_extreme_loss_fails_loudly(self):
        grid = GridTopology(5)
        with pytest.raises(ProtocolError, match="never obtained a slot"):
            run_das_setup(
                grid,
                config=DasProtocolConfig(setup_periods=10),
                seed=1,
                noise=BernoulliNoise(0.98),
            )

    def test_loss_costs_messages(self):
        """Loss delays convergence, which keeps nodes disseminating."""
        grid = GridTopology(5)
        clean = run_das_setup(
            grid, config=DasProtocolConfig(setup_periods=60), seed=2
        )
        lossy = run_das_setup(
            grid,
            config=DasProtocolConfig(setup_periods=60),
            seed=2,
            noise=BernoulliNoise(0.15),
        )
        assert lossy.messages_sent >= clean.messages_sent * 0.5  # both sane
        assert lossy.schedule.covers(grid)


class TestNodeFailure:
    def test_detached_node_blinds_its_link(self):
        """Detaching a radio mid-run models a crashed node: its
        neighbours stop hearing it, the engine keeps running."""
        line = LineTopology(4)
        sim = Simulator(line)
        received = []

        class Listener(Process):
            def on_receive(self, sender, message, time):
                received.append((self.node, sender))

        for n in line.nodes:
            sim.register_process(Listener(n))
        sim.schedule_at(1.0, lambda: sim.radio.broadcast(1, "before"))
        sim.schedule_at(2.0, lambda: sim.radio.detach(2))
        sim.schedule_at(3.0, lambda: sim.radio.broadcast(1, "after"))
        sim.run()
        before = [(r, s) for r, s in received if s == 1]
        # node 2 heard the first broadcast but not the second.
        assert (2, 1) in before
        assert before.count((2, 1)) == 1
        assert before.count((0, 1)) == 2

    def test_operational_phase_with_deaf_region(self):
        """Total loss on the data plane: aggregation collapses to the
        sink's own neighbourhood but the run completes and reports."""
        grid = GridTopology(5)
        from repro.das import centralized_das_schedule

        schedule = centralized_das_schedule(grid, seed=0)
        result = run_operational_phase(
            grid,
            schedule,
            noise=BernoulliNoise(0.9),
            seed=0,
            max_periods=3,
        )
        assert result.periods_run == 3
        assert result.aggregation_ratio < 0.5
        assert not result.captured  # the attacker is mostly deaf too
