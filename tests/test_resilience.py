"""Chaos and checkpoint tests for fault-tolerant sweep execution.

The contracts under test, in roughly increasing order of violence:

* a supervised sweep in which nothing fails is *byte-identical* to the
  pre-supervision engine at every worker count;
* transient worker failures are retried away completely; crashed and
  hung workers cost wall-clock but no results; poison seeds are
  isolated and quarantined while their chunk-mates complete normally;
* an interrupted sweep resumed from its checkpoint reproduces the
  uninterrupted report bit-for-bit;
* the differential divergence guard catches a silently wrong kernel
  result and degrades the sweep to the legacy engines instead of
  publishing it.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.cli import EXIT_QUARANTINED, EXIT_SWEEP_FAILED, main
from repro.errors import ConfigurationError, SweepExecutionError, sweep_failed
from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    FaultPlan,
    InjectedFault,
    ParallelExperimentRunner,
    RetryPolicy,
    SweepCheckpoint,
    guard_sample,
    result_from_dict,
    result_to_dict,
)
from repro.experiments import parallel as parallel_module
from repro.experiments.runner import PROTECTIONLESS, SLP
from repro.scenarios import ScenarioRunner
from repro.topology import GridTopology

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.002)


@pytest.fixture
def config():
    return ExperimentConfig(algorithm=PROTECTIONLESS, repeats=8, base_seed=0)


@pytest.fixture
def serial(grid5, config):
    return ExperimentRunner(grid5).run(config)


def sweep_with_plan(topology, config, plan, workers=2, **kwargs):
    kwargs.setdefault("retry_policy", FAST_RETRY)
    with plan.activated():
        with ParallelExperimentRunner(topology, workers=workers, **kwargs) as r:
            return r.run(config)


class TestRetryPolicy:
    def test_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay(2, key=3) == policy.delay(2, key=3)
        assert policy.delay(2, key=3) != policy.delay(2, key=4)

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4)
        # jitter scales by [0.5, 1.0), so compare against raw bounds
        assert 0.05 <= policy.delay(1) < 0.1
        assert 0.1 <= policy.delay(2) < 0.2
        assert 0.2 <= policy.delay(5) < 0.4  # capped at max_delay

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1.0)


class TestFaultPlan:
    def test_env_round_trip(self, tmp_path):
        plan = FaultPlan(
            crash_seeds=(1,),
            poison_seeds=(2, 3),
            hang_seconds=1.5,
            marker_dir=str(tmp_path),
        )
        assert FaultPlan.from_env(plan.to_env()) == plan

    def test_once_only_needs_marker_dir(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_seeds=(1,))
        FaultPlan(poison_seeds=(1,))  # unconditional kinds need none

    def test_activated_restores_environment(self, tmp_path, monkeypatch):
        import os

        from repro.experiments.faults import FAULT_PLAN_ENV

        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        plan = FaultPlan(poison_seeds=(1,))
        with plan.activated():
            assert os.environ[FAULT_PLAN_ENV] == plan.to_env()
        assert FAULT_PLAN_ENV not in os.environ

    def test_once_only_marker_fires_once(self, tmp_path):
        plan = FaultPlan(transient_seeds=(5,), marker_dir=str(tmp_path))
        with pytest.raises(InjectedFault):
            plan.before_seed(5)
        plan.before_seed(5)  # second attempt proceeds

    def test_perturb_skips_legacy_kernel(self, grid5):
        config = ExperimentConfig(algorithm=PROTECTIONLESS, repeats=1)
        result = ExperimentRunner(grid5).run_once(config, 0)
        plan = FaultPlan(perturb_seeds=(0,))
        corrupted = plan.on_result(config, 0, result)
        assert corrupted.messages_sent == result.messages_sent + 1
        legacy = replace(config, kernel="legacy")
        assert plan.on_result(legacy, 0, result) is result


class TestResultRoundTrip:
    def test_json_round_trip_is_exact(self, grid5, config):
        result = ExperimentRunner(grid5).run_once(config, 3)
        payload = json.loads(json.dumps(result_to_dict(result)))
        assert result_from_dict(payload) == result


class TestSupervisedChaos:
    def test_transient_fault_retried_away(self, grid5, config, serial, tmp_path):
        plan = FaultPlan(transient_seeds=(3,), marker_dir=str(tmp_path))
        outcome = sweep_with_plan(grid5, config, plan)
        assert outcome.failures == ()
        assert outcome.results == serial.results
        assert outcome.stats == serial.stats

    def test_poison_seed_quarantined_others_identical(
        self, grid5, config, serial, tmp_path
    ):
        plan = FaultPlan(poison_seeds=(5,), marker_dir=str(tmp_path))
        outcome = sweep_with_plan(grid5, config, plan)
        assert [f.seed for f in outcome.failures] == [5]
        failure = outcome.failures[0]
        assert failure.kind == "error"
        assert failure.attempts == FAST_RETRY.max_attempts
        assert "InjectedFault" in failure.error
        expected = tuple(r for i, r in enumerate(serial.results) if i != 5)
        assert outcome.results == expected

    def test_worker_crash_respawned_and_recovered(
        self, grid5, config, serial, tmp_path
    ):
        plan = FaultPlan(crash_seeds=(2,), marker_dir=str(tmp_path))
        outcome = sweep_with_plan(
            grid5, config, plan, retry_policy=RetryPolicy(4, 0.001, 0.002)
        )
        assert outcome.failures == ()
        assert outcome.results == serial.results

    def test_hung_worker_reclaimed_by_chunk_timeout(
        self, grid5, config, serial, tmp_path
    ):
        plan = FaultPlan(
            hang_seeds=(1,), hang_seconds=60.0, marker_dir=str(tmp_path)
        )
        outcome = sweep_with_plan(grid5, config, plan, chunk_timeout=5.0)
        assert outcome.failures == ()
        assert outcome.results == serial.results

    def test_pickle_fault_on_submit_recovered(
        self, grid5, config, serial, tmp_path
    ):
        plan = FaultPlan(pickle_seeds=(4,), marker_dir=str(tmp_path))
        outcome = sweep_with_plan(grid5, config, plan)
        assert outcome.failures == ()
        assert outcome.results == serial.results

    def test_all_seeds_poisoned_fails_loudly(self, grid5, config, tmp_path):
        plan = FaultPlan(
            poison_seeds=tuple(range(config.repeats)), marker_dir=str(tmp_path)
        )
        with plan.activated():
            with ParallelExperimentRunner(
                grid5, workers=2, retry_policy=FAST_RETRY
            ) as runner:
                with pytest.raises(SweepExecutionError) as excinfo:
                    runner.run(config)
        assert excinfo.value.seeds == tuple(range(config.repeats))

    def test_fault_free_supervised_sweep_identical_at_any_width(
        self, grid5, config, serial
    ):
        for workers in (2, 3):
            with ParallelExperimentRunner(grid5, workers=workers) as runner:
                outcome = runner.run(config)
            assert outcome.failures == ()
            assert outcome.results == serial.results
            assert outcome.stats == serial.stats


class TestSweepCheckpoint:
    def test_append_load_round_trip(self, grid5, config, tmp_path):
        store = SweepCheckpoint(tmp_path)
        key = store.key_for(grid5, config)
        runner = ExperimentRunner(grid5)
        expected = {}
        for seed in (0, 3, 5):
            result = runner.run_once(config, seed)
            store.append(key, seed, result)
            expected[seed] = result
        assert store.load(key) == expected

    def test_key_canonicalises_seed_range_but_not_kernels(
        self, grid5, config
    ):
        store = SweepCheckpoint("unused-root")
        key = store.key_for(grid5, config)
        widened = replace(config, repeats=50, base_seed=10)
        assert store.key_for(grid5, widened) == key
        legacy = replace(config, kernel="legacy")
        assert store.key_for(grid5, legacy) != key
        other_alg = replace(config, algorithm=SLP, search_distance=1)
        assert store.key_for(grid5, other_alg) != key

    def test_torn_trailing_line_skipped(self, grid5, config, tmp_path):
        store = SweepCheckpoint(tmp_path)
        key = store.key_for(grid5, config)
        result = ExperimentRunner(grid5).run_once(config, 0)
        store.append(key, 0, result)
        with store.path_for(key).open("a") as handle:
            handle.write('{"seed": 1, "result": {"cap')  # torn write
        assert store.load(key) == {0: result}

    def test_resume_is_bit_identical(self, grid5, config, serial, tmp_path):
        store = SweepCheckpoint(tmp_path)
        runner = ExperimentRunner(grid5)
        key = store.key_for(grid5, config)
        # Simulate an interrupted sweep: only some seeds on record.
        for seed in (0, 1, 4, 6):
            store.append(key, seed, runner.run_once(config, seed))
        resumed = runner.run_checkpointed(config, store, resume=True)
        assert resumed.results == serial.results
        assert resumed.stats == serial.stats
        # And the store now holds the full sweep for the next resume.
        assert set(store.load(key)) == set(range(config.repeats))

    def test_no_resume_clears_stale_results(self, grid5, config, tmp_path):
        store = SweepCheckpoint(tmp_path)
        runner = ExperimentRunner(grid5)
        key = store.key_for(grid5, config)
        bogus = replace(
            runner.run_once(config, 0), messages_sent=999999
        )
        store.append(key, 3, bogus)
        outcome = runner.run_checkpointed(config, store, resume=False)
        assert outcome.results == ExperimentRunner(grid5).run(config).results

    def test_parallel_resume_matches_serial(self, grid5, config, serial, tmp_path):
        store = SweepCheckpoint(tmp_path)
        key = store.key_for(grid5, config)
        serial_runner = ExperimentRunner(grid5)
        for seed in (2, 7):
            store.append(key, seed, serial_runner.run_once(config, seed))
        with ParallelExperimentRunner(grid5, workers=2) as runner:
            outcome = runner.run_checkpointed(config, store, resume=True)
        assert outcome.results == serial.results


class TestDivergenceGuard:
    def test_sample_is_deterministic_and_bounded(self):
        seeds = list(range(20))
        assert guard_sample(seeds, 3, 0) == guard_sample(seeds, 3, 0)
        assert len(guard_sample(seeds, 3, 0)) == 3
        assert guard_sample(seeds, 50, 0) == tuple(range(20))
        assert guard_sample([], 3, 0) == ()

    def test_clean_sweep_not_degraded(self, grid5, config, serial):
        runner = ExperimentRunner(grid5)
        outcome = runner.run_resilient(config, guard="differential")
        assert outcome.guard is not None
        assert not outcome.guard.degraded
        assert outcome.guard.mismatched_seeds == ()
        assert outcome.results == serial.results

    def test_divergence_detected_and_degraded(
        self, grid5, config, serial, tmp_path
    ):
        plan = FaultPlan(perturb_seeds=tuple(range(config.repeats)))
        bundle_dir = tmp_path / "bundles"
        with plan.activated():
            runner = ExperimentRunner(grid5)
            outcome = runner.run_resilient(
                config, guard="differential", bundle_dir=bundle_dir
            )
        guard = outcome.guard
        assert guard.degraded
        assert guard.mismatched_seeds
        assert guard.bundle_path is not None
        from pathlib import Path

        bundle = json.loads(Path(guard.bundle_path).read_text())
        assert bundle["mismatches"]
        first = bundle["mismatches"][0]
        assert first["fast"]["messages_sent"] == first["legacy"]["messages_sent"] + 1
        # The degraded re-run went through the legacy engines, whose
        # results the perturbation cannot touch.
        assert outcome.results == serial.results

    def test_invalid_guard_mode_rejected(self, grid5, config):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(grid5).run_resilient(config, guard="nonsense")


class TestScenarioReports:
    def test_clean_report_has_no_failure_sections(self):
        outcome = ScenarioRunner(workers=1).run("paper-baseline", seeds=3)
        report = outcome.to_dict()
        assert "failures" not in report
        assert "guard" not in report

    def test_run_seeds_skips_quarantined(self, grid5, config, tmp_path):
        plan = FaultPlan(poison_seeds=(2,), marker_dir=str(tmp_path))
        outcome = sweep_with_plan(grid5, config, plan)
        # Splice the engine outcome into a scenario-shaped check via the
        # seed bookkeeping only: seeds 0..7 minus the quarantined 2.
        assert [f.seed for f in outcome.failures] == [2]
        assert len(outcome.results) == config.repeats - 1


class TestLifecycleHardening:
    def test_default_workers_survives_unknown_cpu_count(self, monkeypatch):
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: None)
        assert parallel_module.default_workers() == 1

    def test_close_kill_terminates_pool(self, grid5, config):
        runner = ParallelExperimentRunner(grid5, workers=2)
        runner.run(config)
        runner.close(kill=True)
        runner.close(kill=True)  # idempotent
        assert runner._executor is None

    def test_exit_on_keyboard_interrupt_kills(self, grid5, config):
        runner = ParallelExperimentRunner(grid5, workers=2)
        with pytest.raises(KeyboardInterrupt):
            with runner:
                runner.run(config)
                raise KeyboardInterrupt
        assert runner._executor is None

    def test_chunk_timeout_validated(self, grid5):
        with pytest.raises(ConfigurationError):
            ParallelExperimentRunner(grid5, workers=2, chunk_timeout=0.0)


class TestErrors:
    def test_sweep_failed_shape(self):
        error = sweep_failed("Runner", [3, 4], 3, "InjectedFault: poison")
        assert error.seeds == (3, 4)
        assert error.attempts == 3
        assert "seeds [3, 4]" in str(error)
        assert "3 attempt(s)" in str(error)


class TestCliExitCodes:
    def test_quarantined_seeds_exit_code(self, tmp_path, capsys):
        plan = FaultPlan(poison_seeds=(1,), marker_dir=str(tmp_path))
        with plan.activated():
            rc = main(
                [
                    "figure5",
                    "--sizes",
                    "11",
                    "--repeats",
                    "3",
                    "--workers",
                    "2",
                ]
            )
        assert rc == EXIT_QUARANTINED
        assert "quarantined" in capsys.readouterr().err

    def test_total_failure_exit_code(self, tmp_path, capsys):
        plan = FaultPlan(poison_seeds=(0, 1), marker_dir=str(tmp_path))
        with plan.activated():
            rc = main(
                [
                    "figure5",
                    "--sizes",
                    "11",
                    "--repeats",
                    "2",
                    "--workers",
                    "2",
                ]
            )
        assert rc == EXIT_SWEEP_FAILED
        assert "sweep failed" in capsys.readouterr().err

    def test_clean_run_exits_zero(self, tmp_path):
        store = tmp_path / "ckpt"
        rc = main(
            [
                "figure5",
                "--sizes",
                "11",
                "--repeats",
                "2",
                "--checkpoint",
                str(store),
            ]
        )
        assert rc == 0
        assert list(store.glob("sweep-*.jsonl"))
        # Resuming re-reads every seed from the store.
        assert main(
            [
                "figure5",
                "--sizes",
                "11",
                "--repeats",
                "2",
                "--checkpoint",
                str(store),
                "--resume",
            ]
        ) == 0
