"""Unit tests for node identity and placement primitives."""

import math

import pytest

from repro.topology import Coordinate, Placement


class TestCoordinate:
    def test_euclidean_distance(self):
        a = Coordinate(0.0, 0.0)
        b = Coordinate(3.0, 4.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a = Coordinate(1.5, -2.0)
        b = Coordinate(-3.0, 7.25)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_distance_to_self_is_zero(self):
        a = Coordinate(12.0, 9.0)
        assert a.distance_to(a) == 0.0

    def test_manhattan_distance(self):
        a = Coordinate(0.0, 0.0)
        b = Coordinate(3.0, 4.0)
        assert a.manhattan_to(b) == pytest.approx(7.0)

    def test_manhattan_dominates_euclidean(self):
        a = Coordinate(-1.0, 2.0)
        b = Coordinate(4.0, -3.5)
        assert a.manhattan_to(b) >= a.distance_to(b)

    def test_unpacking(self):
        x, y = Coordinate(2.5, -1.0)
        assert (x, y) == (2.5, -1.0)

    def test_equality_and_hash(self):
        assert Coordinate(1.0, 2.0) == Coordinate(1.0, 2.0)
        assert hash(Coordinate(1.0, 2.0)) == hash(Coordinate(1.0, 2.0))
        assert Coordinate(1.0, 2.0) != Coordinate(2.0, 1.0)

    def test_ordering(self):
        assert Coordinate(1.0, 5.0) < Coordinate(2.0, 0.0)

    def test_immutability(self):
        c = Coordinate(0.0, 0.0)
        with pytest.raises(AttributeError):
            c.x = 5.0


class TestPlacement:
    def test_distance_between_placements(self):
        p = Placement(0, Coordinate(0.0, 0.0))
        q = Placement(1, Coordinate(0.0, 4.5))
        assert p.distance_to(q) == pytest.approx(4.5)

    def test_placement_is_hashable(self):
        p = Placement(3, Coordinate(1.0, 1.0))
        assert p in {p}
