"""Tests for the experiments package (Table I, runner, Figure 5)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    PAPER,
    PAPER_SIZES,
    ExperimentConfig,
    ExperimentRunner,
    PaperParameters,
    format_figure5,
    format_overhead,
    format_table1,
    measure_setup_overhead,
    paper_topologies,
    run_figure5,
)
from repro.topology import GridTopology


class TestTable1:
    def test_paper_sizes(self):
        assert PAPER_SIZES == (11, 15, 21)

    def test_parameters_self_consistent(self):
        # Psrc = Pdiss + slots * Pslot must hold.
        assert PAPER.frame().period_length == pytest.approx(PAPER.source_period)

    def test_inconsistent_parameters_rejected(self):
        with pytest.raises(ConfigurationError, match="self-consistent"):
            PaperParameters(source_period=6.0)

    def test_das_config_from_table(self):
        cfg = PAPER.das_config()
        assert cfg.setup_periods == 80
        assert cfg.neighbour_discovery_periods == 4
        assert cfg.num_slots == 100

    def test_das_config_override(self):
        assert PAPER.das_config(setup_periods=30).setup_periods == 30

    def test_change_length(self):
        grid = GridTopology(11)
        assert PAPER.change_length(grid, 3) == 7
        assert PAPER.change_length(grid, 5) == 5

    def test_simulation_bound(self):
        grid = GridTopology(11)
        assert PAPER.simulation_bound_seconds(grid) == pytest.approx(121 * 5.5 * 4)

    def test_format_table1_lists_all_symbols(self):
        text = format_table1()
        for symbol in ("Psrc", "Pslot", "Pdiss", "slots", "MSP", "NDP", "DT", "SD", "CL"):
            assert symbol in text

    def test_paper_topologies(self):
        topos = paper_topologies()
        assert [t.num_nodes for t in topos] == [121, 225, 441]


class TestRunnerConfig:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            ExperimentConfig(algorithm="magic")

    def test_zero_repeats_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one repeat"):
            ExperimentConfig(repeats=0)

    def test_noise_instantiation(self):
        from repro.simulator import CasinoLabNoise

        assert ExperimentConfig(noise="ideal").make_noise() is None
        assert isinstance(ExperimentConfig(noise="casino").make_noise(), CasinoLabNoise)
        with pytest.raises(ConfigurationError, match="unknown noise"):
            ExperimentConfig(noise="static").make_noise()


class TestRunner:
    def test_protectionless_outcome(self, grid5):
        runner = ExperimentRunner(grid5)
        outcome = runner.run(
            ExperimentConfig(algorithm="protectionless", repeats=4, noise="ideal")
        )
        assert outcome.stats.runs == 4
        assert outcome.topology_name == grid5.name
        assert len(outcome.results) == 4

    def test_slp_outcome(self, grid7):
        runner = ExperimentRunner(grid7)
        outcome = runner.run(
            ExperimentConfig(
                algorithm="slp", search_distance=2, repeats=3, noise="ideal"
            )
        )
        assert outcome.stats.runs == 3

    def test_runs_are_seeded(self, grid5):
        runner = ExperimentRunner(grid5)
        cfg = ExperimentConfig(repeats=2, base_seed=7, noise="ideal")
        a = runner.run(cfg)
        b = runner.run(cfg)
        assert [r.captured for r in a.results] == [r.captured for r in b.results]
        assert [r.attacker_path for r in a.results] == [
            r.attacker_path for r in b.results
        ]

    def test_distributed_schedule_construction(self, grid5):
        from repro.experiments import PaperParameters

        params = PaperParameters()
        runner = ExperimentRunner(grid5)
        cfg = ExperimentConfig(
            algorithm="protectionless",
            repeats=1,
            noise="ideal",
            use_distributed=True,
            parameters=params,
        )
        schedule = runner.build_schedule(cfg, seed=0)
        assert schedule.covers(grid5)

    def test_distributed_slp_schedule_construction(self, grid5):
        """The runner's message-level SLP path: full 3-phase setup."""
        from repro.core import check_weak_das
        from repro.experiments import PaperParameters

        # Reduced MSP keeps this quick; the full-scale default is 80.
        params = PaperParameters()
        runner = ExperimentRunner(grid5)
        cfg = ExperimentConfig(
            algorithm="slp",
            search_distance=2,
            repeats=1,
            noise="ideal",
            use_distributed=True,
            parameters=params,
        )
        schedule = runner.build_schedule(cfg, seed=1)
        assert schedule.covers(grid5)
        assert check_weak_das(grid5, schedule).ok

    def test_run_once_end_to_end(self, grid5):
        runner = ExperimentRunner(grid5)
        cfg = ExperimentConfig(algorithm="slp", search_distance=2,
                               repeats=1, noise="ideal")
        result = runner.run_once(cfg, seed=2)
        assert result.periods_run >= 1
        assert result.safety_periods >= result.periods_run


class TestFigure5:
    def test_small_panel(self):
        result = run_figure5(
            search_distance=3, sizes=(11,), repeats=3, noise="ideal"
        )
        assert result.search_distance == 3
        cell = result.cell(11)
        assert 0.0 <= cell.protectionless.capture_ratio <= 1.0
        assert 0.0 <= cell.slp.capture_ratio <= 1.0

    def test_unknown_cell(self):
        result = run_figure5(search_distance=3, sizes=(11,), repeats=2, noise="ideal")
        with pytest.raises(ConfigurationError, match="no cell"):
            result.cell(15)

    def test_format_contains_rows(self):
        result = run_figure5(search_distance=3, sizes=(11,), repeats=2, noise="ideal")
        text = format_figure5(result)
        assert "Figure 5a" in text
        assert "11" in text
        assert "mean reduction" in text


class TestOverheadExperiment:
    def test_measurement(self, grid5):
        m = measure_setup_overhead(
            grid5, seeds=(0,), setup_periods=30, refinement_periods=10,
            search_distance=2,
        )
        assert len(m.per_seed) == 1
        assert m.per_seed[0].slp_messages > 0
        text = format_overhead(m)
        assert "overhead" in text.lower() or "Overhead" in text
