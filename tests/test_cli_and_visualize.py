"""Tests for the CLI and the ASCII visualiser."""

import pytest

from repro.cli import build_parser, main
from repro.das import centralized_das_schedule
from repro.errors import TopologyError
from repro.slp import SlpParameters, build_slp_schedule
from repro.topology import GridTopology
from repro.visualize import render_attacker_path, render_roles, render_slot_grid


class TestVisualize:
    def test_slot_grid_dimensions(self, grid5, grid5_schedule):
        text = render_slot_grid(grid5, grid5_schedule)
        assert len(text.splitlines()) == 5

    def test_slot_grid_markers(self, grid5, grid5_schedule):
        text = render_slot_grid(grid5, grid5_schedule, highlight=[1, 2])
        assert "(" in text  # sink
        assert "{" in text  # source
        assert "[" in text  # highlighted

    def test_roles_glyphs(self, grid5):
        text = render_roles(
            grid5,
            attacker_path=[grid5.sink, 7],
            decoy_path=[11],
            search_path=[17],
        )
        assert "K" in text and "S" in text
        assert "A" in text and "d" in text and "s" in text
        assert "legend" not in text  # legend is glyph line, not word

    def test_attacker_path_coordinates(self, grid5):
        text = render_attacker_path(grid5, [0, 1])
        assert text == "0(0,0) -> 1(0,1)"

    def test_attacker_path_empty(self, grid5):
        assert render_attacker_path(grid5, []) == "(no movement)"

    def test_attacker_path_unknown_node(self, grid5):
        with pytest.raises(TopologyError):
            render_attacker_path(grid5, [999])


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        for command in ("table1", "figure5", "overhead", "verify", "show"):
            args = parser.parse_args([command] if command == "table1" else [command])
            assert args.command == command

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Psrc" in out and "Change Length" in out

    def test_figure5_quick(self, capsys):
        code = main(
            ["figure5", "--repeats", "2", "--sizes", "11", "--noise", "ideal"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5a" in out

    def test_figure5_kernel_bisection_flags_identical(self, capsys):
        """--no-fast-lane and --legacy-kernel reproduce the default
        output byte-for-byte (the bit-identity contract, end to end)."""
        base_args = ["figure5", "--repeats", "2", "--sizes", "11", "--noise", "ideal"]
        assert main(base_args) == 0
        default_out = capsys.readouterr().out
        for flag in ("--no-fast-lane", "--legacy-kernel"):
            assert main(base_args + [flag]) == 0
            assert capsys.readouterr().out == default_out

    def test_verify(self, capsys):
        assert main(["verify", "--size", "11", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "safety period" in out
        assert "protectionless" in out and "slp" in out

    def test_show(self, capsys):
        assert main(["show", "--size", "11", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "slot landscape" in out
        assert "K" in out

    def test_overhead_quick(self, capsys):
        code = main(
            ["overhead", "--size", "11", "--seeds", "1", "--setup-periods", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "overhead" in out.lower()
