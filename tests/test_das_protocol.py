"""Tests for the distributed Phase 1 protocol (Figure 2)."""

import pytest

from repro.core import check_strong_das, check_weak_das
from repro.das import (
    DasNodeProcess,
    DasProtocolConfig,
    DissemMessage,
    HelloMessage,
    NodeInfo,
    run_das_setup,
)
from repro.errors import ProtocolError
from repro.simulator import BernoulliNoise
from repro.topology import GridTopology, LineTopology, RingTopology


def fast_config(periods=30) -> DasProtocolConfig:
    return DasProtocolConfig(setup_periods=periods)


class TestConfigValidation:
    def test_defaults_match_table1(self):
        cfg = DasProtocolConfig()
        assert cfg.dissemination_period == 0.5
        assert cfg.num_slots == 100
        assert cfg.neighbour_discovery_periods == 4
        assert cfg.setup_periods == 80
        assert cfg.dissemination_timeout == 5

    def test_validation(self):
        with pytest.raises(ProtocolError):
            DasProtocolConfig(dissemination_period=0)
        with pytest.raises(ProtocolError):
            DasProtocolConfig(num_slots=0)
        with pytest.raises(ProtocolError):
            DasProtocolConfig(neighbour_discovery_periods=0)
        with pytest.raises(ProtocolError):
            DasProtocolConfig(setup_periods=4, neighbour_discovery_periods=4)
        with pytest.raises(ProtocolError):
            DasProtocolConfig(jitter_fraction=0.0)
        with pytest.raises(ProtocolError):
            DasProtocolConfig(dissemination_timeout=0)


class TestMessages:
    def test_node_info_assigned(self):
        assert not NodeInfo().assigned
        assert NodeInfo(hop=1, slot=5).assigned

    def test_dissem_entry_defaults_to_unknown(self):
        msg = DissemMessage(normal=True, sender=1, ninfo={})
        assert not msg.entry(7).assigned

    def test_unassigned_neighbours(self):
        msg = DissemMessage(
            normal=True,
            sender=1,
            ninfo={
                1: NodeInfo(0, 9),
                2: NodeInfo(1, 5),
                3: NodeInfo(),
                4: NodeInfo(),
            },
        )
        assert msg.unassigned_neighbours() == (3, 4)


class TestDistributedSetup:
    @pytest.mark.parametrize(
        "topology,periods",
        [
            (LineTopology(6), 25),
            (RingTopology(8), 25),
            (GridTopology(5), 35),
        ],
        ids=["line", "ring", "grid5"],
    )
    def test_converges_to_strong_das(self, topology, periods):
        result = run_das_setup(topology, config=fast_config(periods), seed=3)
        check = check_strong_das(topology, result.schedule)
        assert check.ok, check.summary()

    def test_every_node_assigned(self, grid5):
        result = run_das_setup(grid5, config=fast_config(35), seed=0)
        assert result.schedule.covers(grid5)

    def test_message_count_positive_and_bounded(self, line5):
        result = run_das_setup(line5, config=fast_config(25), seed=0)
        assert 0 < result.messages_sent
        # At most one broadcast per node per round.
        assert result.messages_sent <= line5.num_nodes * 25

    def test_dissemination_timeout_saves_messages(self, line5):
        eager = DasProtocolConfig(setup_periods=40, dissemination_timeout=40)
        lazy = DasProtocolConfig(setup_periods=40, dissemination_timeout=2)
        eager_msgs = run_das_setup(line5, config=eager, seed=1).messages_sent
        lazy_msgs = run_das_setup(line5, config=lazy, seed=1).messages_sent
        assert lazy_msgs < eager_msgs

    def test_same_seed_reproduces_schedule(self, grid5):
        a = run_das_setup(grid5, config=fast_config(35), seed=9).schedule
        b = run_das_setup(grid5, config=fast_config(35), seed=9).schedule
        assert a == b

    def test_survives_light_noise(self, grid5):
        result = run_das_setup(
            grid5,
            config=fast_config(50),
            seed=2,
            noise=BernoulliNoise(0.05),
        )
        # Under light loss the protocol still converges to a weak DAS at
        # minimum (collision knowledge can lag 2 hops behind).
        assert check_weak_das(grid5, result.schedule).ok

    def test_insufficient_periods_raises(self):
        # 6 rounds on a 5x5 grid (sink-corner distance 4, NDP 4) cannot
        # assign everyone.
        grid = GridTopology(5)
        with pytest.raises(ProtocolError, match="never obtained a slot"):
            run_das_setup(grid, config=fast_config(6), seed=0)

    def test_parent_pointers_point_sinkward(self, grid5):
        result = run_das_setup(grid5, config=fast_config(35), seed=4)
        schedule = result.schedule
        for node in grid5.nodes:
            if node == grid5.sink:
                continue
            parent = schedule.parent_of(node)
            assert parent is not None
            assert grid5.are_linked(node, parent)
            assert grid5.sink_distance(parent) <= grid5.sink_distance(node)


class TestProcessInternals:
    def test_sink_initialises_itself(self, line5):
        from repro.simulator import Simulator

        sim = Simulator(line5)
        cfg = fast_config(25)
        sink_proc = DasNodeProcess(line5.sink, is_sink=True, config=cfg)
        sim.register_process(sink_proc)
        sim.schedule_at(0.0, lambda: None)
        sim.step()
        assert sink_proc.assigned
        assert sink_proc.slot == cfg.num_slots
        assert sink_proc.hop == 0

    def test_merge_prefers_smaller_slot(self, line5):
        from repro.simulator import Simulator

        sim = Simulator(line5)
        proc = DasNodeProcess(0, is_sink=False, config=fast_config(25))
        sim.register_process(proc)
        proc.ninfo[5] = NodeInfo(hop=2, slot=10)
        assert proc._merge_entry(5, NodeInfo(hop=2, slot=8))
        assert proc.ninfo[5].slot == 8
        assert not proc._merge_entry(5, NodeInfo(hop=2, slot=12))  # stale
        assert proc.ninfo[5].slot == 8
