"""Direct unit tests for the runtime EavesdropperAgent."""

import pytest

from repro.attacker import AttackerSpec, EavesdropperAgent, paper_attacker
from repro.simulator import ATTACKER_MOVE, CAPTURE, Simulator
from repro.topology import LineTopology


def make_agent(spec=None, start=4, source=0, slots=None):
    line = LineTopology(5)
    sim = Simulator(line, seed=0)
    slots = slots or {0: 1, 1: 2, 2: 3, 3: 4, 4: 5}
    captured = []
    agent = EavesdropperAgent(
        sim,
        spec or paper_attacker(),
        start=start,
        source=source,
        slot_lookup=lambda n: slots[n],
        on_capture=captured.append,
    )
    return sim, agent, captured


class TestOverhear:
    def test_moves_on_first_message(self):
        sim, agent, _ = make_agent()
        agent.on_period_start(0, 0.0)
        agent.overhear(3, "data", 1.0)
        assert agent.location == 3
        assert agent.path == (4, 3)
        assert sim.trace.count(ATTACKER_MOVE) == 1

    def test_single_move_per_period(self):
        sim, agent, _ = make_agent()
        agent.on_period_start(0, 0.0)
        agent.overhear(3, "a", 1.0)
        agent.overhear(2, "b", 1.5)  # M = 1 exhausted
        assert agent.location == 3

    def test_next_period_allows_next_move(self):
        sim, agent, _ = make_agent()
        agent.on_period_start(0, 0.0)
        agent.overhear(3, "a", 1.0)
        agent.on_period_start(1, 5.5)
        agent.overhear(2, "b", 6.0)
        assert agent.location == 2
        assert agent.path == (4, 3, 2)

    def test_r2_buffers_before_moving(self):
        spec = AttackerSpec(messages_per_move=2)
        sim, agent, _ = make_agent(spec=spec)
        agent.on_period_start(0, 0.0)
        agent.overhear(3, "a", 1.0)
        assert agent.location == 4  # still waiting for a second message
        agent.overhear(2, "b", 1.2)
        assert agent.location == 3  # earliest of the two

    def test_capture_fires_callback_and_trace(self):
        sim, agent, captured = make_agent(start=1)
        agent.on_period_start(0, 0.0)
        agent.overhear(0, "data", 1.0)
        assert agent.captured
        assert agent.capture_time == 1.0
        assert agent.capture_period == 0
        assert captured == [1.0]
        assert sim.trace.count(CAPTURE) == 1

    def test_no_hearing_after_capture(self):
        sim, agent, captured = make_agent(start=1)
        agent.on_period_start(0, 0.0)
        agent.overhear(0, "data", 1.0)
        agent.overhear(2, "later", 2.0)
        assert agent.location == 0  # stayed at the source
        assert len(captured) == 1

    def test_unknown_sender_slot_tolerated(self):
        sim, agent, _ = make_agent(slots={3: 4})  # only node 3 known
        agent.on_period_start(0, 0.0)
        agent.overhear(99, "mystery", 1.0)  # lookup raises -> slot 0
        assert agent.location in (4, 99)


class TestIntrospection:
    def test_initial_state(self):
        _, agent, _ = make_agent()
        assert agent.location == 4
        assert not agent.captured
        assert agent.capture_time is None
        assert agent.capture_period is None
        assert agent.path == (4,)

    def test_state_exposes_figure1_machine(self):
        _, agent, _ = make_agent()
        assert agent.state.spec.r == 1
        assert agent.state.start == 4
