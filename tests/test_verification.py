"""Tests for VerifySchedule (Algorithm 1) and the trace generator."""

import pytest

from repro.attacker import AttackerSpec, FollowAnyHeard, paper_attacker
from repro.core import Schedule
from repro.das import centralized_das_schedule
from repro.errors import VerificationError
from repro.topology import GridTopology, LineTopology, Topology
from repro.verification import (
    audible_senders,
    generate_attacker_traces,
    is_slp_aware_das,
    lowest_slot_neighbours,
    minimum_capture_period,
    valid_steps,
    verify_schedule,
)


def line_schedule(line: LineTopology) -> Schedule:
    """Slots ascend toward the sink: the attacker descends to the source."""
    n = line.length
    slots = {i: i + 1 for i in range(n)}
    parents = {i: i + 1 for i in range(n - 1)}
    parents[n - 1] = None
    return Schedule(slots, parents, sink=n - 1)


class TestHelpers:
    def test_audible_excludes_sink(self, line5, line5_schedule):
        assert line5.sink not in audible_senders(line5, line5_schedule, 3)

    def test_lowest_slot_neighbours_order(self, line5):
        s = line_schedule(line5)
        heard = lowest_slot_neighbours(line5, s, 2, r=2)
        assert [h.sender for h in heard] == [1, 3]
        assert heard[0].slot == 2

    def test_r_truncates(self, grid5, grid5_schedule):
        heard = lowest_slot_neighbours(grid5, grid5_schedule, grid5.sink, r=1)
        assert len(heard) == 1


class TestVerifyOnLine:
    def test_line_gradient_captures(self, line5):
        """On a line, the slot gradient leads straight to the source."""
        s = line_schedule(line5)
        result = verify_schedule(line5, s, safety_period=10)
        assert not result.slp_aware
        assert result.counterexample == (4, 3, 2, 1, 0)
        assert result.periods == 4  # one downhill move per period

    def test_tight_safety_period_prevents_capture(self, line5):
        s = line_schedule(line5)
        result = verify_schedule(line5, s, safety_period=3)
        assert result.slp_aware
        assert result.counterexample is None
        assert result.periods == 3

    def test_reversed_gradient_never_captures(self, line5):
        """Slots descending toward the sink repel the attacker."""
        slots = {0: 5, 1: 4, 2: 3, 3: 2, 4: 9}
        s = Schedule(slots, {}, sink=4)
        result = verify_schedule(line5, s, safety_period=50)
        assert result.slp_aware

    def test_start_equal_source_is_immediate_capture(self, line5):
        s = line_schedule(line5)
        result = verify_schedule(line5, s, safety_period=5, start=line5.source)
        assert not result.slp_aware
        assert result.periods == 0
        assert result.counterexample == (0,)


class TestVerifyValidation:
    def test_negative_safety_rejected(self, line5):
        with pytest.raises(VerificationError, match="cannot be negative"):
            verify_schedule(line5, line_schedule(line5), safety_period=-1)

    def test_unknown_source_rejected(self, line5):
        with pytest.raises(VerificationError, match="source"):
            verify_schedule(line5, line_schedule(line5), 5, source=99)

    def test_unknown_start_rejected(self, line5):
        with pytest.raises(VerificationError, match="start"):
            verify_schedule(line5, line_schedule(line5), 5, start=99)

    def test_partial_schedule_rejected(self, line5):
        partial = Schedule({0: 1, 4: 9}, {}, sink=4)
        with pytest.raises(VerificationError, match="does not cover"):
            verify_schedule(line5, partial, 5)


class TestAttackerParameters:
    def test_weaker_decision_widens_reachability(self, grid5):
        """FollowAnyHeard with R=2 can capture schedules that defeat the
        deterministic first-heard attacker."""
        captured_first = captured_any = 0
        for seed in range(12):
            s = centralized_das_schedule(grid5, seed=seed)
            strict = verify_schedule(grid5, s, 10)
            loose = verify_schedule(
                grid5,
                s,
                10,
                attacker=AttackerSpec(
                    messages_per_move=2, decision=FollowAnyHeard()
                ),
            )
            captured_first += not strict.slp_aware
            captured_any += not loose.slp_aware
        assert captured_any >= captured_first
        assert captured_any > 0

    def test_m2_allows_uphill_detour(self):
        """With M=2 the attacker may take one uphill step per period."""
        # 0(src) - 1 - 2 - 3(sink), with a spur 4 attached to 2.
        topo = Topology.from_edges(
            [(0, 1), (1, 2), (2, 3), (2, 4)], sink=3, source=0
        )
        # 4 has the lowest slot near 2: first-heard goes to 4 (a trap).
        s = Schedule(
            {0: 3, 1: 2, 2: 5, 4: 1, 3: 9},
            {0: 1, 1: 2, 2: 3, 4: 2, 3: None},
            sink=3,
        )
        m1 = verify_schedule(topo, s, 10)
        assert m1.slp_aware  # stuck bouncing at the spur
        m2 = verify_schedule(
            topo,
            s,
            10,
            attacker=AttackerSpec(
                messages_per_move=2,
                moves_per_period=2,
                decision=FollowAnyHeard(),
            ),
        )
        assert not m2.slp_aware  # can escape 4 via the uphill move to 1


class TestMinimumCapture:
    def test_line_capture_period(self, line5):
        assert minimum_capture_period(line5, line_schedule(line5)) == 4

    def test_uncapturable_returns_none(self, line5):
        slots = {0: 5, 1: 4, 2: 3, 3: 2, 4: 9}
        s = Schedule(slots, {}, sink=4)
        assert minimum_capture_period(line5, s) is None


class TestSlpAwareDas:
    def test_definition5_on_line(self, line5):
        baseline = line_schedule(line5)
        # Swap the gradient: decoy everything away from the source.
        protected = Schedule({0: 5, 1: 4, 2: 3, 3: 2, 4: 9}, {}, sink=4)
        # `protected` is not a weak DAS (0 has no later outlet), so
        # Definition 5 condition 1 fails even though capture improves.
        assert not is_slp_aware_das(line5, protected, baseline)

    def test_refined_grid_schedules_mostly_satisfy_definition5(self):
        """Refinement raises capture time in most capturable cases.

        Not every seed improves — when Phase 2 lands next to the source
        the decoy has nowhere useful to go (exactly why the paper
        reports a capture *ratio* rather than zero captures) — but the
        majority must.
        """
        from repro.slp import SlpParameters, build_slp_schedule

        grid = GridTopology(7)
        capturable = improved = 0
        for seed in range(20):
            base = centralized_das_schedule(grid, seed=seed)
            if minimum_capture_period(grid, base) is None:
                continue  # baseline already uncapturable; Def. 5 moot
            build = build_slp_schedule(
                grid, SlpParameters(search_distance=2), seed=seed, baseline=base
            )
            capturable += 1
            improved += is_slp_aware_das(grid, build.schedule, base)
        assert capturable > 0
        assert improved / capturable >= 0.5


class TestAllStarts:
    def test_every_non_source_start_verified(self, line5):
        from repro.verification import verify_schedule_all_starts

        s = line_schedule(line5)
        results = verify_schedule_all_starts(line5, s, safety_period=10)
        assert set(results) == set(line5.nodes) - {line5.source}
        # The gradient pulls every start toward the source on a line.
        assert all(not r.slp_aware for r in results.values())

    def test_adjacent_start_is_fast_capture(self, line5):
        from repro.verification import verify_schedule_all_starts

        s = line_schedule(line5)
        results = verify_schedule_all_starts(line5, s, safety_period=10)
        assert results[1].periods == 1

    def test_safe_schedule_safe_from_everywhere(self, line5):
        from repro.verification import verify_schedule_all_starts

        # Reversed gradient: descent leads to the sink side, never node 0.
        s = Schedule({0: 5, 1: 4, 2: 3, 3: 2, 4: 9}, {}, sink=4)
        results = verify_schedule_all_starts(line5, s, safety_period=20)
        # Node 1 is adjacent to the source, but the gradient points away;
        # its first-heard neighbour is never node 0... except node 1
        # itself hears node 0 (slot 5) only after node 2 (slot 3).
        assert all(r.slp_aware for r in results.values())


class TestTraceGeneration:
    def test_traces_start_at_s0_and_are_paths(self, line5):
        s = line_schedule(line5)
        traces = list(
            generate_attacker_traces(
                line5, s, paper_attacker(), start=4, max_periods=10
            )
        )
        assert traces  # deterministic attacker: exactly one maximal trace
        for trace in traces:
            assert trace[0] == 4
            for a, b in zip(trace, trace[1:]):
                assert line5.are_linked(a, b)

    def test_deterministic_attacker_has_one_trace(self, line5):
        s = line_schedule(line5)
        traces = list(
            generate_attacker_traces(
                line5, s, paper_attacker(), start=4, max_periods=10
            )
        )
        assert len(traces) == 1
        assert traces[0] == (4, 3, 2, 1, 0)

    def test_nondeterministic_attacker_branches(self, grid5, grid5_schedule):
        spec = AttackerSpec(messages_per_move=2, decision=FollowAnyHeard())
        traces = list(
            generate_attacker_traces(
                grid5,
                grid5_schedule,
                spec,
                start=grid5.sink,
                max_periods=3,
                max_traces=50,
            )
        )
        assert len(traces) > 1

    def test_max_traces_bound(self, grid5, grid5_schedule):
        spec = AttackerSpec(messages_per_move=2, decision=FollowAnyHeard())
        traces = list(
            generate_attacker_traces(
                grid5,
                grid5_schedule,
                spec,
                start=grid5.sink,
                max_periods=4,
                max_traces=5,
            )
        )
        assert len(traces) <= 5

    def test_valid_steps_period_accounting(self, line5):
        s = line_schedule(line5)
        # From the sink (slot 5), moving to node 3 (slot 4) is downhill.
        steps = list(
            valid_steps(line5, s, paper_attacker(), line5.sink, 0, 0, ())
        )
        assert len(steps) == 1
        assert steps[0].destination == 3
        assert steps[0].new_period == 1
        assert steps[0].new_moves == 1

    def test_verifier_agrees_with_trace_enumeration(self, grid5):
        """The BFS verifier and the literal trace enumeration must agree
        on capture/no-capture for the deterministic attacker."""
        for seed in range(8):
            s = centralized_das_schedule(grid5, seed=seed)
            result = verify_schedule(grid5, s, 7)
            traces = generate_attacker_traces(
                grid5, s, paper_attacker(), start=grid5.sink, max_periods=7
            )
            trace_capture = any(grid5.source in t for t in traces)
            assert trace_capture == (not result.slp_aware)
