"""Unit tests for the radio medium, channels and noise models."""

import random

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simulator import (
    BernoulliNoise,
    CasinoLabNoise,
    Channel,
    DELIVER,
    DROP,
    Delivery,
    IdealNoise,
    Process,
    SEND,
    Simulator,
)
from repro.topology import LineTopology


class Recorder(Process):
    """Records everything delivered to it."""

    def __init__(self, node):
        super().__init__(node)
        self.received = []

    def on_receive(self, sender, message, time):
        self.received.append((sender, message, time))


class TestChannel:
    def test_fifo_order(self):
        ch = Channel(owner=0)
        ch.enqueue(Delivery(1, "a", 0.0))
        ch.enqueue(Delivery(2, "b", 0.1))
        assert ch.dequeue().message == "a"
        assert ch.dequeue().message == "b"

    def test_dequeue_empty_raises(self):
        with pytest.raises(SimulationError, match="empty channel"):
            Channel(owner=0).dequeue()

    def test_head_peeks(self):
        ch = Channel(owner=0)
        ch.enqueue(Delivery(1, "a", 0.0))
        assert ch.head().message == "a"
        assert len(ch) == 1

    def test_drain(self):
        ch = Channel(owner=0)
        for i in range(3):
            ch.enqueue(Delivery(1, i, 0.0))
        assert [d.message for d in ch.drain()] == [0, 1, 2]
        assert not ch

    def test_clear(self):
        ch = Channel(owner=0)
        ch.enqueue(Delivery(1, "x", 0.0))
        ch.clear()
        assert len(ch) == 0


class TestBroadcast:
    def test_neighbours_receive(self):
        topo = LineTopology(3)
        sim = Simulator(topo)
        procs = {n: Recorder(n) for n in topo.nodes}
        for p in procs.values():
            sim.register_process(p)
        sim.schedule_at(1.0, lambda: sim.radio.broadcast(1, "hello"))
        sim.run()
        assert [m for _, m, _ in procs[0].received] == ["hello"]
        assert [m for _, m, _ in procs[2].received] == ["hello"]
        assert procs[1].received == []  # no self-delivery

    def test_send_and_deliver_traced(self):
        topo = LineTopology(3)
        sim = Simulator(topo)
        for n in topo.nodes:
            sim.register_process(Recorder(n))
        sim.schedule_at(0.5, lambda: sim.radio.broadcast(0, "x"))
        sim.run()
        assert sim.trace.count(SEND) == 1
        assert sim.trace.count(DELIVER) == 1  # node 0 has one neighbour

    def test_detached_node_misses_frames(self):
        topo = LineTopology(3)
        sim = Simulator(topo)
        procs = {n: Recorder(n) for n in topo.nodes}
        for p in procs.values():
            sim.register_process(p)
        sim.radio.detach(2)
        sim.schedule_at(0.5, lambda: sim.radio.broadcast(1, "x"))
        sim.run()
        assert procs[0].received and not procs[2].received

    def test_lossy_link_drops_traced(self):
        topo = LineTopology(2)
        sim = Simulator(topo, noise=BernoulliNoise(1.0 - 1e-12), seed=1)
        procs = {n: Recorder(n) for n in topo.nodes}
        for p in procs.values():
            sim.register_process(p)
        sim.schedule_at(0.5, lambda: sim.radio.broadcast(0, "x"))
        sim.run()
        assert sim.trace.count(DROP) == 1
        assert not procs[1].received

    def test_collision_window(self):
        topo = LineTopology(3)
        sim = Simulator(topo, collision_window=0.01)
        procs = {n: Recorder(n) for n in topo.nodes}
        for p in procs.values():
            sim.register_process(p)
        # Nodes 0 and 2 transmit simultaneously: node 1 receives both
        # frames within the window, so the second one collides.
        sim.schedule_at(1.0, lambda: sim.radio.broadcast(0, "a"))
        sim.schedule_at(1.0, lambda: sim.radio.broadcast(2, "b"))
        sim.run()
        assert len(procs[1].received) == 1


class TestEavesdropping:
    class Spy:
        def __init__(self, location):
            self.location = location
            self.heard = []

        def overhear(self, sender, message, time):
            self.heard.append((sender, message))

    def test_overhears_in_range_only(self):
        topo = LineTopology(4)
        sim = Simulator(topo)
        for n in topo.nodes:
            sim.register_process(Recorder(n))
        spy = self.Spy(location=0)
        sim.radio.attach_eavesdropper(spy)
        sim.schedule_at(0.5, lambda: sim.radio.broadcast(1, "near"))
        sim.schedule_at(0.6, lambda: sim.radio.broadcast(3, "far"))
        sim.run()
        assert spy.heard == [(1, "near")]

    def test_hears_own_location_sender(self):
        topo = LineTopology(3)
        sim = Simulator(topo)
        for n in topo.nodes:
            sim.register_process(Recorder(n))
        spy = self.Spy(location=1)
        sim.radio.attach_eavesdropper(spy)
        sim.schedule_at(0.5, lambda: sim.radio.broadcast(1, "self"))
        sim.run()
        assert spy.heard == [(1, "self")]

    def test_detach_eavesdropper(self):
        topo = LineTopology(3)
        sim = Simulator(topo)
        for n in topo.nodes:
            sim.register_process(Recorder(n))
        spy = self.Spy(location=1)
        sim.radio.attach_eavesdropper(spy)
        sim.radio.detach_eavesdropper(spy)
        sim.schedule_at(0.5, lambda: sim.radio.broadcast(0, "x"))
        sim.run()
        assert spy.heard == []


class TestNoiseModels:
    def test_ideal_always_delivers(self):
        rng = random.Random(0)
        noise = IdealNoise()
        assert all(noise.delivers(0, 1, rng) for _ in range(100))

    def test_bernoulli_rate(self):
        rng = random.Random(0)
        noise = BernoulliNoise(0.3)
        outcomes = [noise.delivers(0, 1, rng) for _ in range(5000)]
        rate = 1 - sum(outcomes) / len(outcomes)
        assert rate == pytest.approx(0.3, abs=0.03)

    def test_bernoulli_validation(self):
        with pytest.raises(ConfigurationError):
            BernoulliNoise(1.0)
        with pytest.raises(ConfigurationError):
            BernoulliNoise(-0.1)

    def test_casino_long_run_rate_matches_expectation(self):
        rng = random.Random(7)
        noise = CasinoLabNoise()
        outcomes = [noise.delivers(0, 1, rng) for _ in range(20000)]
        rate = 1 - sum(outcomes) / len(outcomes)
        assert rate == pytest.approx(noise.expected_loss_rate(), abs=0.01)

    def test_casino_reset_clears_state(self):
        rng = random.Random(0)
        noise = CasinoLabNoise()
        for _ in range(100):
            noise.delivers(0, 1, rng)
        noise.reset()
        assert noise._bad == {}

    def test_casino_validation(self):
        with pytest.raises(ConfigurationError):
            CasinoLabNoise(good_loss=1.5)
        with pytest.raises(ConfigurationError):
            CasinoLabNoise(p_good_to_bad=0.0)

    def test_casino_is_bursty(self):
        """Consecutive losses should exceed the independent-loss rate."""
        rng = random.Random(3)
        noise = CasinoLabNoise()
        outcomes = [not noise.delivers(0, 1, rng) for _ in range(20000)]
        losses = sum(outcomes)
        pairs = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a and b)
        p_loss = losses / len(outcomes)
        p_pair = pairs / (len(outcomes) - 1)
        assert p_pair > p_loss * p_loss  # positive correlation
