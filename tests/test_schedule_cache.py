"""The content-addressed schedule cache: keying, LRU bounds, counters,
and its integration with the experiment runner.

The load-bearing properties: the key is pinned to topology *content*
(mutating one link invalidates), irrelevant inputs stay out of the key
(protectionless schedules are shared across source placements, which is
what makes ``scenario compare`` hit), and a cached sweep is
bit-identical to an uncached one.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    ScheduleCache,
    configure_schedule_cache,
    default_cache,
    default_cache_stats,
    default_schedule_cache,
    reset_default_cache,
    schedule_cache_enabled,
    schedule_key,
    topology_fingerprint,
)
from repro.topology import GridTopology, Topology


def _key(topology, config, seed):
    return schedule_key(
        topology_fingerprint(topology),
        topology,
        config.algorithm,
        seed,
        config.search_distance,
        config.use_distributed,
        config.parameters,
        config.noise,
        seeded=config.seeded_schedule,
        jitter=config.schedule_jitter,
    )


@pytest.fixture
def restore_default_cache():
    """Leave the process-default cache configuration as we found it."""
    yield
    configure_schedule_cache(enabled=True)


class TestTopologyFingerprint:
    def test_same_content_same_fingerprint(self):
        assert topology_fingerprint(GridTopology(5)) == topology_fingerprint(
            GridTopology(5)
        )

    def test_mutating_a_link_invalidates(self, grid5):
        graph = nx.Graph(grid5.graph)
        graph.remove_edge(0, 1)
        mutated = Topology(graph, sink=grid5.sink, source=0, name=grid5.name)
        assert topology_fingerprint(grid5) != topology_fingerprint(mutated)

    def test_sink_is_part_of_the_content(self, grid5):
        moved = Topology(nx.Graph(grid5.graph), sink=0, source=12, name=grid5.name)
        assert topology_fingerprint(grid5) != topology_fingerprint(moved)

    def test_name_is_not_content(self, grid5):
        renamed = Topology(
            nx.Graph(grid5.graph), sink=grid5.sink, source=0, name="other"
        )
        assert topology_fingerprint(grid5) == topology_fingerprint(renamed)


class TestScheduleKey:
    def test_protectionless_ignores_source_and_search_distance(self, grid5):
        cfg = ExperimentConfig(algorithm="protectionless", repeats=1)
        resourced = grid5.with_source(3)
        assert _key(grid5, cfg, 0) == _key(resourced, cfg, 0)
        assert _key(grid5, cfg, 0) == _key(
            grid5, ExperimentConfig(algorithm="protectionless", search_distance=5, repeats=1), 0
        )

    def test_slp_keyed_by_source_and_search_distance(self, grid5):
        cfg = ExperimentConfig(algorithm="slp", search_distance=2, repeats=1)
        assert _key(grid5, cfg, 0) != _key(grid5.with_source(3), cfg, 0)
        wider = ExperimentConfig(algorithm="slp", search_distance=3, repeats=1)
        assert _key(grid5, cfg, 0) != _key(grid5, wider, 0)

    def test_seed_and_link_mutations_invalidate(self, grid5):
        cfg = ExperimentConfig(repeats=1)
        assert _key(grid5, cfg, 0) != _key(grid5, cfg, 1)
        graph = nx.Graph(grid5.graph)
        graph.remove_edge(0, 1)
        mutated = Topology(graph, sink=grid5.sink, source=0)
        assert _key(grid5, cfg, 0) != _key(mutated, cfg, 0)

    def test_noise_only_keys_distributed_builds(self, grid5):
        casino = ExperimentConfig(repeats=1, noise="casino")
        ideal = ExperimentConfig(repeats=1, noise="ideal")
        assert _key(grid5, casino, 0) == _key(grid5, ideal, 0)
        casino_d = ExperimentConfig(repeats=1, noise="casino", use_distributed=True)
        ideal_d = ExperimentConfig(repeats=1, noise="ideal", use_distributed=True)
        assert _key(grid5, casino_d, 0) != _key(grid5, ideal_d, 0)
        assert _key(grid5, casino, 0) != _key(grid5, casino_d, 0)

    def test_unseeded_builds_drop_the_seed_from_the_key(self, grid5):
        """A jitter-free centralised protectionless build is a pure
        function of the topology: every seed maps to one key."""
        canonical = ExperimentConfig(repeats=1, schedule_jitter=False)
        assert not canonical.seeded_schedule
        assert _key(grid5, canonical, 0) == _key(grid5, canonical, 29)
        # Any source of randomness keeps the seed in the key.
        jittered = ExperimentConfig(repeats=1)
        assert _key(grid5, jittered, 0) != _key(grid5, jittered, 1)
        slp = ExperimentConfig(
            algorithm="slp", repeats=1, schedule_jitter=False
        )
        assert slp.seeded_schedule
        assert _key(grid5, slp, 0) != _key(grid5, slp, 1)
        distributed = ExperimentConfig(
            repeats=1, schedule_jitter=False, use_distributed=True
        )
        assert distributed.seeded_schedule

    def test_jitter_flag_is_a_key_component(self, grid5):
        """Same seed, jitter on vs off, must never share a cache entry:
        the builds differ (SLP keeps its seed either way but starts
        from a different Phase 1 baseline, and a jittered seeded
        protectionless build differs from the canonical one)."""
        for algorithm in ("protectionless", "slp"):
            jittered = ExperimentConfig(algorithm=algorithm, repeats=1)
            canonical = ExperimentConfig(
                algorithm=algorithm, repeats=1, schedule_jitter=False
            )
            assert _key(grid5, jittered, 0) != _key(grid5, canonical, 0)
        # ... and jitter-off sweeps actually produce different schedules
        # than jitter-on ones through the runner (the collision the key
        # component prevents).
        runner = ExperimentRunner(grid5, schedule_cache=ScheduleCache())
        jittered = runner.build_schedule(ExperimentConfig(repeats=1), 0)
        canonical = runner.build_schedule(
            ExperimentConfig(repeats=1, schedule_jitter=False), 0
        )
        assert jittered.slots() != canonical.slots()


class TestScheduleCacheLru:
    def test_hit_and_miss_counters(self):
        cache = ScheduleCache(maxsize=4)
        built = []
        cache.get_or_build("k", lambda: built.append(1) or "schedule")
        assert cache.get_or_build("k", lambda: built.append(1) or "schedule") == "schedule"
        assert (cache.hits, cache.misses, len(built)) == (1, 1, 1)
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "preloads": 0,
            "size": 1,
        }
        assert "1 hits / 1 misses" in cache.summary()

    def test_lru_bound_evicts_least_recently_used(self):
        cache = ScheduleCache(maxsize=2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        cache.get_or_build("a", lambda: "A")  # refresh a; b is now LRU
        cache.get_or_build("c", lambda: "C")  # evicts b
        assert len(cache) == 2
        assert cache.get_or_build("b", lambda: "B2") == "B2"  # miss: rebuilt
        assert cache.get_or_build("c", lambda: "never") == "C"  # still cached
        assert (cache.hits, cache.misses) == (2, 4)

    def test_clear_resets_everything(self):
        cache = ScheduleCache()
        cache.get_or_build("a", lambda: "A")
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)
        assert (cache.evictions, cache.preloads) == (0, 0)

    def test_eviction_and_preload_counters(self):
        cache = ScheduleCache(maxsize=2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        cache.get_or_build("c", lambda: "C")  # evicts a
        assert cache.evictions == 1
        cache.preload({"d": "D"})  # installs d, evicts b
        assert (cache.preloads, cache.evictions) == (1, 2)
        # Preload is hit/miss-neutral: nothing was looked up.
        assert (cache.hits, cache.misses) == (0, 3)
        assert "2 evictions, 1 preloads" in cache.summary()

    def test_summary_keeps_short_form_without_evictions(self):
        cache = ScheduleCache()
        cache.get_or_build("a", lambda: "A")
        assert "evictions" not in cache.summary()

    def test_maxsize_validated(self):
        with pytest.raises(ConfigurationError):
            ScheduleCache(maxsize=0)


class TestRunnerIntegration:
    def test_build_schedule_memoises(self, grid5):
        cache = ScheduleCache()
        runner = ExperimentRunner(grid5, schedule_cache=cache)
        cfg = ExperimentConfig(repeats=1)
        first = runner.build_schedule(cfg, seed=7)
        second = runner.build_schedule(cfg, seed=7)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_content_addressing_shares_across_runner_instances(self, grid5):
        cache = ScheduleCache()
        cfg = ExperimentConfig(repeats=1)
        a = ExperimentRunner(grid5, schedule_cache=cache).build_schedule(cfg, 0)
        b = ExperimentRunner(GridTopology(5), schedule_cache=cache).build_schedule(
            cfg, 0
        )
        assert a is b
        assert cache.hits == 1

    def test_config_opt_out_bypasses_the_cache(self, grid5):
        cache = ScheduleCache()
        runner = ExperimentRunner(grid5, schedule_cache=cache)
        cfg = ExperimentConfig(repeats=1, use_schedule_cache=False)
        first = runner.build_schedule(cfg, 0)
        second = runner.build_schedule(cfg, 0)
        assert first is not second
        assert first == second  # deterministic either way
        assert (cache.hits, cache.misses) == (0, 0)

    def test_process_wide_kill_switch(self, grid5, restore_default_cache):
        before = default_schedule_cache().stats()
        configure_schedule_cache(enabled=False)
        assert not schedule_cache_enabled()
        ExperimentRunner(grid5).build_schedule(ExperimentConfig(repeats=1), 99)
        assert default_schedule_cache().stats() == before
        configure_schedule_cache(enabled=True)
        assert schedule_cache_enabled()

    def test_cached_sweep_equals_uncached_sweep(self, grid5):
        cfg = ExperimentConfig(repeats=4, noise="casino")
        cached = ExperimentRunner(grid5, schedule_cache=ScheduleCache()).run(cfg)
        uncached = ExperimentRunner(grid5).run(
            ExperimentConfig(repeats=4, noise="casino", use_schedule_cache=False)
        )
        assert cached.results == uncached.results

    def test_link_mutation_misses_through_the_runner(self, grid5):
        cache = ScheduleCache()
        cfg = ExperimentConfig(repeats=1)
        ExperimentRunner(grid5, schedule_cache=cache).build_schedule(cfg, 0)
        graph = nx.Graph(grid5.graph)
        graph.remove_edge(0, 1)
        mutated = Topology(graph, sink=grid5.sink, source=0, name="mutated")
        ExperimentRunner(mutated, schedule_cache=cache).build_schedule(cfg, 0)
        assert cache.hits == 0
        assert cache.misses == 2


class TestUnseededBuilds:
    """Satellite: a build that draws no randomness is cached once per
    topology, not once per seed."""

    def test_jitter_free_schedules_identical_across_seeds(self, grid5):
        """Differential proof, cache out of the loop entirely."""
        runner = ExperimentRunner(grid5)
        cfg = ExperimentConfig(
            repeats=1, schedule_jitter=False, use_schedule_cache=False
        )
        schedules = [runner.build_schedule(cfg, seed) for seed in range(5)]
        assert all(s.slots() == schedules[0].slots() for s in schedules[1:])
        assert all(
            s.parent_of(n) == schedules[0].parent_of(n)
            for s in schedules[1:]
            for n in grid5.nodes
        )

    def test_cold_sweep_logs_one_miss(self, grid5):
        cache = ScheduleCache()
        runner = ExperimentRunner(grid5, schedule_cache=cache)
        cfg = ExperimentConfig(repeats=1, schedule_jitter=False)
        for seed in range(30):
            runner.build_schedule(cfg, seed)
        assert (cache.hits, cache.misses) == (29, 1)

    def test_jittered_sweep_still_misses_per_seed(self, grid5):
        cache = ScheduleCache()
        runner = ExperimentRunner(grid5, schedule_cache=cache)
        cfg = ExperimentConfig(repeats=1)
        for seed in range(5):
            runner.build_schedule(cfg, seed)
        assert (cache.hits, cache.misses) == (0, 5)

    def test_slp_stays_seeded_without_jitter(self, grid5):
        """Phases 2/3 draw tie-breaks from the seed, so SLP builds keep
        per-seed cache entries even with jitter off."""
        cache = ScheduleCache()
        runner = ExperimentRunner(grid5, schedule_cache=cache)
        cfg = ExperimentConfig(
            algorithm="slp", repeats=1, schedule_jitter=False
        )
        for seed in range(3):
            runner.build_schedule(cfg, seed)
        assert cache.misses == 3


class TestDefaultCacheAccessors:
    def test_default_cache_is_the_process_cache(self):
        assert default_cache() is default_schedule_cache()

    def test_default_cache_stats_snapshot(self, grid5):
        before = default_cache_stats()
        assert set(before) == {"hits", "misses", "evictions", "preloads", "size"}
        ExperimentRunner(grid5).build_schedule(
            ExperimentConfig(repeats=1), seed=12345
        )
        after = default_cache_stats()
        assert after["hits"] + after["misses"] > before["hits"] + before["misses"]

    def test_reset_default_cache(self, grid5):
        ExperimentRunner(grid5).build_schedule(
            ExperimentConfig(repeats=1), seed=54321
        )
        reset_default_cache()
        assert default_cache_stats() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "preloads": 0,
            "size": 0,
        }


class TestScheduleStore:
    """Satellite: the optional shared on-disk tier under the LRU."""

    def _key(self, grid5):
        cfg = ExperimentConfig(repeats=1, schedule_jitter=False)
        return _key(grid5, cfg, 0)

    def test_round_trip_and_counters(self, tmp_path, grid5, grid5_schedule):
        from repro.experiments import ScheduleStore

        store = ScheduleStore(tmp_path / "schedules.sqlite")
        key = self._key(grid5)
        assert store.get(key) is None
        assert (store.hits, store.misses) == (0, 1)
        store.put(key, grid5_schedule)
        fetched = store.get(key)
        assert (store.hits, store.misses) == (1, 1)
        assert fetched.slots() == grid5_schedule.slots()
        assert all(
            fetched.parent_of(n) == grid5_schedule.parent_of(n)
            for n in grid5.nodes
        )

    def test_first_writer_wins_and_publish_is_idempotent(
        self, tmp_path, grid5, grid5_schedule
    ):
        from repro.experiments import ScheduleStore

        store = ScheduleStore(tmp_path / "schedules.sqlite")
        key = self._key(grid5)
        store.put(key, grid5_schedule)
        store.put(key, grid5_schedule)  # the racing duplicate write
        assert len(store) == 1
        # A second store object over the same file sees the row — the
        # cross-process sharing the tier exists for.
        other = ScheduleStore(tmp_path / "schedules.sqlite")
        assert other.get(key) is not None

    def test_corrupt_row_reads_as_absent(self, tmp_path, grid5):
        import sqlite3

        from repro.experiments import ScheduleStore
        from repro.experiments.schedule_store import _TABLE, store_key

        store = ScheduleStore(tmp_path / "schedules.sqlite")
        key = self._key(grid5)
        with sqlite3.connect(store.path) as conn:
            conn.execute(
                f"INSERT INTO {_TABLE} (key, schedule) VALUES (?, ?)",
                (store_key(key), b"torn write, not a pickle"),
            )
        assert store.get(key) is None  # rebuilt by the caller, not a crash
        assert store.misses == 1

    def test_second_process_fetches_instead_of_rebuilding(
        self, tmp_path, grid5
    ):
        """Two caches over one store: the first builds and publishes,
        the second fetches — and the stats stay truthful (`misses`
        means builds performed, a store fetch is a `store_hit`)."""
        from repro.experiments import ScheduleStore

        store = ScheduleStore(tmp_path / "schedules.sqlite")
        cfg = ExperimentConfig(repeats=1)

        first = ScheduleCache()
        first.attach_store(store)
        ExperimentRunner(grid5, schedule_cache=first).build_schedule(cfg, 0)
        assert first.stats()["misses"] == 1  # the one real build

        second = ScheduleCache()
        second.attach_store(ScheduleStore(tmp_path / "schedules.sqlite"))
        runner = ExperimentRunner(grid5, schedule_cache=second)
        fetched = runner.build_schedule(cfg, 0)
        stats = second.stats()
        assert stats["misses"] == 0  # no build happened here
        assert stats["store_hits"] == 1
        assert "store hits" in second.summary()
        # ...and the fetched schedule is the real thing: a third lookup
        # is a plain in-memory hit on the installed entry.
        assert runner.build_schedule(cfg, 0) is fetched
        assert second.stats()["hits"] == 1

    def test_store_is_opt_in_and_detachable(self, tmp_path, restore_default_cache):
        cache = ScheduleCache()
        assert cache.store is None  # the LRU stays the default tier
        assert "store_hits" not in cache.stats()
        # configure_schedule_cache accepts a path and builds the store;
        # reset_default_cache detaches it again.
        configure_schedule_cache(store=tmp_path / "schedules.sqlite")
        assert default_schedule_cache().store is not None
        reset_default_cache()
        assert default_schedule_cache().store is None

    def test_store_key_is_content_addressed(self, grid5):
        from repro.experiments import store_key

        cfg = ExperimentConfig(repeats=1)
        a = store_key(_key(grid5, cfg, 0))
        assert a == store_key(_key(GridTopology(5), cfg, 0))
        assert a != store_key(_key(grid5, cfg, 1))
