"""Noise-model determinism: the block-draw API consumes exactly the
same RNG stream as the per-call path.

The fast kernel's radio path calls ``delivers_block`` once per
broadcast instead of ``delivers`` once per receiver; the bit-identity
of fast-kernel runs rests on the two forms drawing the same random
numbers in the same order.  These tests pin that contract across 1k+
draws, including ``reset()`` between runs and per-link burst state.
"""

from __future__ import annotations

import random
from itertools import cycle

import pytest

from repro.simulator import BernoulliNoise, CasinoLabNoise, IdealNoise
from repro.simulator.noise import NoiseModel

#: Enough (sender, receivers) broadcasts to exceed 1k draws per model.
def _broadcast_plan(links=700):
    sizes = cycle((1, 2, 3, 4, 0, 5))
    plan, link = [], 0
    while link < links:
        size = next(sizes)
        sender = link % 37
        plan.append((sender, tuple(range(link, link + size))))
        link += max(size, 1)
    return plan


def _drive(model_factory, use_block: bool, with_reset: bool):
    """Run the plan through one freshly built model; return outcomes and
    the RNG's next draws (proving identical stream consumption)."""
    model = model_factory()
    rng = random.Random(0xC0FFEE)
    outcomes = []
    for round_index in range(2):
        if with_reset and round_index:
            model.reset()
        for sender, receivers in _broadcast_plan():
            if use_block:
                outcomes.extend(model.delivers_block(sender, receivers, rng))
            else:
                outcomes.extend(
                    model.delivers(sender, r, rng) for r in receivers
                )
    return outcomes, [rng.random() for _ in range(5)]


class _OnlyDelivers(NoiseModel):
    """A third-party-style model overriding only the per-call hook; the
    base-class block default must keep it stream-identical."""

    def delivers(self, sender, receiver, rng):
        return rng.random() >= 0.25


MODELS = [
    ("ideal", IdealNoise),
    ("bernoulli", lambda: BernoulliNoise(0.2)),
    ("casino", CasinoLabNoise),
    ("casino-hot", lambda: CasinoLabNoise(p_good_to_bad=0.4, p_bad_to_good=0.3)),
    ("delivers-only-subclass", _OnlyDelivers),
]


class TestBlockDrawEquivalence:
    @pytest.mark.parametrize("with_reset", [False, True], ids=["no-reset", "reset"])
    @pytest.mark.parametrize("name,factory", MODELS, ids=[m[0] for m in MODELS])
    def test_block_consumes_the_per_call_stream(self, name, factory, with_reset):
        per_call = _drive(factory, use_block=False, with_reset=with_reset)
        block = _drive(factory, use_block=True, with_reset=with_reset)
        # Same per-receiver outcomes AND the RNG left in the same state.
        assert per_call == block

    def test_ideal_never_draws(self):
        rng = random.Random(1)
        before = rng.getstate()
        assert IdealNoise().delivers_block(0, (1, 2, 3), rng) == [True] * 3
        assert rng.getstate() == before

    def test_casino_block_advances_per_link_state(self):
        """The burst chain is shared between forms: interleaving them
        mid-run still yields one consistent stream."""
        a, b = CasinoLabNoise(), CasinoLabNoise()
        rng_a, rng_b = random.Random(7), random.Random(7)
        for step in range(300):
            sender, receivers = step % 5, (step % 11, (step + 1) % 11)
            if step % 2:
                out_a = a.delivers_block(sender, receivers, rng_a)
            else:
                out_a = [a.delivers(sender, r, rng_a) for r in receivers]
            out_b = [b.delivers(sender, r, rng_b) for r in receivers]
            assert out_a == out_b
        assert rng_a.random() == rng_b.random()

    def test_reset_clears_burst_state(self):
        noise = CasinoLabNoise(p_good_to_bad=1.0, p_bad_to_good=0.01)
        rng = random.Random(3)
        noise.delivers_block(0, tuple(range(50)), rng)
        assert noise._bad  # some links entered the bad state
        noise.reset()
        assert not noise._bad
