"""Unit tests for capture time and safety period (Def. 4, Eq. 1)."""

import pytest

from repro.core import (
    PAPER_SAFETY_FACTOR,
    capture_time_periods,
    capture_time_seconds,
    safety_period,
    simulation_time_bound,
)
from repro.errors import ConfigurationError
from repro.topology import paper_grid


class TestCaptureTime:
    def test_seconds_formula(self, line5):
        # Δss = 4, so C = period * 5.
        assert capture_time_seconds(line5, 5.5) == pytest.approx(27.5)

    def test_periods_formula(self, line5):
        assert capture_time_periods(line5) == 5

    def test_paper_grid_11(self):
        grid = paper_grid(11)
        assert capture_time_periods(grid) == 11
        assert capture_time_seconds(grid, 5.5) == pytest.approx(60.5)

    def test_rejects_bad_period(self, line5):
        with pytest.raises(ConfigurationError, match="positive"):
            capture_time_seconds(line5, 0.0)


class TestSafetyPeriod:
    def test_paper_factor(self, line5):
        sp = safety_period(line5, 5.5)
        assert sp.factor == PAPER_SAFETY_FACTOR
        assert sp.seconds == pytest.approx(1.5 * 27.5)
        assert sp.periods == 8  # ceil(1.5 * 5)

    def test_periods_round_up(self):
        grid = paper_grid(11)  # Δss + 1 = 11
        sp = safety_period(grid, 5.5)
        assert sp.periods == 17  # ceil(16.5)

    def test_capture_time_recorded(self, line5):
        sp = safety_period(line5, 2.0)
        assert sp.capture_time_seconds == pytest.approx(10.0)

    def test_factor_bounds_enforced(self, line5):
        for bad in (0.5, 1.0, 2.0, 3.0):
            with pytest.raises(ConfigurationError, match="Cs"):
                safety_period(line5, 5.5, factor=bad)

    def test_custom_factor(self, line5):
        sp = safety_period(line5, 5.5, factor=1.2)
        assert sp.periods == 6  # ceil(1.2 * 5)


class TestSimulationBound:
    def test_paper_formula(self):
        # §VI-B: nodes * source period * 4.
        assert simulation_time_bound(121, 5.5) == pytest.approx(121 * 5.5 * 4)

    def test_custom_factor(self):
        assert simulation_time_bound(10, 2.0, factor=2) == pytest.approx(40.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulation_time_bound(0, 5.5)
        with pytest.raises(ConfigurationError):
            simulation_time_bound(5, -1.0)
        with pytest.raises(ConfigurationError):
            simulation_time_bound(5, 5.5, factor=0)
