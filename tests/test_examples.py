"""Smoke tests: every shipped example runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must produce output"


def test_examples_present():
    """The deliverable demands at least three runnable examples."""
    assert len(EXAMPLES) >= 3
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
