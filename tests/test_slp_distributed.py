"""Tests for the distributed 3-phase SLP protocol."""

import pytest

from repro.core import check_weak_das
from repro.das import DasProtocolConfig
from repro.errors import ProtocolError
from repro.slp import SlpProtocolConfig, run_slp_setup
from repro.topology import GridTopology


def fast_config(setup=35, refine=12, sd=2, cl=3) -> SlpProtocolConfig:
    return SlpProtocolConfig(
        das=DasProtocolConfig(setup_periods=setup),
        search_distance=sd,
        change_length=cl,
        refinement_periods=refine,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            SlpProtocolConfig(search_distance=0)
        with pytest.raises(ProtocolError):
            SlpProtocolConfig(change_length=0)
        with pytest.raises(ProtocolError):
            SlpProtocolConfig(refinement_periods=1)


class TestDistributedSlp:
    def test_produces_weak_das(self, grid5):
        for seed in range(3):
            result = run_slp_setup(grid5, config=fast_config(), seed=seed)
            check = check_weak_das(grid5, result.schedule)
            assert check.ok, f"seed {seed}: {check.summary()}"

    def test_search_and_change_messages_sent(self, grid5):
        result = run_slp_setup(grid5, config=fast_config(), seed=1)
        assert result.search_messages >= 1
        assert result.change_messages >= 1

    def test_start_node_selected(self, grid5):
        result = run_slp_setup(grid5, config=fast_config(), seed=1)
        assert result.start_node is not None
        assert result.start_node in grid5

    def test_decoy_nodes_recruited(self, grid5):
        result = run_slp_setup(grid5, config=fast_config(), seed=1)
        assert 1 <= len(result.decoy_path) <= 3

    def test_overhead_is_negligible(self, grid5):
        """The paper's claim: search + change messages are a rounding
        error against the Phase 1 dissemination volume."""
        result = run_slp_setup(grid5, config=fast_config(), seed=2)
        extra = result.search_messages + result.change_messages
        assert extra < 0.05 * result.messages_sent

    def test_default_config_uses_table1_change_length(self, grid7):
        result = run_slp_setup(grid7, seed=0)
        assert result.schedule.covers(grid7)

    def test_reproducible(self, grid5):
        a = run_slp_setup(grid5, config=fast_config(), seed=7)
        b = run_slp_setup(grid5, config=fast_config(), seed=7)
        assert a.schedule == b.schedule
        assert a.decoy_path == b.decoy_path

    def test_schedule_differs_from_phase1_only(self, grid5):
        """Refinement must actually change some slots."""
        from repro.das import run_das_setup

        das_only = run_das_setup(
            grid5, config=DasProtocolConfig(setup_periods=35), seed=3
        ).schedule
        slp = run_slp_setup(grid5, config=fast_config(setup=35), seed=3).schedule
        base = das_only.compressed().slots()
        refined = slp.compressed().slots()
        assert base != refined
