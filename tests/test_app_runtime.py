"""Tests for the operational phase: convergecast + eavesdropper."""

import pytest

from repro.app import run_operational_phase
from repro.attacker import AttackerSpec, FollowAnyHeard
from repro.core import Schedule, safety_period
from repro.das import centralized_das_schedule
from repro.errors import ConfigurationError
from repro.mac import TdmaFrame
from repro.simulator import BernoulliNoise, CasinoLabNoise
from repro.topology import GridTopology, LineTopology
from repro.verification import verify_schedule


def line_schedule(line: LineTopology) -> Schedule:
    n = line.length
    slots = {i: i + 1 for i in range(n)}
    parents = {i: i + 1 for i in range(n - 1)}
    parents[n - 1] = None
    return Schedule(slots, parents, sink=n - 1)


class TestAggregation:
    def test_perfect_aggregation_under_ideal_links(self, line5):
        result = run_operational_phase(line5, line_schedule(line5), max_periods=4)
        assert result.aggregation_ratio == pytest.approx(1.0)

    def test_grid_aggregation_complete(self, grid5, grid5_schedule):
        result = run_operational_phase(grid5, grid5_schedule, max_periods=3)
        assert result.aggregation_ratio == pytest.approx(1.0)

    def test_noise_degrades_aggregation(self, grid5, grid5_schedule):
        lossy = run_operational_phase(
            grid5,
            grid5_schedule,
            noise=BernoulliNoise(0.2),
            seed=1,
            max_periods=4,
        )
        assert lossy.aggregation_ratio < 1.0

    def test_every_node_transmits_once_per_period(self, line5):
        result = run_operational_phase(line5, line_schedule(line5), max_periods=3)
        # 4 senders (sink never transmits) x 3 periods.
        assert result.messages_sent == 4 * 3


class TestCapture:
    def test_line_gradient_is_captured(self, line5):
        result = run_operational_phase(line5, line_schedule(line5))
        assert result.captured
        assert result.capture_period is not None
        assert result.attacker_path[0] == line5.sink
        assert result.attacker_path[-1] == line5.source

    def test_capture_stops_run_early(self, line5):
        result = run_operational_phase(line5, line_schedule(line5))
        assert result.periods_run <= result.safety_periods

    def test_reversed_gradient_survives(self, line5):
        s = Schedule({0: 5, 1: 4, 2: 3, 3: 2, 4: 9}, {}, sink=4)
        result = run_operational_phase(line5, s)
        assert result.survived
        assert result.periods_run == result.safety_periods

    def test_runtime_agrees_with_verifier_under_ideal_links(self, grid5):
        frame = TdmaFrame()
        delta = safety_period(grid5, frame.period_length).periods
        for seed in range(10):
            schedule = centralized_das_schedule(grid5, seed=seed)
            run = run_operational_phase(grid5, schedule, seed=seed)
            verdict = verify_schedule(grid5, schedule, delta)
            assert run.captured == (not verdict.slp_aware), f"seed {seed}"

    def test_attacker_path_is_connected(self, grid5, grid5_schedule):
        result = run_operational_phase(grid5, grid5_schedule, seed=0)
        path = result.attacker_path
        for a, b in zip(path, path[1:]):
            assert grid5.are_linked(a, b)

    def test_custom_attacker_start(self, line5):
        result = run_operational_phase(
            line5, line_schedule(line5), attacker_start=1
        )
        assert result.attacker_path[0] == 1
        assert result.captured  # one hop from the source

    def test_weaker_attacker_spec(self, grid5, grid5_schedule):
        spec = AttackerSpec(messages_per_move=2, decision=FollowAnyHeard())
        result = run_operational_phase(
            grid5, grid5_schedule, attacker=spec, seed=3
        )
        assert result.periods_run >= 1  # runs to completion either way


class TestConfiguration:
    def test_safety_period_budget(self, line5):
        # Δss = 4 -> ceil(1.5 * 5) = 8 periods.
        s = Schedule({0: 5, 1: 4, 2: 3, 3: 2, 4: 9}, {}, sink=4)
        result = run_operational_phase(line5, s)
        assert result.safety_periods == 8

    def test_max_periods_override(self, line5):
        s = Schedule({0: 5, 1: 4, 2: 3, 3: 2, 4: 9}, {}, sink=4)
        result = run_operational_phase(line5, s, max_periods=2)
        assert result.periods_run == 2

    def test_zero_periods_rejected(self, line5):
        with pytest.raises(ConfigurationError, match="at least one period"):
            run_operational_phase(line5, line_schedule(line5), max_periods=0)

    def test_frame_widens_for_large_schedules(self, line5):
        # 150 distinct slots exceed the default 100-slot frame.
        big = Schedule(
            {i: (i + 1) * 30 for i in range(5)},
            {i: i + 1 for i in range(4)},
            sink=4,
        )
        result = run_operational_phase(line5, big, max_periods=1)
        assert result.periods_run == 1

    def test_total_loss_prevents_capture(self):
        """A deaf attacker (every frame lost) never moves, so it never
        captures — moderate loss, by contrast, may *divert* the attacker
        onto capturing paths, which is exactly the run-to-run variance
        the evaluation relies on."""
        grid = GridTopology(5)
        for seed in range(6):
            schedule = centralized_das_schedule(grid, seed=seed)
            result = run_operational_phase(
                grid, schedule, noise=BernoulliNoise(1.0 - 1e-12), seed=seed
            )
            assert not result.captured
            assert result.attacker_path == (grid.sink,)

    def test_reproducible_runs(self, grid5, grid5_schedule):
        a = run_operational_phase(
            grid5, grid5_schedule, noise=CasinoLabNoise(), seed=11
        )
        b = run_operational_phase(
            grid5, grid5_schedule, noise=CasinoLabNoise(), seed=11
        )
        assert a.attacker_path == b.attacker_path
        assert a.captured == b.captured
