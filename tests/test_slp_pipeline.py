"""Tests for the centralised 3-phase pipeline and its parameters."""

import pytest

from repro.core import check_strong_das, check_weak_das
from repro.das import centralized_das_schedule
from repro.errors import ConfigurationError
from repro.slp import (
    PAPER_SEARCH_DISTANCES,
    SlpParameters,
    build_slp_schedule,
    default_change_length,
)
from repro.topology import GridTopology, paper_grid


class TestParameters:
    def test_paper_search_distances(self):
        assert PAPER_SEARCH_DISTANCES == (3, 5)

    def test_default_change_length_formula(self):
        grid = paper_grid(11)  # Δss = 10
        assert default_change_length(grid, 3) == 7
        assert default_change_length(grid, 5) == 5

    def test_change_length_clamped_to_one(self, grid5):
        # Δss = 4, SD = 4 -> clamp at 1.
        assert default_change_length(grid5, 4) == 1
        assert default_change_length(grid5, 10) == 1

    def test_resolved_change_length(self, grid7):
        assert SlpParameters(3).resolved_change_length(grid7) == max(
            1, grid7.source_sink_distance() - 3
        )
        assert SlpParameters(3, change_length=2).resolved_change_length(grid7) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlpParameters(search_distance=0)
        with pytest.raises(ConfigurationError):
            SlpParameters(search_distance=3, change_length=0)


class TestBuild:
    def test_refined_schedule_is_weak_das(self, grid7):
        for seed in range(6):
            build = build_slp_schedule(grid7, SlpParameters(3), seed=seed)
            result = check_weak_das(grid7, build.schedule)
            assert result.ok, f"seed {seed}: {result.summary()}"

    def test_baseline_is_strong_das(self, grid7):
        build = build_slp_schedule(grid7, SlpParameters(3), seed=0)
        assert check_strong_das(grid7, build.baseline).ok

    def test_supplied_baseline_is_used(self, grid7):
        base = centralized_das_schedule(grid7, seed=42)
        build = build_slp_schedule(grid7, seed=0, baseline=base)
        assert build.baseline is base

    def test_reproducible(self, grid7):
        a = build_slp_schedule(grid7, SlpParameters(3), seed=5)
        b = build_slp_schedule(grid7, SlpParameters(3), seed=5)
        assert a.schedule == b.schedule
        assert a.search == b.search

    def test_slots_changed_counts_refinement_footprint(self, grid7):
        build = build_slp_schedule(grid7, SlpParameters(3), seed=1)
        assert build.slots_changed >= len(build.refinement.decoy_path)
        assert build.slots_changed < grid7.num_nodes

    def test_default_parameters(self, grid7):
        build = build_slp_schedule(grid7, seed=0)
        assert build.search.path  # search ran with SD = 3 default
