"""Tests for Phase 2 — the node locator."""

import random

import pytest

from repro.das import centralized_das_schedule
from repro.errors import ProtocolError
from repro.slp import locate_redirection_node
from repro.topology import GridTopology, LineTopology


class TestSearch:
    def test_path_starts_at_sink(self, grid7):
        schedule = centralized_das_schedule(grid7, seed=0)
        result = locate_redirection_node(grid7, schedule, search_distance=3)
        assert result.path[0] == grid7.sink

    def test_path_is_connected(self, grid7):
        schedule = centralized_das_schedule(grid7, seed=1)
        result = locate_redirection_node(grid7, schedule, search_distance=3)
        for a, b in zip(result.path, result.path[1:]):
            assert grid7.are_linked(a, b)

    def test_start_node_is_path_end(self, grid7):
        schedule = centralized_das_schedule(grid7, seed=2)
        result = locate_redirection_node(grid7, schedule, search_distance=3)
        assert result.start_node == result.path[-1]
        assert result.arrived_from == result.path[-2]

    def test_start_node_has_spare_parent(self, grid7):
        """The selected node must be able to host a redirection."""
        for seed in range(8):
            schedule = centralized_das_schedule(grid7, seed=seed)
            result = locate_redirection_node(grid7, schedule, search_distance=3)
            parent = schedule.parent_of(result.start_node)
            spares = [
                m
                for m in grid7.shortest_path_children(result.start_node)
                if m != parent
                and m != result.arrived_from
                and m != grid7.sink
            ]
            assert spares, f"seed {seed}: start node has no spare parent"

    def test_search_follows_attacker_prediction(self, grid7):
        """The first SD hops coincide with the slot-gradient descent."""
        schedule = centralized_das_schedule(grid7, seed=3)
        result = locate_redirection_node(grid7, schedule, search_distance=2)
        cur = grid7.sink
        for expected in result.path[1:3]:
            nbrs = [m for m in grid7.neighbours(cur) if m != grid7.sink]
            nxt = min(nbrs, key=lambda m: (schedule.slot_of(m), m))
            assert nxt == expected
            cur = nxt

    def test_from_set_covers_path(self, grid7):
        schedule = centralized_das_schedule(grid7, seed=4)
        result = locate_redirection_node(grid7, schedule, search_distance=3)
        assert result.from_set == frozenset(result.path)

    def test_search_distance_validation(self, grid7):
        schedule = centralized_das_schedule(grid7, seed=0)
        with pytest.raises(ProtocolError, match="at least 1"):
            locate_redirection_node(grid7, schedule, search_distance=0)

    def test_line_topology_has_no_redirection_host(self):
        """A pure line offers no spare parents anywhere: the search must
        fail loudly instead of looping."""
        line = LineTopology(8)
        schedule = centralized_das_schedule(line, seed=0)
        with pytest.raises(ProtocolError):
            locate_redirection_node(line, schedule, search_distance=2)

    def test_deterministic_given_rng(self, grid7):
        schedule = centralized_das_schedule(grid7, seed=5)
        a = locate_redirection_node(
            grid7, schedule, 3, rng=random.Random(1)
        )
        b = locate_redirection_node(
            grid7, schedule, 3, rng=random.Random(1)
        )
        assert a == b

    def test_longer_search_goes_deeper(self, grid7):
        schedule = centralized_das_schedule(grid7, seed=6)
        short = locate_redirection_node(grid7, schedule, search_distance=1)
        long = locate_redirection_node(grid7, schedule, search_distance=4)
        assert len(long.path) >= len(short.path)
