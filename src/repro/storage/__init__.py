"""Crash-consistent storage primitives (see :mod:`repro.storage.io`).

Every on-disk artefact the repo produces — checkpoint lines, result
blobs, telemetry exports, scenario/report files, bench artifacts —
flows through this package's two write primitives, which is what makes
the disk-fault chaos drill (``FaultPlan`` storage kinds) and the
``repro service fsck`` audit exhaustive rather than per-writer.
"""

from .io import (
    FSYNC_ENV,
    atomic_write_bytes,
    atomic_write_text,
    durable_append,
    fsync_enabled,
)

__all__ = [
    "FSYNC_ENV",
    "atomic_write_bytes",
    "atomic_write_text",
    "durable_append",
    "fsync_enabled",
]
