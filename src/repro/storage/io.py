"""Crash-consistent durable IO — the one seam every repo write crosses.

The reliability contract of the checkpoint/service stack ("kill -9
anywhere, restart, reconverge to byte-identical reports") is only as
strong as its weakest write.  This module is where the repo's write
discipline lives, in exactly two primitives:

:func:`atomic_write_bytes` / :func:`atomic_write_text`
    Whole-artefact replacement (result blobs, telemetry exports,
    scenario/report files, BENCH json).  Tempfile in the *target*
    directory → write → flush → ``fsync`` → ``os.replace`` → directory
    ``fsync``.  Readers can never observe a half-written artefact: the
    path either holds the old bytes or the new bytes, across any crash.

:func:`durable_append`
    Log-structured growth (checkpoint lines).  Opens ``a+b``, welds a
    torn trailing line from a previous crash (a missing final newline
    gets one *before* the new record, so the new record is never
    corrupted by the old one's debris), writes the record in a single
    ``write`` call, flushes, and — by default — ``fsync``\\ s.  A crash
    mid-append loses at most the line being written, and the welding
    plus the checkpoint loader's skip-corrupt-lines policy make that
    loss recoverable instead of contagious.

Every ``OSError`` escaping either primitive is wrapped in a typed
:class:`~repro.errors.StorageError` so callers up the stack (CLI exit
codes, the service's 503-while-degraded answer) can tell "the disk
failed us" apart from ordinary sweep failures.

Fault injection
---------------
The storage chaos kinds of :class:`~repro.experiments.faults.FaultPlan`
(``torn_writes``, ``short_writes``, ``enospc_writes``,
``readonly_writes``) are injected *inside* this seam — in
:func:`_write_payload`, the one place both primitives push bytes at the
OS — so migrating a writer onto the seam automatically puts it under
the disk-chaos drill.

``fsync`` policy
----------------
``fsync=None`` (the default everywhere) defers to the
``REPRO_DURABLE_FSYNC`` environment variable: set it to ``0`` to trade
power-loss durability for speed (process-crash consistency is kept —
the atomic rename and the welded append do not depend on fsync).
PERFORMANCE.md records the measured cost.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from ..errors import StorageError, storage_failure

__all__ = [
    "FSYNC_ENV",
    "atomic_write_bytes",
    "atomic_write_text",
    "durable_append",
    "fsync_enabled",
]

#: Set to ``0`` to disable fsync on durable writes (crash consistency
#: is preserved; power-loss durability is not).
FSYNC_ENV = "REPRO_DURABLE_FSYNC"


def fsync_enabled() -> bool:
    """The process-wide fsync default (see :data:`FSYNC_ENV`)."""
    return os.environ.get(FSYNC_ENV, "1") != "0"


def _active_plan():
    # Imported lazily: repro.storage must stay importable before (and
    # by) repro.experiments without a cycle.
    from ..experiments.faults import active_fault_plan

    return active_fault_plan()


def _write_payload(handle, data: bytes, path: Path) -> None:
    """Push ``data`` at the OS — the storage-chaos injection point.

    An active :class:`FaultPlan` whose ``storage_fault`` matches
    ``path`` fires here: ``torn`` writes half the payload and kills the
    process exactly as SIGKILL mid-write would land; ``short`` silently
    truncates the write (the caller believes it succeeded); ``enospc``
    writes half and raises ``ENOSPC``; ``readonly`` raises ``EROFS``
    before writing anything.
    """
    plan = _active_plan()
    if plan is not None:
        data = plan.storage_write_fault(path, handle, data)
    handle.write(data)


def _fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory after a rename into it.

    Failure here (some filesystems refuse ``O_RDONLY`` dir fsync) only
    weakens power-loss durability of the *rename*; the file contents
    are already synced, so it is not worth failing the write over.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: Union[str, Path], data: bytes, fsync: Optional[bool] = None
) -> None:
    """Atomically replace ``path`` with ``data``.

    The temporary file lives in the target directory (``os.replace``
    must not cross filesystems) under a ``.<name>.tmp-<pid>`` name that
    ``repro service fsck`` recognises as crash debris.  On any failure
    the temporary is unlinked and the error is raised as a
    :class:`~repro.errors.StorageError`; the target path is untouched.
    """
    path = Path(path)
    if fsync is None:
        fsync = fsync_enabled()
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "wb") as handle:
            _write_payload(handle, data, path)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise storage_failure("atomic_write", path, exc) from exc
    if fsync:
        _fsync_dir(path.parent)


def atomic_write_text(
    path: Union[str, Path],
    text: str,
    fsync: Optional[bool] = None,
    encoding: str = "utf-8",
) -> None:
    """:func:`atomic_write_bytes` for text payloads."""
    atomic_write_bytes(path, text.encode(encoding), fsync=fsync)


def durable_append(
    path: Union[str, Path], line: str, fsync: Optional[bool] = None
) -> None:
    """Durably append one newline-terminated record to a log file.

    ``line`` must not itself contain a newline (one record per call is
    what makes torn-write recovery line-local).  If the file's current
    tail is a torn line from an earlier crash, a welding newline is
    written *in the same OS write* as the new record, so no crash
    ordering can corrupt the new record with the old debris.
    """
    path = Path(path)
    if "\n" in line:
        raise ValueError("durable_append takes exactly one record, no newlines")
    if fsync is None:
        fsync = fsync_enabled()
    payload = (line + "\n").encode("utf-8")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a+b") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    # Weld the torn tail before (and with) the record.
                    payload = b"\n" + payload
            _write_payload(handle, payload, path)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
    except OSError as exc:
        raise storage_failure("durable_append", path, exc) from exc
