"""Command-line interface: regenerate the paper's tables and figures.

Usage (installed as ``repro-slp-das`` or via ``python -m repro.cli``)::

    repro-slp-das table1
    repro-slp-das figure5 --search-distance 3 --repeats 30
    repro-slp-das overhead --size 11 --seeds 3
    repro-slp-das verify --size 11 --seed 0 --search-distance 3
    repro-slp-das show --size 11 --seed 0
    repro-slp-das scenario list
    repro-slp-das scenario run two-sources --seeds 20 --workers 2
    repro-slp-das scenario compare paper-baseline mobile-source

Every subcommand prints the same rows/series the paper reports, so the
EXPERIMENTS.md numbers can be re-derived from a shell; the ``scenario``
family sweeps the declarative workloads of :mod:`repro.scenarios`.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from pathlib import Path
from typing import List, Optional

from .core import check_strong_das, check_weak_das, safety_period
from .das import centralized_das_schedule
from .errors import ConfigurationError, StorageError, SweepExecutionError
from .experiments import (
    GUARD_MODES,
    PAPER,
    PAPER_SIZES,
    format_figure5,
    format_overhead,
    format_table1,
    measure_setup_overhead,
    run_figure5,
    workers_argument,
)
from .experiments import configure_schedule_cache, default_schedule_cache
from .scenarios import (
    ScenarioRunner,
    format_comparison,
    get_scenario,
    iter_scenarios,
    load_scenario_file,
    scenario_names,
)
from .slp import SlpParameters, build_slp_schedule
from .storage import atomic_write_text
from .telemetry import ProgressReporter, TelemetrySession
from .topology import paper_grid
from .verification import verify_schedule
from .visualize import render_roles, render_slot_grid


#: Exit code when a sweep could not produce any results at all
#: (:class:`~repro.errors.SweepExecutionError`).
EXIT_SWEEP_FAILED = 3
#: Exit code when a sweep completed but supervised execution had to
#: quarantine seeds — the report is usable but incomplete.
EXIT_QUARANTINED = 4
#: Exit code when the *disk* failed us — a durable write raised
#: :class:`~repro.errors.StorageError` (ENOSPC, EROFS, …).  Distinct
#: from the sweep-level codes so scripts can tell "the numbers are
#: suspect" apart from "the machine needs an operator".
EXIT_STORAGE = 5


def _cmd_table1(_: argparse.Namespace) -> int:
    print(format_table1())
    return 0


def _kernel_of(args: argparse.Namespace) -> Optional[str]:
    """The kernel override implied by ``--legacy-kernel``/``--no-fast-lane``.

    ``--legacy-kernel`` selects the event-heap engine; ``--no-fast-lane``
    keeps the fast kernel but disables its table-driven message lane
    (the ``fast-object`` kernel) — the bisection point between the flat
    timeline and the forwarding tables.
    """
    if getattr(args, "legacy_kernel", False):
        return "legacy"
    if getattr(args, "no_fast_lane", False):
        return "fast-object"
    return None


def _setup_kernel_of(args: argparse.Namespace) -> Optional[str]:
    """The setup-phase engine implied by ``--legacy-setup-kernel``.

    Selects the event-heap engine for distributed schedule builds
    instead of the flat-round setup kernel (bit-identical; the knob
    exists so a setup-phase regression can be bisected to a layer).
    """
    return "legacy" if getattr(args, "legacy_setup_kernel", False) else None


def _status(args: argparse.Namespace, message: str) -> None:
    """A status line on stderr, suppressed by ``--quiet``.

    Every informational print of the CLI goes through here so the
    stream stays machine-consumable: stdout carries only the report,
    stderr only status — and ``--quiet`` silences the latter wholesale
    (warnings about quarantined seeds stay visible regardless).
    """
    if not getattr(args, "quiet", False):
        print(message, file=sys.stderr)


def _print_cache_summary(args: argparse.Namespace) -> None:
    """One line of schedule-cache stats (this process's cache), so a
    perf regression can be bisected to the cache layer at a glance."""
    _status(args, default_schedule_cache().summary())


def _telemetry_session(args: argparse.Namespace, label: str):
    """The command's telemetry context: a :class:`TelemetrySession`
    exporting to ``--telemetry DIR``, or a no-op context without the
    flag (the zero-cost disabled path — output bytes are identical)."""
    directory = getattr(args, "telemetry", None)
    if directory is None:
        return nullcontext(None)
    return TelemetrySession(directory=directory, label=label)


def _report_telemetry(args: argparse.Namespace) -> None:
    """Tell the user where the telemetry artefacts landed."""
    directory = getattr(args, "telemetry", None)
    if directory is not None:
        _status(
            args,
            f"telemetry written to {directory} "
            "(spans.jsonl, trace.json, metrics.json)",
        )


def _progress_reporter(
    args: argparse.Namespace, total: int, label: str
) -> Optional[ProgressReporter]:
    """A live progress reporter for ``total`` runs, or ``None`` under
    ``--quiet`` (the reporter itself stays silent on non-TTY stderr)."""
    if getattr(args, "quiet", False):
        return None
    return ProgressReporter(total=total, label=label)


def _quarantine_exit(failures, degraded: bool = False) -> int:
    """The exit code after a sweep that completed with failures.

    Quarantined seeds mean the printed numbers rest on fewer runs than
    requested, so the command still exits non-zero (distinct from the
    total-failure code) for scripts to notice.
    """
    if failures:
        seeds = sorted({f.seed for f in failures})
        print(
            f"warning: {len(seeds)} seed(s) quarantined after retries: "
            f"{seeds}",
            file=sys.stderr,
        )
        return EXIT_QUARANTINED
    if degraded:
        print(
            "warning: kernel divergence detected — results recomputed on "
            "the legacy engines (see the reproducer bundle)",
            file=sys.stderr,
        )
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    if args.no_schedule_cache:
        configure_schedule_cache(enabled=False)
    with _telemetry_session(args, "cli.figure5"):
        # Each size runs both algorithms over the same repeats.
        reporter = _progress_reporter(
            args, total=len(args.sizes) * 2 * args.repeats, label="figure5: "
        )
        try:
            result = run_figure5(
                args.search_distance,
                sizes=tuple(args.sizes),
                repeats=args.repeats,
                base_seed=args.seed,
                noise=args.noise,
                workers=args.workers,
                kernel=_kernel_of(args),
                setup_kernel=_setup_kernel_of(args),
                use_schedule_cache=not args.no_schedule_cache,
                use_distributed=args.distributed,
                checkpoint=args.checkpoint,
                resume=args.resume,
                guard=args.guard,
                chunk_timeout=args.chunk_timeout,
                on_result=reporter.on_result if reporter is not None else None,
            )
        finally:
            if reporter is not None:
                reporter.finish()
    print(format_figure5(result))
    _print_cache_summary(args)
    _report_telemetry(args)
    return _quarantine_exit(
        [f for cell in result.cells for f in cell.failures],
        degraded=any(cell.degraded for cell in result.cells),
    )


def _cmd_overhead(args: argparse.Namespace) -> int:
    topology = paper_grid(args.size)
    with _telemetry_session(args, "cli.overhead"):
        measurement = measure_setup_overhead(
            topology,
            seeds=range(args.seeds),
            search_distance=args.search_distance,
            setup_periods=args.setup_periods,
            workers=args.workers,
            setup_kernel=_setup_kernel_of(args),
        )
    print(format_overhead(measurement))
    _report_telemetry(args)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    topology = paper_grid(args.size)
    frame = PAPER.frame()
    delta = safety_period(topology, frame.period_length).periods
    baseline = centralized_das_schedule(topology, seed=args.seed)
    build = build_slp_schedule(
        topology,
        SlpParameters(search_distance=args.search_distance),
        seed=args.seed,
        baseline=baseline,
    )
    print(f"safety period: {delta} periods")
    for name, schedule in (("protectionless", baseline), ("slp", build.schedule)):
        result = verify_schedule(topology, schedule, delta)
        if result.slp_aware:
            print(f"{name}: SLP-aware (True, ⊥, {result.periods})")
        else:
            print(
                f"{name}: captured in {result.periods} periods "
                f"(False, pc, {result.periods})"
            )
            print(f"  counterexample: {' -> '.join(map(str, result.counterexample))}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    topology = paper_grid(args.size)
    baseline = centralized_das_schedule(topology, seed=args.seed)
    build = build_slp_schedule(
        topology,
        SlpParameters(search_distance=args.search_distance),
        seed=args.seed,
        baseline=baseline,
    )
    strong = check_strong_das(topology, baseline)
    weak = check_weak_das(topology, build.schedule)
    print(f"baseline: {strong.summary()}")
    print(f"refined:  {weak.summary()}")
    print()
    print("refined slot landscape (decoy path in [ ]):")
    print(
        render_slot_grid(
            topology,
            build.schedule.compressed(),
            highlight=build.refinement.decoy_path,
        )
    )
    print()
    print(
        render_roles(
            topology,
            decoy_path=build.refinement.decoy_path,
            search_path=build.search.path,
        )
    )
    return 0


def _cmd_scenario_export(args: argparse.Namespace) -> int:
    spec = get_scenario(args.name)
    payload = spec.to_json() + "\n"
    if args.out is not None:
        atomic_write_text(args.out, payload)
        _status(args, f"wrote {args.out}")
    else:
        sys.stdout.write(payload)
    return 0


def _cmd_scenario_list(_: argparse.Namespace) -> int:
    header = f"{'name':<22} {'summary'}"
    print(header)
    print("-" * 72)
    for spec in iter_scenarios():
        print(f"{spec.name:<22} {spec.summary()}")
        if spec.description:
            print(f"{'':<22} {spec.description}")
    print(f"\n{len(scenario_names())} scenarios registered")
    return 0


def _make_scenario_runner(args: argparse.Namespace) -> ScenarioRunner:
    if args.no_schedule_cache:
        configure_schedule_cache(enabled=False)
    if getattr(args, "schedule_store", None) is not None:
        configure_schedule_cache(store=args.schedule_store)
    return ScenarioRunner(
        workers=args.workers,
        force_parallel=args.force_parallel,
        kernel=_kernel_of(args),
        setup_kernel=_setup_kernel_of(args),
        use_schedule_cache=not args.no_schedule_cache,
        checkpoint=args.checkpoint,
        resume=args.resume,
        guard=args.guard,
        chunk_timeout=args.chunk_timeout,
        progress=not getattr(args, "quiet", False),
    )


def _resolve_scenario(name: str):
    """A ``scenario run`` target: a registry name, or a path to a JSON
    spec document (recognised by a ``.json`` suffix or an existing
    file — ``scenario run specs/ablation.json`` just works)."""
    if name.endswith(".json") or Path(name).is_file():
        return load_scenario_file(name)
    return name


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    runner = _make_scenario_runner(args)
    with _telemetry_session(args, "cli.scenario-run"):
        outcome = runner.run(
            _resolve_scenario(args.name), seeds=args.seeds, base_seed=args.seed
        )
    if args.jsonl:
        payload = outcome.to_jsonl()
    else:
        payload = outcome.to_json() + "\n"
    if args.out is not None:
        atomic_write_text(args.out, payload)
        _status(args, f"wrote {args.out}")
    else:
        sys.stdout.write(payload)
    _print_cache_summary(args)
    _report_telemetry(args)
    return _quarantine_exit(
        outcome.failures,
        degraded=outcome.guard is not None and outcome.guard.degraded,
    )


def _cmd_scenario_compare(args: argparse.Namespace) -> int:
    names = args.names if args.names else scenario_names()
    runner = _make_scenario_runner(args)
    with _telemetry_session(args, "cli.scenario-compare"):
        outcomes = runner.compare(names, seeds=args.seeds, base_seed=args.seed)
    print(format_comparison(outcomes))
    _print_cache_summary(args)
    _report_telemetry(args)
    return _quarantine_exit(
        [f for outcome in outcomes for f in outcome.failures],
        degraded=any(
            o.guard is not None and o.guard.degraded for o in outcomes
        ),
    )


DEFAULT_SERVICE_URL = "http://127.0.0.1:8642"


def _cmd_service_start(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .experiments import RetryPolicy
    from .service import SweepService

    retry = (
        RetryPolicy(max_attempts=args.max_attempts)
        if args.max_attempts is not None
        else None
    )
    service = SweepService(
        args.data_dir,
        host=args.host,
        port=args.port,
        shard_workers=args.shard_workers,
        shards_per_job=args.shards_per_job,
        shard_timeout=args.shard_timeout,
        retry=retry,
        schedule_store=args.schedule_store,
        remote=args.remote,
        max_jobs=args.max_jobs,
        token=args.token,
    )
    stop_requested = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop_requested.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    service.start()
    _status(args, f"sweep service listening on {service.url}")
    _status(args, f"data dir: {Path(args.data_dir).resolve()}")
    if args.remote:
        _status(
            args,
            "remote mode: shards run on 'repro-slp-das worker start "
            f"--connect {service.url}' workers",
        )
    while not stop_requested.is_set() and not service.stopping:
        stop_requested.wait(0.2)
    _status(args, "draining: stopping shards, re-queueing running jobs")
    service.drain()
    return 0


def _cmd_service_gc(args: argparse.Namespace) -> int:
    from .experiments import SweepCheckpoint
    from .service import JobStore, lower_job

    store_path = Path(args.data_dir) / "jobs.sqlite"
    if not store_path.exists():
        print(f"error: no job store at {store_path}", file=sys.stderr)
        return 2
    store = JobStore(store_path)
    evicted = store.gc(args.keep)
    checkpoint = SweepCheckpoint(Path(args.data_dir) / "checkpoints")
    pruned = 0
    for record in evicted:
        # Best-effort: drop the evicted job's per-seed checkpoint too
        # (its report blob is gone, so the seeds only cost disk).
        try:
            topology, config = lower_job(
                record.spec(),
                repeats=record.repeats,
                base_seed=record.base_seed,
                kernel=record.kernel,
                setup_kernel=record.setup_kernel,
            )
            checkpoint.clear(checkpoint.key_for(topology, config))
            pruned += 1
        except Exception:
            continue
    _status(
        args,
        f"evicted {len(evicted)} result blob(s), pruned {pruned} "
        f"checkpoint file(s); kept the {args.keep} most recent",
    )
    for record in evicted:
        print(record.job_id)
    return 0


def _cmd_worker_start(args: argparse.Namespace) -> int:
    import signal

    from .experiments import RetryPolicy
    from .service import ShardWorker

    retry = (
        RetryPolicy(max_attempts=args.max_attempts)
        if args.max_attempts is not None
        else None
    )
    worker = ShardWorker(
        args.connect,
        worker_id=args.id,
        poll_interval=args.poll,
        timeout=args.timeout,
        retry=retry,
        idle_exit=args.idle_exit,
        token=args.token,
        upload_batch=args.upload_batch,
    )

    def _on_signal(signum: int, frame: object) -> None:
        worker.request_stop()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    _status(args, f"worker {worker.worker_id} pulling from {args.connect}")
    executed = worker.run()
    _status(args, f"worker {worker.worker_id} exiting ({executed} seeds run)")
    return 0


def _service_client(args: argparse.Namespace):
    from .service import ServiceClient

    return ServiceClient(
        args.url,
        timeout=args.timeout,
        token=getattr(args, "token", None),
    )


def _finished_exit(state: str) -> int:
    if state == "quarantined":
        return EXIT_QUARANTINED
    if state == "failed":
        return EXIT_SWEEP_FAILED
    return 0


def _cmd_service_submit(args: argparse.Namespace) -> int:
    from .service import ServiceError

    scenario = _resolve_scenario(args.name)
    payload: dict = (
        {"spec": scenario.to_dict()}
        if not isinstance(scenario, str)
        else {"scenario": scenario}
    )
    if args.seeds is not None:
        payload["seeds"] = args.seeds
    if args.seed is not None:
        payload["base_seed"] = args.seed
    if args.legacy_kernel:
        payload["kernel"] = "legacy"
    if args.legacy_setup_kernel:
        payload["setup_kernel"] = "legacy"
    client = _service_client(args)
    try:
        reply = client.submit(payload)
        job = reply["job"]
        _status(
            args,
            f"job {job} {'created' if reply['created'] else 'deduplicated'} "
            f"({reply['state']})",
        )
        if not args.wait:
            print(job)
            return 0
        final = client.wait(job, timeout=args.timeout)
        _status(args, f"job {job} finished: {final['state']}")
        if final["state"] in ("done", "quarantined"):
            sys.stdout.write(client.result_text(job))
        return _finished_exit(final["state"])
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_service_status(args: argparse.Namespace) -> int:
    import json as _json

    from .service import ServiceError

    client = _service_client(args)
    try:
        status = client.status(args.job)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(_json.dumps(status, indent=2, sort_keys=True))
    return 0


def _cmd_service_result(args: argparse.Namespace) -> int:
    from .service import ServiceError

    client = _service_client(args)
    try:
        text = client.result_text(args.job)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out is not None:
        atomic_write_text(args.out, text)
        _status(args, f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    state = client.status(args.job)["state"]
    return _finished_exit(state)


def _cmd_service_fsck(args: argparse.Namespace) -> int:
    import json as _json

    from .service import fsck_data_dir

    data_dir = Path(args.data_dir)
    if not data_dir.is_dir():
        print(f"error: no data dir at {data_dir}", file=sys.stderr)
        return 2
    report = fsck_data_dir(data_dir, repair=args.repair)
    print(_json.dumps(report, indent=2, sort_keys=True))
    if report["clean"] or report["unrepaired"] == 0:
        return 0
    return 1


def _cmd_service_workers(args: argparse.Namespace) -> int:
    from .service import ServiceError

    client = _service_client(args)
    try:
        summary = client.workers()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    workers = summary.get("workers") or []
    if not summary.get("remote", False):
        print("service is not in remote mode (no worker fleet)")
        return 0
    if not workers:
        print("no workers have claimed shards yet")
        return 0
    header = (
        f"{'worker':<28} {'shards':>6} {'claims':>6} "
        f"{'seeds':>6} {'last upload':>12}"
    )
    print(header)
    print("-" * len(header))
    for entry in workers:
        since = entry.get("seconds_since_upload")
        recency = "never" if since is None else f"{since:.1f}s ago"
        print(
            f"{entry['worker']:<28} {entry['shards_held']:>6} "
            f"{entry['claims']:>6} {entry['seeds_landed']:>6} {recency:>12}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-slp-das",
        description=(
            "Reproduction of 'Source Location Privacy-Aware Data "
            "Aggregation Scheduling for WSNs' (ICDCS 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I").set_defaults(func=_cmd_table1)

    workers_help = (
        "worker processes for seed sweeps (default: serial; 0 = one per CPU)"
    )
    legacy_kernel_help = (
        "run the operational phase on the legacy event-heap kernel "
        "instead of the fast kernel (bit-identical; for bisection)"
    )
    no_cache_help = (
        "disable the content-addressed schedule cache "
        "(bit-identical; for bisection)"
    )
    no_fast_lane_help = (
        "keep the fast kernel but disable its table-driven message-path "
        "fast lane (bit-identical; for bisection)"
    )
    legacy_setup_kernel_help = (
        "build distributed-setup schedules on the legacy event-heap "
        "engine instead of the flat-round setup kernel "
        "(bit-identical; for bisection)"
    )

    def add_resilience_arguments(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--checkpoint",
            type=Path,
            default=None,
            metavar="DIR",
            help="persist completed per-seed results under DIR so an "
            "interrupted sweep can be resumed",
        )
        cmd.add_argument(
            "--resume",
            action="store_true",
            help="reuse results already in the --checkpoint store instead "
            "of clearing it (bit-identical to an uninterrupted sweep)",
        )
        cmd.add_argument(
            "--guard",
            choices=sorted(GUARD_MODES),
            default=None,
            help="re-run a sample of each sweep on the legacy engines; on "
            "divergence, write a reproducer bundle and degrade the sweep "
            "to legacy",
        )
        cmd.add_argument(
            "--chunk-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="seconds one parallel chunk may run before its worker is "
            "presumed hung and the pool is rebuilt",
        )

    def add_observability_arguments(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--telemetry",
            type=Path,
            default=None,
            metavar="DIR",
            help="record spans and metrics for this run and write "
            "spans.jsonl, trace.json (Chrome trace-event format, loads "
            "in Perfetto) and metrics.json under DIR; off by default "
            "and output bytes are identical either way",
        )
        cmd.add_argument(
            "--quiet",
            action="store_true",
            help="suppress status lines and live progress on stderr "
            "(quarantine warnings stay visible)",
        )

    fig = sub.add_parser("figure5", help="regenerate a Figure 5 panel")
    fig.add_argument("--search-distance", type=int, default=3, choices=(3, 5))
    fig.add_argument("--repeats", type=int, default=30)
    fig.add_argument("--seed", type=int, default=0)
    fig.add_argument("--sizes", type=int, nargs="+", default=list(PAPER_SIZES))
    fig.add_argument("--noise", choices=("casino", "ideal"), default="casino")
    fig.add_argument("--workers", type=workers_argument, default=None, help=workers_help)
    fig.add_argument("--legacy-kernel", action="store_true", help=legacy_kernel_help)
    fig.add_argument("--no-fast-lane", action="store_true", help=no_fast_lane_help)
    fig.add_argument(
        "--legacy-setup-kernel", action="store_true", help=legacy_setup_kernel_help
    )
    fig.add_argument("--no-schedule-cache", action="store_true", help=no_cache_help)
    fig.add_argument(
        "--distributed",
        action="store_true",
        help="build schedules with the full message-level setup protocols "
        "instead of the centralised pipeline",
    )
    add_resilience_arguments(fig)
    add_observability_arguments(fig)
    fig.set_defaults(func=_cmd_figure5)

    over = sub.add_parser("overhead", help="measure SLP setup overhead")
    over.add_argument("--size", type=int, default=11, choices=PAPER_SIZES)
    over.add_argument("--seeds", type=int, default=3)
    over.add_argument("--search-distance", type=int, default=3)
    over.add_argument("--setup-periods", type=int, default=None)
    over.add_argument("--workers", type=workers_argument, default=None, help=workers_help)
    over.add_argument(
        "--legacy-setup-kernel", action="store_true", help=legacy_setup_kernel_help
    )
    add_observability_arguments(over)
    over.set_defaults(func=_cmd_overhead)

    ver = sub.add_parser("verify", help="run VerifySchedule (Algorithm 1)")
    ver.add_argument("--size", type=int, default=11, choices=PAPER_SIZES)
    ver.add_argument("--seed", type=int, default=0)
    ver.add_argument("--search-distance", type=int, default=3)
    ver.set_defaults(func=_cmd_verify)

    scenario = sub.add_parser(
        "scenario", help="declarative workloads (multi-source, mobile, churn)"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    scn_list = scenario_sub.add_parser("list", help="list registered scenarios")
    scn_list.set_defaults(func=_cmd_scenario_list)

    scn_export = scenario_sub.add_parser(
        "export",
        help="print a registered scenario as a JSON spec document "
        "(editable, runnable via 'scenario run FILE.json', submittable "
        "to the experiment service)",
    )
    scn_export.add_argument("name", help="registered scenario name")
    scn_export.add_argument(
        "--out", type=Path, default=None, help="write the document to a file"
    )
    scn_export.set_defaults(func=_cmd_scenario_export, quiet=False)

    scn_run = scenario_sub.add_parser(
        "run", help="sweep one scenario and print a JSON report"
    )
    scn_run.add_argument(
        "name",
        help="registered scenario name (see 'list') or a path to a "
        "JSON spec document (see 'scenario export'/DESIGN.md)",
    )
    scn_run.add_argument(
        "--seeds", type=int, default=None, help="override the scenario's repeats"
    )
    scn_run.add_argument("--seed", type=int, default=None, help="first seed")
    scn_run.add_argument(
        "--workers", type=workers_argument, default=None, help=workers_help
    )
    scn_run.add_argument(
        "--force-parallel",
        action="store_true",
        help="honour --workers verbatim even where the worker policy "
        "would fall back to the serial engine",
    )
    scn_run.add_argument("--legacy-kernel", action="store_true", help=legacy_kernel_help)
    scn_run.add_argument("--no-fast-lane", action="store_true", help=no_fast_lane_help)
    scn_run.add_argument(
        "--legacy-setup-kernel", action="store_true", help=legacy_setup_kernel_help
    )
    scn_run.add_argument("--no-schedule-cache", action="store_true", help=no_cache_help)
    scn_run.add_argument(
        "--schedule-store",
        type=Path,
        default=None,
        metavar="PATH",
        help="attach a shared on-disk schedule store (SQLite) so "
        "concurrent runs over one topology dedup schedule builds",
    )
    scn_run.add_argument(
        "--jsonl",
        action="store_true",
        help="emit one JSON line per run instead of one report object",
    )
    scn_run.add_argument(
        "--out", type=Path, default=None, help="write the report to a file"
    )
    add_resilience_arguments(scn_run)
    add_observability_arguments(scn_run)
    scn_run.set_defaults(func=_cmd_scenario_run)

    scn_cmp = scenario_sub.add_parser(
        "compare", help="sweep several scenarios and tabulate capture ratios"
    )
    scn_cmp.add_argument(
        "names", nargs="*", help="scenario names (default: every registered one)"
    )
    scn_cmp.add_argument(
        "--seeds", type=int, default=None, help="override each scenario's repeats"
    )
    scn_cmp.add_argument("--seed", type=int, default=None, help="first seed")
    scn_cmp.add_argument(
        "--workers", type=workers_argument, default=None, help=workers_help
    )
    scn_cmp.add_argument(
        "--force-parallel",
        action="store_true",
        help="honour --workers verbatim even where the worker policy "
        "would fall back to the serial engine",
    )
    scn_cmp.add_argument("--legacy-kernel", action="store_true", help=legacy_kernel_help)
    scn_cmp.add_argument("--no-fast-lane", action="store_true", help=no_fast_lane_help)
    scn_cmp.add_argument(
        "--legacy-setup-kernel", action="store_true", help=legacy_setup_kernel_help
    )
    scn_cmp.add_argument("--no-schedule-cache", action="store_true", help=no_cache_help)
    scn_cmp.add_argument(
        "--schedule-store",
        type=Path,
        default=None,
        metavar="PATH",
        help="attach a shared on-disk schedule store (SQLite) so "
        "concurrent runs over one topology dedup schedule builds",
    )
    add_resilience_arguments(scn_cmp)
    add_observability_arguments(scn_cmp)
    scn_cmp.set_defaults(func=_cmd_scenario_compare)

    service = sub.add_parser(
        "service",
        help="the resilient sweep service: durable jobs over HTTP "
        "(start/submit/status/result)",
    )
    service_sub = service.add_subparsers(dest="service_command", required=True)

    url_help = f"service base URL (default {DEFAULT_SERVICE_URL})"
    timeout_help = "client timeout in seconds (and --wait deadline)"

    svc_start = service_sub.add_parser(
        "start", help="run the sweep service in the foreground"
    )
    svc_start.add_argument(
        "--data-dir",
        type=Path,
        required=True,
        metavar="DIR",
        help="durable state: job store, per-seed checkpoints, schedule store",
    )
    svc_start.add_argument("--host", default="127.0.0.1")
    svc_start.add_argument("--port", type=int, default=8642)
    svc_start.add_argument(
        "--shard-workers",
        type=int,
        default=2,
        help="worker processes (= concurrently running shards)",
    )
    svc_start.add_argument(
        "--shards-per-job",
        type=int,
        default=None,
        help="shards to split each job into (default: 2 x shard workers)",
    )
    svc_start.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds a shard may go without completing a seed before "
        "its pool is presumed hung and rebuilt (stall timeout, not a "
        "total-duration cap)",
    )
    svc_start.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="retry attempts per shard before bisection/quarantine",
    )
    svc_start.add_argument(
        "--schedule-store",
        type=Path,
        default=None,
        metavar="PATH",
        help="attach a shared on-disk schedule store so concurrent jobs "
        "over one topology dedup schedule builds",
    )
    svc_start.add_argument(
        "--remote",
        action="store_true",
        help="run shards on remote workers ('worker start --connect') "
        "leasing over HTTP instead of a local process pool; "
        "--shard-timeout becomes the lease timeout (default 60s)",
    )
    svc_start.add_argument(
        "--max-jobs",
        type=int,
        default=1,
        help="jobs to run concurrently (default 1: FIFO)",
    )
    svc_start.add_argument(
        "--token",
        default=None,
        help="require this bearer token on every mutating endpoint "
        "(submits and shard traffic answer 401 without it; reads stay "
        "open)",
    )
    svc_start.add_argument("--quiet", action="store_true")
    svc_start.set_defaults(func=_cmd_service_start)

    svc_fsck = service_sub.add_parser(
        "fsck",
        help="audit a service --data-dir offline: cross-check job rows, "
        "checkpoint files and result blobs; --repair prunes orphans and "
        "demotes inconsistent jobs to queued",
    )
    svc_fsck.add_argument(
        "--data-dir",
        type=Path,
        required=True,
        metavar="DIR",
        help="the service's durable state directory (service must be stopped)",
    )
    svc_fsck.add_argument(
        "--repair",
        action="store_true",
        help="fix what can be fixed conservatively (prune orphans and "
        "crash debris, rewrite checkpoints keeping verified lines, "
        "demote inconsistent jobs to queued); never patches results "
        "in place",
    )
    svc_fsck.set_defaults(func=_cmd_service_fsck, quiet=False)

    svc_workers = service_sub.add_parser(
        "workers",
        help="show the remote worker fleet (held shards, seeds landed, "
        "upload recency) from the service's lease board",
    )
    svc_workers.add_argument("--url", default=DEFAULT_SERVICE_URL, help=url_help)
    svc_workers.add_argument(
        "--timeout", type=float, default=30.0, help=timeout_help
    )
    svc_workers.set_defaults(func=_cmd_service_workers, quiet=False)

    svc_gc = service_sub.add_parser(
        "gc",
        help="evict old terminal jobs' result blobs (records stay for "
        "dedup); run offline against the service's --data-dir",
    )
    svc_gc.add_argument(
        "--data-dir",
        type=Path,
        required=True,
        metavar="DIR",
        help="the service's durable state directory",
    )
    svc_gc.add_argument(
        "--keep",
        type=int,
        required=True,
        metavar="N",
        help="keep the N most recently submitted terminal results "
        "(ordering is the store's submit counter, never a wall clock)",
    )
    svc_gc.add_argument("--quiet", action="store_true")
    svc_gc.set_defaults(func=_cmd_service_gc)

    svc_submit = service_sub.add_parser(
        "submit", help="submit a scenario (name or spec JSON file) as a job"
    )
    svc_submit.add_argument(
        "name", help="registered scenario name or path to a JSON spec document"
    )
    svc_submit.add_argument("--url", default=DEFAULT_SERVICE_URL, help=url_help)
    svc_submit.add_argument(
        "--seeds", type=int, default=None, help="override the scenario's repeats"
    )
    svc_submit.add_argument("--seed", type=int, default=None, help="first seed")
    svc_submit.add_argument(
        "--legacy-kernel", action="store_true", help=legacy_kernel_help
    )
    svc_submit.add_argument(
        "--legacy-setup-kernel", action="store_true", help=legacy_setup_kernel_help
    )
    svc_submit.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job finishes and print its report "
        "(exit codes as for 'scenario run')",
    )
    svc_submit.add_argument(
        "--timeout", type=float, default=600.0, help=timeout_help
    )
    svc_submit.add_argument(
        "--token",
        default=None,
        help="bearer token for a 'service start --token' instance",
    )
    svc_submit.add_argument("--quiet", action="store_true")
    svc_submit.set_defaults(func=_cmd_service_submit)

    svc_status = service_sub.add_parser(
        "status", help="print one job's status document"
    )
    svc_status.add_argument("job", help="job id (from 'submit')")
    svc_status.add_argument("--url", default=DEFAULT_SERVICE_URL, help=url_help)
    svc_status.add_argument(
        "--timeout", type=float, default=30.0, help=timeout_help
    )
    svc_status.set_defaults(func=_cmd_service_status, quiet=False)

    svc_result = service_sub.add_parser(
        "result", help="print (or save) one finished job's report"
    )
    svc_result.add_argument("job", help="job id (from 'submit')")
    svc_result.add_argument("--url", default=DEFAULT_SERVICE_URL, help=url_help)
    svc_result.add_argument(
        "--timeout", type=float, default=30.0, help=timeout_help
    )
    svc_result.add_argument(
        "--out", type=Path, default=None, help="write the report to a file"
    )
    svc_result.add_argument("--quiet", action="store_true")
    svc_result.set_defaults(func=_cmd_service_result)

    worker = sub.add_parser(
        "worker",
        help="remote shard workers for a --remote sweep service",
    )
    worker_sub = worker.add_subparsers(dest="worker_command", required=True)

    wrk_start = worker_sub.add_parser(
        "start",
        help="pull shard leases from a remote-mode service, run them, "
        "and upload results (SIGTERM drains gracefully)",
    )
    wrk_start.add_argument(
        "--connect",
        required=True,
        metavar="URL",
        help="base URL of a 'service start --remote' instance",
    )
    wrk_start.add_argument(
        "--id",
        default=None,
        help="stable worker id (default: hostname-pid)",
    )
    wrk_start.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="idle claim-poll interval",
    )
    wrk_start.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-request HTTP timeout",
    )
    wrk_start.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="transport retry attempts per request before the shard "
        "is abandoned to the lease timeout",
    )
    wrk_start.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit once no work has been claimable for this long "
        "(default: poll forever)",
    )
    wrk_start.add_argument(
        "--token",
        default=None,
        help="bearer token for a 'service start --token' instance",
    )
    wrk_start.add_argument(
        "--upload-batch",
        type=int,
        default=1,
        metavar="N",
        help="coalesce up to N finished seeds into one upload (default "
        "1: upload each seed as it finishes; the batch flushes at shard "
        "end and on drain either way)",
    )
    wrk_start.add_argument("--quiet", action="store_true")
    wrk_start.set_defaults(func=_cmd_worker_start)

    show = sub.add_parser("show", help="visualise a refined schedule")
    show.add_argument("--size", type=int, default=11, choices=PAPER_SIZES)
    show.add_argument("--seed", type=int, default=0)
    show.add_argument("--search-distance", type=int, default=3)
    show.set_defaults(func=_cmd_show)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    Exit codes: ``0`` success, ``EXIT_SWEEP_FAILED`` (3) when a sweep
    produced no results at all, ``EXIT_QUARANTINED`` (4) when it
    completed but had to quarantine failing seeds, ``EXIT_STORAGE``
    (5) when a durable write failed (disk full, read-only filesystem).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except StorageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_STORAGE
    except SweepExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SWEEP_FAILED


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
