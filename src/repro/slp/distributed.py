"""Distributed Phases 2 and 3 — the full SLP DAS node process.

:class:`SlpNodeProcess` extends the Phase 1 process of Figure 2 with the
``NSearch`` actions of Figure 3 and the ``SRefine`` actions of Figure 4,
inheriting all Phase 1 variables exactly as the paper specifies
("the algorithm inherits the variables of the Algorithm in Figure 2").

Timeline (in dissemination rounds):

* rounds ``0 … MSP-1`` — Phase 1 (neighbour discovery + DAS assignment);
* round ``MSP`` — the sink fires ``startS``, sending a ``SEARCH`` toward
  its minimum-slot child (Phase 2);
* the search hops node-to-node inside the same round structure; the
  selected start node fires ``startR`` immediately, recruiting the decoy
  path with ``CHANGE`` messages (Phase 3);
* remaining rounds — update disseminations (``Normal = 0``) cascade the
  ``receiveU`` repairs so the schedule settles back into a weak DAS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..core import Schedule
from ..das.fast_setup import (
    fast_setup_compilable,
    fast_setup_supported,
    run_fast_setup,
    search_ttl,
)
from ..das.messages import NodeInfo
from ..das.protocol import (
    DasNodeProcess,
    DasProtocolConfig,
    resolve_setup_kernel,
)
from ..errors import ProtocolError
from ..simulator import (
    IdealNoise,
    NoiseModel,
    PHASE,
    SEND,
    SLOT_ASSIGNED,
    SLOT_CHANGED,
    Simulator,
)
from ..topology import NodeId, Topology
from .messages import ChangeMessage, SearchMessage


@dataclass(frozen=True)
class SlpProtocolConfig:
    """Parameters of the full 3-phase SLP DAS protocol (Table I).

    Attributes
    ----------
    das:
        The inherited Phase 1 parameters.
    search_distance:
        ``SD`` — hops the search travels (Table I: 3 or 5).
    change_length:
        ``CL`` — decoy path length budget (Table I: ``Δss − SD``; the
        harness computes the default from the topology).
    refinement_periods:
        Extra dissemination rounds after ``MSP`` for the search, change
        and update cascade to settle.  Deep cascades on the paper's
        grids need ~20 rounds of self-stabilising repair.
    """

    das: DasProtocolConfig = field(default_factory=DasProtocolConfig)
    search_distance: int = 3
    change_length: int = 5
    refinement_periods: int = 20

    def __post_init__(self) -> None:
        if self.search_distance < 1:
            raise ProtocolError("search distance must be at least 1")
        if self.change_length < 1:
            raise ProtocolError("change length must be at least 1")
        if self.refinement_periods < 2:
            raise ProtocolError("refinement needs at least 2 rounds to settle")


class SlpNodeProcess(DasNodeProcess):
    """Figure 2 + Figure 3 + Figure 4, in one node process."""

    def __init__(
        self,
        node: NodeId,
        is_sink: bool,
        config: SlpProtocolConfig,
    ) -> None:
        super().__init__(node, is_sink, config.das)
        self._slp = config
        # Figure 3 / Figure 4 variables.
        self.from_set: Set[NodeId] = set()
        self.is_start_node = False
        self.is_decoy = False
        self.search_forwarded = False
        self.redirect_length = 0  # pr
        # Wire-message counters, bumped at each SEARCH/CHANGE broadcast
        # so the harness can report Phase 2/3 overhead without retaining
        # per-message SEND trace records.
        self.search_sent = 0
        self.change_sent = 0

    # ------------------------------------------------------------------
    # Round structure
    # ------------------------------------------------------------------
    def _total_rounds(self) -> int:
        return self._slp.das.setup_periods + self._slp.refinement_periods

    def _begin_round(self) -> None:
        starting_round = self._round
        super()._begin_round()
        if self._is_sink and starting_round == self._slp.das.setup_periods:
            self._start_search()

    # ------------------------------------------------------------------
    # Phase 2: NSearch (Figure 3)
    # ------------------------------------------------------------------
    def _min_slot_child(self) -> Optional[NodeId]:
        """The child with the minimum known slot (Figure 3's selection)."""
        assigned = [
            c
            for c in self.children
            if self.ninfo.get(c, NodeInfo()).assigned
        ]
        if not assigned:
            return None
        return min(assigned, key=lambda c: (self.ninfo[c].slot, c))

    def _start_search(self) -> None:
        """Figure 3 ``startS``: the sink seeds the search."""
        target = self._min_slot_child()
        if target is None:
            raise ProtocolError("the sink has no assigned children to search via")
        self.sim.trace.record(
            self.sim.now, PHASE, phase="search-start", node=self.node, target=target
        )
        self.search_sent += 1
        self.broadcast(
            SearchMessage(
                sender=self.node,
                target=target,
                distance=self._slp.search_distance,
                ttl=search_ttl(self._slp.search_distance),
            )
        )

    def _spare_parent_candidates(self, exclude: NodeId) -> List[NodeId]:
        """``Npar \\ {par, k} \\ from`` — spare potential parents."""
        return [
            j
            for j in self.potential_parents
            if j != self.parent and j != exclude and j not in self.from_set
        ]

    def _forward_search(self, distance: int, ttl: int) -> None:
        """Forward the search one hop (the ``d > 0`` and fallback branches).

        Figure 3 forwards to the minimum-slot child while ``d > 0`` and
        lets ``choose()`` pick any child or non-parent neighbour at
        ``d = 0``.  ``choose`` is nondeterministic in the paper; here it
        prefers nodes not yet on the search path and otherwise picks at
        random — randomness is what lets a search that walked into a
        dead-end corner escape instead of ping-ponging until its TTL.
        """
        if ttl <= 0:
            return  # hop budget exhausted; the search dies here
        child = self._min_slot_child()
        if distance > 0 and child is not None and child not in self.from_set:
            target = child
        else:
            fresh = [
                n
                for n in sorted(self.my_neighbours)
                if n != self.parent and n not in self.from_set
            ]
            if fresh:
                target = fresh[0] if distance > 0 else self.sim.rng.choice(fresh)
            else:
                revisit = [
                    n for n in sorted(self.my_neighbours) if n != self.parent
                ]
                if not revisit:
                    return  # isolated leaf: nowhere to go at all
                target = self.sim.rng.choice(revisit)
        self.search_forwarded = True
        self.search_sent += 1
        self.broadcast(
            SearchMessage(
                sender=self.node, target=target, distance=distance, ttl=ttl - 1
            )
        )

    def _receive_search(self, message: SearchMessage) -> None:
        # Everyone in range records the forwarder (Figure 3's
        # ``from := from ∪ {k}``) and drops to weak-mode repair, since a
        # redirection is being built nearby.
        self.from_set.add(message.sender)
        self._weak_mode = True
        if message.target != self.node:
            return
        if message.distance > 0:
            self._forward_search(message.distance - 1, message.ttl)
            return
        # d = 0: can this node host the redirection?
        spares = self._spare_parent_candidates(exclude=message.sender)
        if spares:
            self.is_start_node = True
            self.redirect_length = self._slp.change_length
            self.sim.trace.record(
                self.sim.now, PHASE, phase="start-node", node=self.node
            )
            self._start_refinement(spares)
        else:
            # Wander on at d = 0 until a suitable node is found.
            self._forward_search(0, message.ttl)

    # ------------------------------------------------------------------
    # Phase 3: SRefine (Figure 4)
    # ------------------------------------------------------------------
    def _neighbourhood_min_slot(self) -> int:
        """``min({Ninfo[k].slot | k ∈ myN} ∪ {slot})``."""
        values = [self.slot] if self.slot is not None else []
        for n in self.my_neighbours:
            info = self.ninfo.get(n)
            if info is not None and info.assigned:
                values.append(info.slot)
        if not values:
            raise ProtocolError(f"node {self.node} has no slot knowledge to refine")
        return min(values)

    def _start_refinement(self, spares: List[NodeId]) -> None:
        """Figure 4 ``startR``: recruit the first decoy node."""
        target = self.sim.rng.choice(sorted(spares))
        base = self._neighbourhood_min_slot()
        self.change_sent += 1
        self.broadcast(
            ChangeMessage(
                sender=self.node,
                target=target,
                base_slot=base,
                remaining=self.redirect_length - 1,
            )
        )

    def _receive_change(self, message: ChangeMessage) -> None:
        # Any node hearing a CHANGE is adjacent to the decoy path: the
        # strong ordering rule must not fight the planted gradient.
        self._weak_mode = True
        self.from_set.add(message.sender)
        if message.target != self.node:
            return
        candidates = [
            n
            for n in sorted(self.my_neighbours)
            if n != self.parent and n not in self.from_set
        ]
        if message.remaining > 0 and candidates:
            self.is_decoy = True
            self._change_slot(message.base_slot - 1, reason="decoy")
            base = self._neighbourhood_min_slot()
            target = self.sim.rng.choice(candidates)
            self.change_sent += 1
            self.broadcast(
                ChangeMessage(
                    sender=self.node,
                    target=target,
                    base_slot=base,
                    remaining=message.remaining - 1,
                )
            )
        elif message.remaining == 0 and candidates:
            # Final decoy node: adopt the slot and open the update phase.
            self.is_decoy = True
            self._change_slot(message.base_slot - 1, reason="decoy")

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def on_receive(self, sender: NodeId, message: object, time: float) -> None:
        if isinstance(message, SearchMessage):
            self._receive_search(message)
            return
        if isinstance(message, ChangeMessage):
            self._receive_change(message)
            return
        super().on_receive(sender, message, time)


@dataclass
class SlpSetupResult:
    """Outcome of a full 3-phase distributed run.

    Attributes
    ----------
    schedule:
        The refined weak-DAS schedule.
    simulator:
        The engine (trace carries per-kind counts).
    messages_sent:
        Total broadcasts across all three phases.
    search_messages, change_messages:
        Phase 2 / Phase 3 wire messages actually sent — the paper's
        "negligible overhead" quantities.
    start_node:
        The Phase 2 selected node, if one emerged.
    decoy_path:
        Nodes recruited onto the decoy path.
    """

    schedule: Schedule
    simulator: Simulator
    messages_sent: int
    search_messages: int
    change_messages: int
    start_node: Optional[NodeId]
    decoy_path: tuple


def run_slp_setup(
    topology: Topology,
    config: Optional[SlpProtocolConfig] = None,
    seed: Optional[int] = None,
    noise: Optional[NoiseModel] = None,
    process_factory: Optional[Callable[..., SlpNodeProcess]] = None,
    setup_kernel: Optional[str] = None,
) -> SlpSetupResult:
    """Run the complete 3-phase distributed SLP DAS protocol.

    The default ``change_length`` is recomputed from the topology as
    ``max(1, Δss − SD)`` (Table I) when the caller passes no config.

    ``setup_kernel`` selects the engine exactly as in
    :func:`~repro.das.run_das_setup`: ``"fast"`` (the flat-round setup
    kernel, the default) or ``"legacy"`` (the event heap), bit-identical
    either way.  Subclasses injected via ``process_factory`` — and
    search/refinement chain geometries the kernel cannot prove safe —
    fall back to the heap automatically.
    """
    if config is None:
        sd = 3
        cl = max(1, topology.source_sink_distance() - sd)
        config = SlpProtocolConfig(search_distance=sd, change_length=cl)
    kernel = resolve_setup_kernel(setup_kernel, "run_slp_setup")

    sim = Simulator(
        topology,
        noise=noise if noise is not None else IdealNoise(),
        seed=seed,
        trace_kinds=frozenset({SLOT_ASSIGNED, SLOT_CHANGED, PHASE}),
    )
    factory = process_factory if process_factory is not None else SlpNodeProcess
    processes: Dict[NodeId, SlpNodeProcess] = {}
    for node in topology.nodes:
        proc = factory(node, is_sink=(node == topology.sink), config=config)
        processes[node] = proc
        sim.register_process(proc)

    total = config.das.setup_periods + config.refinement_periods
    use_fast = (
        kernel == "fast"
        and fast_setup_compilable(processes, SlpNodeProcess)
        and fast_setup_supported(
            config.das,
            sim.radio.propagation_delay,
            search_distance=config.search_distance,
            change_length=config.change_length,
        )
    )
    if use_fast:
        state = run_fast_setup(
            sim,
            topology,
            config.das,
            search_distance=config.search_distance,
            change_length=config.change_length,
            total_rounds=total,
        )
        state.sync(processes, total)
    else:
        sim.run(until=total * config.das.dissemination_period + 1e-9)

    unassigned = [n for n, p in processes.items() if not p.assigned]
    if unassigned:
        raise ProtocolError(
            f"{len(unassigned)} nodes never obtained a slot during SLP setup"
        )

    raw_slots = {n: p.slot for n, p in processes.items()}
    parents = {n: p.parent for n, p in processes.items()}
    min_slot = min(raw_slots.values())
    if min_slot < 1:
        shift = 1 - min_slot
        raw_slots = {n: s + shift for n, s in raw_slots.items()}
    schedule = Schedule(raw_slots, parents, topology.sink)

    search_count = sum(p.search_sent for p in processes.values())
    change_count = sum(p.change_sent for p in processes.values())

    start_nodes = [n for n, p in processes.items() if p.is_start_node]
    decoys = tuple(
        sorted(
            (n for n, p in processes.items() if p.is_decoy),
            key=lambda n: raw_slots[n],
            reverse=True,
        )
    )
    return SlpSetupResult(
        schedule=schedule,
        simulator=sim,
        messages_sent=sim.trace.count(SEND),
        search_messages=search_count,
        change_messages=change_count,
        start_node=start_nodes[0] if start_nodes else None,
        decoy_path=decoys,
    )
