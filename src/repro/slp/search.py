"""Phase 2 — the node locator (Figure 3), centralised form.

The search starts at the sink and repeatedly descends to the
minimum-slot child — i.e. it predicts and follows the very path a
slot-gradient attacker will take — for ``SD`` (search distance) hops.
The node reached must have a *spare potential parent* (a toward-sink
neighbour besides its own parent and the search predecessor) to host a
redirection; if it does not, the search keeps wandering (the paper's
``d = 0`` fallback branch) until a suitable node is found.

The distributed message-passing version lives in
:mod:`repro.slp.distributed`; this module is its deterministic
equivalent used by the experiment harness and the verifier benches.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from ..core import Schedule
from ..errors import ProtocolError
from ..topology import NodeId, Topology


@dataclass(frozen=True)
class SearchResult:
    """Outcome of the Phase 2 search.

    Attributes
    ----------
    start_node:
        The node selected to start the redirection (Figure 3's node with
        ``startNode = 1``).
    path:
        The search path from the sink to ``start_node`` inclusive; these
        nodes form the ``from`` set the decoy path must avoid.
    arrived_from:
        The predecessor that delivered the final search hop (``k`` in
        Figure 3) — also excluded from the decoy choices.
    """

    start_node: NodeId
    path: Tuple[NodeId, ...]
    arrived_from: NodeId

    @property
    def from_set(self) -> FrozenSet[NodeId]:
        """Nodes the redirection must avoid (the search path)."""
        return frozenset(self.path)


def _spare_parents(
    topology: Topology,
    schedule: Schedule,
    node: NodeId,
    excluded,
) -> List[NodeId]:
    """Potential parents of ``node`` besides its parent and ``excluded``.

    In Phase 1 a node's potential parents are the toward-sink neighbours
    it heard before assigning; centrally those are exactly the
    neighbours one hop closer to the sink (``Npar \\ {par, k}``).
    ``excluded`` holds the nodes the candidate must avoid — in the
    distributed protocol that is the node's local ``from`` set, i.e. the
    search forwarders it actually heard, which is its predecessor (not
    the whole search path: distant path nodes were never audible).
    """
    parent = schedule.parent_of(node)
    banned = set(excluded)
    return [
        m
        for m in topology.shortest_path_children(node)
        if m != parent and m != topology.sink and m not in banned
    ]


def _attacker_next(
    schedule: Schedule, topology: Topology, node: NodeId
) -> Optional[NodeId]:
    """The next node a slot-gradient attacker standing at ``node`` visits:
    its minimum-slot audible neighbour, provided that is downhill.

    Figure 3's message-passing search approximates this with the
    minimum-slot *child* (the only slots a node is guaranteed to know);
    the centralised search predicts the attacker exactly, which is the
    search's stated purpose — finding "a suitable location in the
    network for where redirection can occur" on the attacker's route.
    The literal child-based walk is implemented by the distributed
    :class:`~repro.slp.distributed.SlpNodeProcess`.
    """
    audible = [
        m for m in topology.neighbours(node) if m != topology.sink
    ]
    if not audible:
        return None
    nxt = min(audible, key=lambda m: (schedule.slot_of(m), m))
    if node != topology.sink and schedule.slot_of(nxt) >= schedule.slot_of(node):
        return None  # the attacker camps at a local minimum
    return nxt


def locate_redirection_node(
    topology: Topology,
    schedule: Schedule,
    search_distance: int,
    rng: Optional[random.Random] = None,
) -> SearchResult:
    """Run the Phase 2 search and return the redirection start node.

    Parameters
    ----------
    topology, schedule:
        The network and its Phase 1 DAS schedule.
    search_distance:
        ``SD`` — hops the search travels down the predicted attacker
        path before looking for a host (Table I uses 3 and 5).
    rng:
        Tie-break source for the wandering fallback; defaults to a
        deterministic (identifier-ordered) walk.

    Raises
    ------
    ProtocolError
        If no node with a spare potential parent is reachable — only
        possible on degenerate topologies such as a pure line.
    """
    if search_distance < 1:
        raise ProtocolError("search distance must be at least 1 hop")
    rng = rng if rng is not None else random.Random(0)

    path: List[NodeId] = [topology.sink]
    current = topology.sink
    # Descend SD hops along the predicted attacker route (Figure 3's
    # d > 0 branch; see _attacker_next for the child-vs-neighbour note).
    for _ in range(search_distance):
        nxt = _attacker_next(schedule, topology, current)
        if nxt is None:
            # Dead end before d reached 0: wander like the d = 0 branch.
            break
        path.append(nxt)
        current = nxt

    # d = 0: current must host the redirection, else keep wandering.
    visited = set(path)
    budget = topology.num_nodes  # wandering bound; the search must terminate
    while budget > 0:
        predecessor = path[-2] if len(path) >= 2 else topology.sink
        if len(path) > 1 and _spare_parents(
            topology, schedule, current, (predecessor,)
        ):
            return SearchResult(
                start_node=current,
                path=tuple(path),
                arrived_from=predecessor,
            )
        # Figure 3 fallback: continue along the predicted attacker route,
        # else a child, else any neighbour but the parent, avoiding
        # places already visited when possible.
        onward = _attacker_next(schedule, topology, current)
        children = [c for c in schedule.children_of(current) if c not in visited]
        if onward is not None and onward not in visited:
            nxt = onward
        elif children:
            nxt = min(children, key=lambda c: (schedule.slot_of(c), c))
        else:
            parent = schedule.parent_of(current)
            options = [
                m
                for m in topology.neighbours(current)
                if m != parent and m not in visited
            ]
            if not options:
                options = [
                    m for m in topology.neighbours(current) if m != parent
                ]
            if not options:
                raise ProtocolError(
                    f"search stranded at node {current} with no onward neighbour"
                )
            nxt = rng.choice(sorted(options))
        path.append(nxt)
        visited.add(nxt)
        current = nxt
        budget -= 1

    raise ProtocolError(
        "no node with a spare potential parent found within "
        f"{topology.num_nodes} search steps on {topology.name!r}"
    )
