"""Wire messages of Phases 2 and 3 (Figures 3 and 4)."""

from __future__ import annotations

from dataclasses import dataclass

from ..topology import NodeId


@dataclass(frozen=True)
class SearchMessage:
    """The ``SEARCH`` broadcast of Figure 3.

    Attributes
    ----------
    sender:
        The forwarding node ``i`` (receivers add it to their ``from``
        set so the redirection avoids the search path).
    target:
        ``aNode`` — the node that should process this hop of the search.
    distance:
        Remaining hops ``d``; the node receiving ``d = 0`` evaluates
        whether it can start a redirection.
    """

    sender: NodeId
    target: NodeId
    distance: int
    #: Engineering guard absent from the paper's message (Figure 3 lets
    #: the d = 0 search wander indefinitely): a hop budget after which a
    #: fruitless search dies instead of circulating forever.
    ttl: int = 64


@dataclass(frozen=True)
class ChangeMessage:
    """The ``CHANGE`` broadcast of Figure 4.

    Attributes
    ----------
    sender:
        The node ``i`` (or ``p`` in Figure 4's guard) sending the change.
    target:
        ``aNode`` — the next node to pull onto the decoy path.
    base_slot:
        ``nSlot`` — the minimum slot in the sender's closed
        neighbourhood; the target adopts ``base_slot − 1``, planting a
        strictly decreasing gradient along the decoy path.
    remaining:
        ``d`` — how many further decoy nodes to recruit after the target.
    """

    sender: NodeId
    target: NodeId
    base_slot: int
    remaining: int
