"""Source location privacy: Phases 2 and 3 and the full 3-phase pipeline.

* :func:`locate_redirection_node` / :func:`refine_slots` — centralised
  Phase 2 and Phase 3;
* :func:`build_slp_schedule` — the full centralised pipeline;
* :class:`SlpNodeProcess` / :func:`run_slp_setup` — the faithful
  distributed 3-phase protocol on the simulator.
"""

from .distributed import (
    SlpNodeProcess,
    SlpProtocolConfig,
    SlpSetupResult,
    run_slp_setup,
)
from .messages import ChangeMessage, SearchMessage
from .protocol import (
    PAPER_SEARCH_DISTANCES,
    SlpBuildResult,
    SlpParameters,
    build_slp_schedule,
    default_change_length,
)
from .refine import RefinementResult, refine_slots
from .search import SearchResult, locate_redirection_node

__all__ = [
    "ChangeMessage",
    "PAPER_SEARCH_DISTANCES",
    "RefinementResult",
    "SearchMessage",
    "SearchResult",
    "SlpBuildResult",
    "SlpNodeProcess",
    "SlpParameters",
    "SlpProtocolConfig",
    "SlpSetupResult",
    "build_slp_schedule",
    "default_change_length",
    "locate_redirection_node",
    "refine_slots",
    "run_slp_setup",
]
