"""Phase 3 — slot refinement (Figure 4), centralised form.

Starting from the Phase 2 node, the refinement recruits up to ``CL``
(change length) nodes onto a *decoy path*:

* the start node picks one of its spare potential parents (never its
  own parent, never a node on the search path) as the first decoy node;
* each decoy node adopts a slot one below the minimum slot in the
  previous node's closed neighbourhood — planting a strictly decreasing
  slot gradient that out-competes every legitimate slot nearby;
* each decoy node then recruits a further neighbour (again avoiding its
  parent and the search path) until the length budget runs out or no
  candidate remains (the paper: "until it encounters a node with only
  one potential parent").

A slot-gradient attacker reaching the area is therefore pulled along
the decoy path away from the source while the safety period burns down.

Afterwards the update cascade of Figure 2's ``receiveU`` repairs the
aggregation tree: any child whose slot is no longer strictly below its
parent's drops to ``parent − 1``, recursively.  The result is still a
*weak* DAS (every node keeps its parent transmitting later); strongness
is intentionally sacrificed — that is exactly the strong/weak
distinction the paper formalises.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core import Schedule
from ..errors import ProtocolError
from ..topology import NodeId, Topology
from .search import SearchResult


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of Phase 3.

    Attributes
    ----------
    schedule:
        The refined (weak DAS) schedule, shifted into the positive range.
    decoy_path:
        The recruited decoy nodes in order (first is the start node's
        chosen spare parent).
    start_node:
        The Phase 2 node that triggered the change.
    cascade_changes:
        How many ``receiveU``-style child repairs the update phase made —
        part of the message-overhead accounting.
    """

    schedule: Schedule
    decoy_path: Tuple[NodeId, ...]
    start_node: NodeId
    cascade_changes: int


def _closed_neighbourhood_min(
    topology: Topology, slots: Dict[NodeId, int], node: NodeId
) -> int:
    """``min({Ninfo[k].slot | k ∈ myN} ∪ {slot})`` of Figure 4."""
    values = [slots[node]]
    values.extend(slots[m] for m in topology.neighbours(node))
    return min(values)


def _pick_decoy(
    topology: Topology,
    candidates: Sequence[NodeId],
    source: Optional[NodeId],
    rng: random.Random,
) -> NodeId:
    """Figure 4's ``choose``: prefer candidates that divert the attacker
    *away* from the source (max hop distance from it), tie-break randomly."""
    pool = sorted(candidates)
    if source is not None:
        far = max(topology.hop_distance(c, source) for c in pool)
        pool = [c for c in pool if topology.hop_distance(c, source) == far]
    return rng.choice(pool)


def _subtree(schedule: Schedule, root: NodeId) -> Set[NodeId]:
    """All aggregation-tree descendants of ``root``, including it."""
    members = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for child in schedule.children_of(node):
            if child not in members:
                members.add(child)
                frontier.append(child)
    return members


def _cascade_and_collisions(
    topology: Topology,
    schedule: Schedule,
    slots: Dict[NodeId, int],
) -> int:
    """The weak-mode repair fixpoint after slot changes.

    Interleaves two monotone rules until stable:

    * Figure 2 ``receiveU``: children stay strictly below their parents
      (the weak DAS ordering obligation — the *strong* rule is
      deliberately not enforced, as it would erase the decoy gradient);
    * Figure 2 collision resolution: equal slots within a 2-hop
      neighbourhood are separated, the deeper node (or greater
      identifier at equal depth) yielding.

    Returns the number of repairs made (the update-phase overhead).
    """
    repairs = 0
    sink = topology.sink
    # Hoisted per-fixpoint tables (see das.centralized._repair): the
    # parent map and tie-break keys never change while slots move, and
    # ``tuple()`` of the cached frozenset keeps the collision pairs in
    # exactly the iteration order the tie-breaks were computed under.
    nodes = [n for n in topology.nodes if n != sink]
    parent_of = {n: schedule.parent_of(n) for n in nodes}
    parented = [n for n in nodes if parent_of[n] is not None]
    collision_pairs = {
        n: tuple(
            m for m in topology.collision_neighbourhood(n) if m != sink and m > n
        )
        for n in nodes
    }
    hop = {n: topology.sink_distance(n) for n in topology.nodes}
    changed = True
    guard = 20 * topology.num_nodes
    while changed:
        if guard <= 0:
            raise ProtocolError("update cascade did not converge")
        guard -= 1
        changed = False
        for n in parented:
            parent_slot = slots[parent_of[n]]
            if slots[n] >= parent_slot:
                slots[n] = parent_slot - 1
                repairs += 1
                changed = True
        for n in nodes:
            for m in collision_pairs[n]:
                if slots[n] == slots[m]:
                    loser = m if (hop[m], m) > (hop[n], n) else n
                    slots[loser] -= 1
                    repairs += 1
                    changed = True
    return repairs


#: Outer rounds re-asserting the decoy gradient against the cascade.
_GRADIENT_ROUNDS = 5


def _maintain_decoy_gradient(
    topology: Topology,
    schedule: Schedule,
    slots: Dict[NodeId, int],
    chain: Sequence[NodeId],
) -> int:
    """Enforce the paper's redirection invariant, then repair, repeatedly.

    §V is explicit about what the decoy path must achieve: "For the
    attacker to move to n first, the slot value of n needs to be smaller
    than all the other nodes in m's neighbourhood."  A single slot
    assignment establishes this only transiently — the ``receiveU``
    cascade then drops each decoy node's *subtree* below the decoy path,
    which would divert the attacker into the subtree instead.  The
    protocol's continuing dissemination re-asserts the invariant, which
    this function mirrors: a bounded number of rounds alternating

    1. a gradient sweep — each consecutive decoy node drops below every
       *non-basin* node in its predecessor's closed neighbourhood (the
       basin — every decoy node plus its cascaded subtree — is exempt:
       the ``receiveU`` cascade forces those below the decoy path anyway,
       and an attacker falling into a cascaded subtree is still diverted
       into the basin, away from the source), and
    2. the cascade/collision fixpoint.

    Bounding the rounds keeps the procedure terminating on graphs where
    gradient and cascade constraints interleave pathologically (the
    final cascade pass always runs, so weak-DAS validity never depends
    on the gradient converging).
    """
    repairs = 0
    sink = topology.sink
    basin: Set[NodeId] = set()
    for decoy in chain[1:]:
        basin |= _subtree(schedule, decoy)
    for _ in range(_GRADIENT_ROUNDS):
        tightened = False
        for a, b in zip(chain, chain[1:]):
            comp = set(topology.neighbours(a))
            comp.add(a)
            comp -= basin
            comp.discard(b)
            comp.discard(sink)
            if not comp:
                continue
            floor = min(slots[c] for c in comp)
            if slots[b] >= floor:
                slots[b] = floor - 1
                repairs += 1
                tightened = True
        repairs += _cascade_and_collisions(topology, schedule, slots)
        if not tightened:
            break
    return repairs


def refine_slots(
    topology: Topology,
    schedule: Schedule,
    search: SearchResult,
    change_length: int,
    seed: Optional[int] = None,
    avoid_source_pull: bool = True,
) -> RefinementResult:
    """Apply Phase 3 to ``schedule`` and return the refined schedule.

    Parameters
    ----------
    topology, schedule:
        The network and its Phase 1 schedule.
    search:
        The Phase 2 outcome (start node and the ``from`` set to avoid).
    change_length:
        ``CL`` — the decoy path length budget (Table I: ``Δss − SD``).
    seed:
        Seed for the decoy-choice tie-breaks.
    avoid_source_pull:
        When ``True`` (default) the ``choose`` preference steers decoy
        recruitment away from the source, the natural reading of the
        redirection's purpose; ``False`` picks uniformly, an ablation.

    Notes
    -----
    The start node itself keeps its slot (Figure 4 only reassigns the
    recruited ``aNode`` chain).  The decoy path may end early when no
    eligible neighbour remains; the returned path reports what was
    actually built.
    """
    if change_length < 1:
        raise ProtocolError("change length must be at least 1")
    rng = random.Random(seed)
    source = topology.source if (avoid_source_pull and topology.has_source) else None

    slots = schedule.slots()
    from_set: Set[NodeId] = set(search.from_set)
    decoy_path: List[NodeId] = []

    # --- startR: the first decoy node must be a *spare potential parent*.
    # The node's local `from` set is what it heard during the search —
    # its predecessor — not the whole search path (distant path nodes
    # were never audible to it); this matches the Phase 2 suitability
    # check exactly.
    start = search.start_node
    start_parent = schedule.parent_of(start)
    first_candidates = [
        m
        for m in topology.shortest_path_children(start)
        if m != start_parent
        and m != topology.sink
        and m != search.arrived_from
    ]
    if not first_candidates:
        raise ProtocolError(
            f"start node {start} has no spare potential parent; "
            "Phase 2 should not have selected it"
        )
    current = start
    base = _closed_neighbourhood_min(topology, slots, current)
    target = _pick_decoy(topology, first_candidates, source, rng)
    remaining = change_length

    # --- receiveC chain: recruit up to CL decoy nodes.
    while True:
        slots[target] = base - 1
        decoy_path.append(target)
        from_set.add(current)
        current = target
        remaining -= 1
        if remaining <= 0:
            break
        base = _closed_neighbourhood_min(topology, slots, current)
        parent = schedule.parent_of(current)
        candidates = [
            m
            for m in topology.neighbours(current)
            if m != parent
            and m != topology.sink
            and m not in from_set
            and m not in decoy_path
        ]
        if not candidates:
            break  # "until it encounters a node with only one potential parent"
        if source is not None:
            here = topology.hop_distance(current, source)
            if all(topology.hop_distance(c, source) < here for c in candidates):
                # Every onward choice walks the decoy toward the source —
                # extending it would guide the attacker instead of
                # diverting it.  End the path early.
                break
        target = _pick_decoy(topology, candidates, source, rng)

    refined = schedule.with_slots({n: slots[n] for n in slots})
    repaired_slots = refined.slots()
    cascade_changes = _maintain_decoy_gradient(
        topology, refined, repaired_slots, chain=[start, *decoy_path]
    )
    refined = refined.with_slots(repaired_slots)

    # Shift into the positive range required by Schedule (uniform shifts
    # preserve all order/equality relations).
    min_slot = min(repaired_slots.values())
    if min_slot < 1:
        shift = 1 - min_slot
        refined = refined.with_slots(
            {n: s + shift for n, s in refined.slots().items()}
        )

    return RefinementResult(
        schedule=refined,
        decoy_path=tuple(decoy_path),
        start_node=start,
        cascade_changes=cascade_changes,
    )
