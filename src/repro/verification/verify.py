"""``VerifySchedule`` — Algorithm 1, the δ-SLP-awareness decision procedure.

Given a topology, a slot assignment ``F``, an attacker and a safety
period ``δ``, the procedure either certifies that no valid attacker
trace reaches the source within ``δ`` periods — ``(True, ⊥, δ)`` — or
returns a *counterexample* trace and its capture period —
``(False, pc, p)`` — exactly like a model checker.

Instead of materialising every trace (the literal
``GenerateAllAttackerTraces`` lives in :mod:`repro.verification.traces`),
the implementation runs a 0-1 breadth-first search over attacker states
``(location, moves, history)`` with the period as path cost: downhill
moves cost one period (Algorithm 1 line 10), within-period uphill moves
cost zero (lines 11–12).  This explores the identical step relation and
returns a *minimum-period* counterexample, which makes the reported
capture period canonical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..attacker import AttackerSpec, paper_attacker
from ..core import Schedule, check_strong_das, check_weak_das
from ..errors import VerificationError
from ..topology import NodeId, Topology
from .traces import valid_steps

#: State: (location, moves-used-this-period, history tuple).
_State = Tuple[NodeId, int, Tuple[NodeId, ...]]


@dataclass(frozen=True)
class VerificationResult:
    """The triple returned by ``VerifySchedule``.

    Attributes
    ----------
    slp_aware:
        ``True`` when no valid attacker trace captures the source within
        the safety period.
    counterexample:
        The violating trace ``pc`` (attacker locations from ``s0`` to the
        source), or ``None`` when ``slp_aware``.
    periods:
        The capture period ``p`` of the counterexample, or the safety
        period ``δ`` when ``slp_aware`` (mirroring ``(True, ⊥, δ)``).
    states_explored:
        Search effort, for the Algorithm 1 cost benchmark.
    """

    slp_aware: bool
    counterexample: Optional[Tuple[NodeId, ...]]
    periods: int
    states_explored: int = 0

    def __bool__(self) -> bool:
        return self.slp_aware


def verify_schedule(
    topology: Topology,
    schedule: Schedule,
    safety_period: int,
    attacker: Optional[AttackerSpec] = None,
    source: Optional[NodeId] = None,
    start: Optional[NodeId] = None,
) -> VerificationResult:
    """Decide whether ``schedule`` is δ-SLP-aware (Definition 6).

    Parameters
    ----------
    topology, schedule:
        The network and slot assignment ``F``.
    safety_period:
        ``δ`` in whole TDMA periods (see
        :func:`repro.core.safety_period`).
    attacker:
        The ``(R, H, M, s0, D)`` parameters; defaults to the paper's
        ``(1, 0, 1, s0, first-heard)`` attacker.
    source:
        ``S``; defaults to the topology's designated source.
    start:
        ``s0``; defaults to the sink (the attacker lurks where traffic
        converges, as in the panda-hunter game).
    """
    if safety_period < 0:
        raise VerificationError("the safety period cannot be negative")
    spec = attacker if attacker is not None else paper_attacker()
    src = source if source is not None else topology.source
    s0 = start if start is not None else topology.sink
    if src not in topology:
        raise VerificationError(f"source {src} is not part of the topology")
    if s0 not in topology:
        raise VerificationError(f"attacker start {s0} is not part of the topology")
    if not schedule.covers(topology):
        raise VerificationError("the schedule does not cover the topology")

    if s0 == src:
        return VerificationResult(
            slp_aware=False,
            counterexample=(s0,),
            periods=0,
            states_explored=1,
        )

    initial: _State = (s0, 0, ())
    best_period: Dict[_State, int] = {initial: 0}
    predecessor: Dict[_State, Optional[_State]] = {initial: None}
    queue = deque([initial])
    explored = 0

    def reconstruct(state: _State) -> Tuple[NodeId, ...]:
        path = []
        cursor: Optional[_State] = state
        while cursor is not None:
            path.append(cursor[0])
            cursor = predecessor[cursor]
        return tuple(reversed(path))

    while queue:
        state = queue.popleft()
        location, moves, history = state
        period = best_period[state]
        explored += 1
        for step in valid_steps(
            topology, schedule, spec, location, period, moves, history
        ):
            if step.new_period > safety_period:
                continue  # cannot capture within δ along this step
            new_history = history
            if spec.h > 0:
                new_history = (history + (location,))[-spec.h :]
            new_state: _State = (step.destination, step.new_moves, new_history)
            known = best_period.get(new_state)
            if known is not None and known <= step.new_period:
                continue
            best_period[new_state] = step.new_period
            predecessor[new_state] = state
            if step.destination == src:
                return VerificationResult(
                    slp_aware=False,
                    counterexample=reconstruct(new_state),
                    periods=step.new_period,
                    states_explored=explored,
                )
            # 0-1 BFS: zero-cost (same-period) steps go to the front.
            if step.new_period == period:
                queue.appendleft(new_state)
            else:
                queue.append(new_state)

    return VerificationResult(
        slp_aware=True,
        counterexample=None,
        periods=safety_period,
        states_explored=explored,
    )


def minimum_capture_period(
    topology: Topology,
    schedule: Schedule,
    attacker: Optional[AttackerSpec] = None,
    source: Optional[NodeId] = None,
    start: Optional[NodeId] = None,
    bound: Optional[int] = None,
) -> Optional[int]:
    """The capture time ``δ_{F,A}`` of Definition 4, in periods.

    Returns ``None`` when no valid attacker trace ever reaches the
    source (the attacker strands in a slot-gradient basin).  ``bound``
    defaults to one period per node — no minimal capture can take
    longer, since a minimum-period trace never revisits a state.
    """
    horizon = bound if bound is not None else topology.num_nodes
    result = verify_schedule(
        topology,
        schedule,
        safety_period=horizon,
        attacker=attacker,
        source=source,
        start=start,
    )
    return None if result.slp_aware else result.periods


def verify_schedule_all_starts(
    topology: Topology,
    schedule: Schedule,
    safety_period: int,
    attacker: Optional[AttackerSpec] = None,
    source: Optional[NodeId] = None,
) -> Dict[NodeId, VerificationResult]:
    """``VerifySchedule`` for every possible attacker start position.

    The paper's eavesdropper is *distributed* — present at various
    network positions — yet the evaluation (like the panda-hunter
    tradition) starts it at the sink, where traffic converges.  This
    extension quantifies the stronger model: the verdict per ``s0``.
    The source itself is skipped (a capture by definition).

    Returns a mapping ``start → VerificationResult``; a schedule is
    robustly δ-SLP-aware only when every entry is.
    """
    src = source if source is not None else topology.source
    results: Dict[NodeId, VerificationResult] = {}
    for start in topology.nodes:
        if start == src:
            continue
        results[start] = verify_schedule(
            topology,
            schedule,
            safety_period,
            attacker=attacker,
            source=src,
            start=start,
        )
    return results


def is_slp_aware_das(
    topology: Topology,
    refined: Schedule,
    baseline: Schedule,
    attacker: Optional[AttackerSpec] = None,
    require_strong: bool = False,
) -> bool:
    """Definition 5: is ``refined`` a strong/weak SLP-aware DAS w.r.t.
    ``baseline``?

    Condition 1: ``refined`` is a strong (resp. weak) DAS.
    Condition 2: its capture time strictly exceeds the baseline's
    (never-captured counts as infinite).
    """
    check = check_strong_das if require_strong else check_weak_das
    if not check(topology, refined).ok:
        return False
    refined_capture = minimum_capture_period(topology, refined, attacker=attacker)
    baseline_capture = minimum_capture_period(topology, baseline, attacker=attacker)
    if baseline_capture is None:
        # The baseline is already uncapturable; the refined schedule must
        # be uncapturable too to be no worse.
        return refined_capture is None
    if refined_capture is None:
        return True
    return refined_capture > baseline_capture
