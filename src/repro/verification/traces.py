"""Attacker trace generation — ``GenerateAllAttackerTraces`` of Algorithm 1.

A *trace* is a sequence of locations ``⟨s0 s1 … sj⟩`` with every
consecutive pair connected by an edge (the attacker moves one hop at a
time).  A trace is *valid* when every step is justified by the
attacker's parameters: the destination is among the senders the
attacker could have heard (the ``R`` lowest-slot 1-hop neighbours —
``1HopNsWithRLowestSlots``) and chosen by its decision function ``D``,
and the move budget ``M`` per period is respected.

Algorithm 1 counts periods exactly as implemented here: a move to a
*lower* slot starts a new period (the attacker heard it earlier in the
frame and committed its move; line 10), while a move to a higher slot
spends one of the ``M`` within-period moves (lines 11–12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..attacker import AttackerSpec, HeardMessage
from ..core import Schedule
from ..errors import VerificationError
from ..topology import NodeId, Topology


@dataclass(frozen=True)
class AttackerStep:
    """One justified attacker transition."""

    destination: NodeId
    new_period: int
    new_moves: int


def audible_senders(
    topology: Topology, schedule: Schedule, location: NodeId
) -> List[NodeId]:
    """The 1-hop neighbours of ``location`` that transmit data.

    The sink never transmits (Def. 2 condition 2 excludes it from every
    sender set), so it is never audible.
    """
    return [
        m
        for m in topology.neighbours(location)
        if m in schedule and m != schedule.sink
    ]


def lowest_slot_neighbours(
    topology: Topology,
    schedule: Schedule,
    location: NodeId,
    r: int,
) -> List[HeardMessage]:
    """``1HopNsWithRLowestSlots``: the ``R`` earliest-transmitting
    neighbours of ``location``, as heard messages in slot order."""
    senders = sorted(
        audible_senders(topology, schedule, location),
        key=lambda m: (schedule.slot_of(m), m),
    )
    return [
        HeardMessage(sender=m, slot=schedule.slot_of(m), time=float(schedule.slot_of(m)))
        for m in senders[:r]
    ]


def valid_steps(
    topology: Topology,
    schedule: Schedule,
    spec: AttackerSpec,
    location: NodeId,
    period: int,
    moves: int,
    history: Tuple[NodeId, ...],
) -> Iterator[AttackerStep]:
    """Yield every attacker step valid from the given state.

    Implements lines 7–12 of Algorithm 1: compute ``B``, ask ``D`` for
    the candidate destinations, and apply the period/move bookkeeping.
    """
    heard = lowest_slot_neighbours(topology, schedule, location, spec.r)
    if not heard:
        return
    here_slot = schedule.slot_of(location) if location in schedule else None
    for destination in sorted(spec.decision.candidates(tuple(heard), history)):
        if not topology.are_linked(location, destination):
            continue  # line 8: moving to an unheard location is invalid
        if here_slot is None or here_slot > schedule.slot_of(destination):
            # Line 10: a downhill move commits the period.
            yield AttackerStep(destination, period + 1, 1)
        elif moves >= spec.m:
            continue  # line 11: move budget exhausted — the trace ends
        else:
            yield AttackerStep(destination, period, moves + 1)


def generate_attacker_traces(
    topology: Topology,
    schedule: Schedule,
    spec: AttackerSpec,
    start: NodeId,
    max_periods: int,
    max_traces: Optional[int] = None,
) -> Iterator[Tuple[NodeId, ...]]:
    """Enumerate the valid attacker traces of at most ``max_periods``.

    This is the literal ``GenerateAllAttackerTraces``: a depth-first
    enumeration of maximal valid traces.  The efficient verifier in
    :mod:`repro.verification.verify` explores the same step relation as
    a shortest-path search instead; this generator exists for tests,
    analysis and the Algorithm 1 benchmark.
    """
    if max_periods < 0:
        raise VerificationError("max_periods cannot be negative")
    emitted = 0

    def extend(
        location: NodeId,
        period: int,
        moves: int,
        history: Tuple[NodeId, ...],
        trace: List[NodeId],
        seen: frozenset,
    ) -> Iterator[Tuple[NodeId, ...]]:
        nonlocal emitted
        steps = [
            s
            for s in valid_steps(
                topology, schedule, spec, location, period, moves, history
            )
            if s.new_period <= max_periods
            and (s.destination, s.new_period, s.new_moves) not in seen
        ]
        if not steps:
            yield tuple(trace)
            return
        for step in steps:
            if max_traces is not None and emitted >= max_traces:
                return
            new_history = history
            if spec.h > 0:
                new_history = (history + (location,))[-spec.h :]
            trace.append(step.destination)
            marker = (step.destination, step.new_period, step.new_moves)
            yield from extend(
                step.destination,
                step.new_period,
                step.new_moves,
                new_history,
                trace,
                seen | {marker},
            )
            trace.pop()

    for full in extend(start, 0, 0, (), [start], frozenset()):
        emitted += 1
        yield full
        if max_traces is not None and emitted >= max_traces:
            return
