"""Algorithm 1 — the ``VerifySchedule`` decision procedure and the
attacker trace generator it is defined over."""

from .traces import (
    AttackerStep,
    audible_senders,
    generate_attacker_traces,
    lowest_slot_neighbours,
    valid_steps,
)
from .verify import (
    VerificationResult,
    is_slp_aware_das,
    minimum_capture_period,
    verify_schedule,
    verify_schedule_all_starts,
)

__all__ = [
    "AttackerStep",
    "VerificationResult",
    "audible_senders",
    "generate_attacker_traces",
    "is_slp_aware_das",
    "lowest_slot_neighbours",
    "minimum_capture_period",
    "valid_steps",
    "verify_schedule",
    "verify_schedule_all_starts",
]
