"""Slot-gradient field analysis.

A TDMA slot assignment induces a *gradient field* over the network: a
first-heard attacker standing at node ``v`` always steps to the
minimum-slot audible neighbour, so every node has a unique successor
and the field decomposes into descent paths that terminate in *basins*
(local minima).  Privacy analysis reduces to geometry: the source is
safe against the deterministic attacker exactly when the sink's descent
path misses it within the safety period.

These tools expose that geometry directly — which basin each node
drains to, where the sink's descent goes, how a refinement reshaped the
field — complementing the formal verifier (which answers yes/no with a
counterexample) with the *why*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import Schedule
from ..errors import VerificationError
from ..topology import NodeId, Topology


def gradient_successor(
    topology: Topology, schedule: Schedule, node: NodeId
) -> Optional[NodeId]:
    """The next node a first-heard attacker at ``node`` moves to.

    ``None`` when ``node`` is a local minimum of the field (its own slot
    is below every audible neighbour's): the attacker hears its own
    location's transmission first and camps.
    """
    audible = [
        m
        for m in topology.neighbours(node)
        if m in schedule and m != schedule.sink
    ]
    if not audible:
        return None
    nxt = min(audible, key=lambda m: (schedule.slot_of(m), m))
    if (
        node != schedule.sink
        and node in schedule
        and schedule.slot_of(nxt) >= schedule.slot_of(node)
    ):
        return None
    return nxt


def descent_path(
    topology: Topology,
    schedule: Schedule,
    start: Optional[NodeId] = None,
    max_steps: Optional[int] = None,
) -> Tuple[NodeId, ...]:
    """The full gradient descent from ``start`` (default: the sink).

    Descent is finite — slots strictly decrease along it — but a step
    bound can truncate it to a safety-period horizon.
    """
    node = start if start is not None else topology.sink
    if node not in topology:
        raise VerificationError(f"start node {node} is not in the topology")
    limit = max_steps if max_steps is not None else topology.num_nodes
    path = [node]
    for _ in range(limit):
        nxt = gradient_successor(topology, schedule, node)
        if nxt is None:
            break
        path.append(nxt)
        node = nxt
    return tuple(path)


@dataclass(frozen=True)
class GradientField:
    """The complete gradient structure of one schedule.

    Attributes
    ----------
    successor:
        Each node's descent successor (``None`` at local minima).
    basin_of:
        The local minimum each node's descent terminates in.
    minima:
        All local minima, sorted.
    """

    successor: Dict[NodeId, Optional[NodeId]]
    basin_of: Dict[NodeId, NodeId]
    minima: Tuple[NodeId, ...]

    def basin_members(self, minimum: NodeId) -> Tuple[NodeId, ...]:
        """Every node whose descent drains to ``minimum``."""
        return tuple(
            sorted(n for n, b in self.basin_of.items() if b == minimum)
        )


def gradient_field(topology: Topology, schedule: Schedule) -> GradientField:
    """Compute the full gradient field (successors, basins, minima)."""
    successor: Dict[NodeId, Optional[NodeId]] = {}
    for node in topology.nodes:
        successor[node] = gradient_successor(topology, schedule, node)

    basin_of: Dict[NodeId, NodeId] = {}

    def resolve(node: NodeId) -> NodeId:
        trail: List[NodeId] = []
        cursor = node
        while cursor not in basin_of and successor[cursor] is not None:
            trail.append(cursor)
            cursor = successor[cursor]
        terminal = basin_of.get(cursor, cursor)
        for visited in trail:
            basin_of[visited] = terminal
        basin_of[cursor] = terminal
        return terminal

    for node in topology.nodes:
        resolve(node)

    minima = tuple(sorted({basin_of[n] for n in topology.nodes}))
    return GradientField(successor=successor, basin_of=basin_of, minima=minima)


def predicts_capture(
    topology: Topology,
    schedule: Schedule,
    safety_periods: int,
    source: Optional[NodeId] = None,
    start: Optional[NodeId] = None,
) -> bool:
    """Whether the deterministic gradient descent captures the source.

    Equivalent to ``not verify_schedule(...).slp_aware`` for the paper's
    (1, 0, 1, s0, first-heard) attacker, but O(path length): each descent
    step is one period (downhill moves commit a period; Algorithm 1
    line 10).
    """
    src = source if source is not None else topology.source
    path = descent_path(topology, schedule, start=start, max_steps=safety_periods)
    return src in path


def refinement_footprint(
    topology: Topology, baseline: Schedule, refined: Schedule
) -> Dict[str, object]:
    """How a refinement reshaped the gradient field.

    Returns a report dict with the changed-successor nodes, the basins
    before and after, and whether the sink's descent was redirected —
    the analysis view of what Phase 3 achieved.
    """
    before = gradient_field(topology, baseline)
    after = gradient_field(topology, refined)
    redirected = [
        n
        for n in topology.nodes
        if before.successor[n] != after.successor[n]
    ]
    sink_before = descent_path(topology, baseline)
    sink_after = descent_path(topology, refined)
    return {
        "redirected_nodes": tuple(sorted(redirected)),
        "minima_before": before.minima,
        "minima_after": after.minima,
        "sink_descent_before": sink_before,
        "sink_descent_after": sink_after,
        "descent_changed": sink_before != sink_after,
    }
