"""Schedule analysis: the slot-gradient geometry behind the privacy
results (descent paths, basins, refinement footprints)."""

from .gradient import (
    GradientField,
    descent_path,
    gradient_field,
    gradient_successor,
    predicts_capture,
    refinement_footprint,
)

__all__ = [
    "GradientField",
    "descent_path",
    "gradient_field",
    "gradient_successor",
    "predicts_capture",
    "refinement_footprint",
]
