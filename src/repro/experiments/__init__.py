"""The paper's evaluation, reproducible: Table I parameters, the
repeated-run experiment engine, Figure 5 and the overhead claim."""

from .config import (
    PAPER,
    PAPER_SIZES,
    PaperParameters,
    format_table1,
    paper_topologies,
)
from .figure5 import (
    Figure5Cell,
    Figure5Result,
    PAPER_FIGURE5_REFERENCE,
    format_figure5,
    headline_reduction,
    run_figure5,
)
from .overhead import (
    OverheadMeasurement,
    format_overhead,
    measure_setup_overhead,
)
from .parallel import (
    MIN_NODE_RUNS_FOR_POOL,
    ParallelExperimentRunner,
    default_workers,
    make_runner,
    plan_workers,
    seed_chunks,
    workers_argument,
)
from .runner import (
    ALGORITHMS,
    PROTECTIONLESS,
    SLP,
    ExperimentConfig,
    ExperimentOutcome,
    ExperimentRunner,
)
from .schedule_cache import (
    ScheduleCache,
    configure_schedule_cache,
    default_cache,
    default_cache_stats,
    default_schedule_cache,
    reset_default_cache,
    schedule_cache_enabled,
    schedule_key,
    topology_fingerprint,
)

__all__ = [
    "ALGORITHMS",
    "ExperimentConfig",
    "ExperimentOutcome",
    "ExperimentRunner",
    "Figure5Cell",
    "Figure5Result",
    "MIN_NODE_RUNS_FOR_POOL",
    "OverheadMeasurement",
    "PAPER",
    "PAPER_FIGURE5_REFERENCE",
    "PAPER_SIZES",
    "PROTECTIONLESS",
    "ParallelExperimentRunner",
    "PaperParameters",
    "SLP",
    "ScheduleCache",
    "configure_schedule_cache",
    "default_cache",
    "default_cache_stats",
    "default_schedule_cache",
    "default_workers",
    "reset_default_cache",
    "format_figure5",
    "format_overhead",
    "format_table1",
    "headline_reduction",
    "make_runner",
    "measure_setup_overhead",
    "paper_topologies",
    "plan_workers",
    "run_figure5",
    "schedule_cache_enabled",
    "schedule_key",
    "seed_chunks",
    "topology_fingerprint",
    "workers_argument",
]
