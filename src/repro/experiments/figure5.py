"""Figure 5 — capture ratio vs network size, at search distances 3 and 5.

:func:`run_figure5` regenerates one panel of the figure: for each grid
size it measures the capture ratio of protectionless DAS and SLP DAS
over repeated seeded runs.  :func:`format_figure5` renders the series
as the text equivalent of the paper's bar chart, and
:func:`headline_reduction` computes the paper's summary statistic
("the SLP-aware DAS protocol reduces the capture ratio by 50%").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from concurrent.futures import ProcessPoolExecutor
from contextlib import ExitStack

from pathlib import Path

from ..attacker import AttackerSpec
from ..errors import ConfigurationError
from ..metrics import CaptureStats
from ..topology import paper_grid
from .config import PAPER, PAPER_SIZES, PaperParameters
from .parallel import ParallelExperimentRunner, resolve_workers
from .resilience import FailedRun, SweepCheckpoint
from .runner import PROTECTIONLESS, SLP, ExperimentConfig, ExperimentRunner

#: Paper reference values read off Figure 5 (approximate, for the
#: paper-vs-measured table in EXPERIMENTS.md, not for assertions).
PAPER_FIGURE5_REFERENCE = {
    3: {11: (0.32, 0.16), 15: (0.29, 0.15), 21: (0.18, 0.09)},
    5: {11: (0.32, 0.15), 15: (0.29, 0.14), 21: (0.18, 0.10)},
}


@dataclass(frozen=True)
class Figure5Cell:
    """One (size, algorithm-pair) measurement of the figure.

    ``failures`` is empty unless supervised execution quarantined seeds
    in either sweep of the cell; ``degraded`` records that the
    divergence guard re-ran the cell on the legacy engines.
    """

    size: int
    protectionless: CaptureStats
    slp: CaptureStats
    failures: Tuple[FailedRun, ...] = ()
    degraded: bool = False

    @property
    def reduction(self) -> float:
        """Relative capture reduction SLP achieves at this size."""
        return self.slp.reduction_versus(self.protectionless)


@dataclass(frozen=True)
class Figure5Result:
    """One full panel (one search distance) of Figure 5."""

    search_distance: int
    repeats: int
    cells: Tuple[Figure5Cell, ...]

    def cell(self, size: int) -> Figure5Cell:
        """The measurement for one grid size."""
        for cell in self.cells:
            if cell.size == size:
                return cell
        raise ConfigurationError(f"no cell for size {size} in this panel")

    @property
    def mean_reduction(self) -> float:
        """Mean relative reduction across sizes — the headline number."""
        reductions = [c.reduction for c in self.cells if c.protectionless.captures]
        if not reductions:
            return 0.0
        return sum(reductions) / len(reductions)


def run_figure5(
    search_distance: int,
    sizes: Sequence[int] = PAPER_SIZES,
    repeats: int = 30,
    base_seed: int = 0,
    noise: object = "casino",
    attacker: Optional[AttackerSpec] = None,
    parameters: PaperParameters = PAPER,
    workers: Optional[int] = None,
    kernel: Optional[str] = None,
    setup_kernel: Optional[str] = None,
    use_schedule_cache: bool = True,
    use_distributed: bool = False,
    checkpoint: Optional[Path] = None,
    resume: bool = False,
    guard: Optional[str] = None,
    chunk_timeout: Optional[float] = None,
    on_result=None,
) -> Figure5Result:
    """Regenerate one panel of Figure 5.

    Parameters mirror the paper's setup; reduce ``repeats`` or ``sizes``
    for quick runs (the benchmarks do).  ``workers`` fans the seed
    sweeps out over that many processes (``None`` = serial); results are
    identical either way.  ``kernel``, ``setup_kernel`` and
    ``use_schedule_cache`` are the bisection knobs of the performance
    layer (also identical either way): the protectionless cells of the
    two panels share one schedule per (size, seed) through the cache.
    ``use_distributed`` builds every schedule with the full
    message-level setup protocols instead of the centralised pipeline.

    ``checkpoint`` names a directory where completed per-seed results
    are persisted as they land; with ``resume=True`` an interrupted
    panel restarts only the missing seeds and reproduces the
    uninterrupted panel bit-for-bit.  ``guard="differential"`` audits a
    sample of every sweep against the legacy engines and degrades a
    diverging cell to them; ``chunk_timeout`` bounds how long one
    parallel chunk may run before its worker is presumed hung.
    ``on_result(seed, result)`` fires after every completed run across
    all sweeps of the panel (the CLI's live progress hook).
    """
    workers = resolve_workers(workers)
    store = SweepCheckpoint(checkpoint) if checkpoint is not None else None
    bundle_dir = (
        str(Path(checkpoint) / "divergence") if checkpoint is not None else "divergence"
    )
    cells = []
    with ExitStack() as stack:
        # One pool serves every size and both algorithms: pool start-up
        # is paid once per figure, not once per cell.
        pool = None
        if workers is not None and workers > 1:
            pool = stack.enter_context(ProcessPoolExecutor(max_workers=workers))
        for size in sizes:
            topology = paper_grid(size)
            if pool is None:
                runner: ExperimentRunner = ExperimentRunner(topology)
            else:
                runner = ParallelExperimentRunner(
                    topology,
                    workers=workers,
                    executor=pool,
                    chunk_timeout=chunk_timeout,
                )
            base = runner.run_resilient(
                ExperimentConfig(
                    algorithm=PROTECTIONLESS,
                    repeats=repeats,
                    base_seed=base_seed,
                    noise=noise,
                    attacker=attacker,
                    parameters=parameters,
                    kernel=kernel,
                    setup_kernel=setup_kernel,
                    use_schedule_cache=use_schedule_cache,
                    use_distributed=use_distributed,
                ),
                checkpoint=store,
                resume=resume,
                guard=guard,
                bundle_dir=bundle_dir,
                on_result=on_result,
            )
            slp = runner.run_resilient(
                ExperimentConfig(
                    algorithm=SLP,
                    search_distance=search_distance,
                    repeats=repeats,
                    base_seed=base_seed,
                    noise=noise,
                    attacker=attacker,
                    parameters=parameters,
                    kernel=kernel,
                    setup_kernel=setup_kernel,
                    use_schedule_cache=use_schedule_cache,
                    use_distributed=use_distributed,
                ),
                checkpoint=store,
                resume=resume,
                guard=guard,
                bundle_dir=bundle_dir,
                on_result=on_result,
            )
            cells.append(
                Figure5Cell(
                    size=size,
                    protectionless=base.stats,
                    slp=slp.stats,
                    failures=tuple(base.failures) + tuple(slp.failures),
                    degraded=any(
                        outcome.guard is not None and outcome.guard.degraded
                        for outcome in (base, slp)
                    ),
                )
            )
    return Figure5Result(
        search_distance=search_distance,
        repeats=repeats,
        cells=tuple(cells),
    )


def format_figure5(result: Figure5Result) -> str:
    """Render a panel as the text analogue of the paper's bar chart."""
    lines = [
        f"Figure 5{'a' if result.search_distance == 3 else 'b'}: "
        f"capture ratio (%), search distance = {result.search_distance}, "
        f"{result.repeats} runs per bar",
        "",
        f"{'Size':<6} {'Protectionless':>16} {'SLP DAS':>10} {'Reduction':>11}",
        "-" * 47,
    ]
    for cell in result.cells:
        lines.append(
            f"{cell.size:<6} "
            f"{100 * cell.protectionless.capture_ratio:>15.1f}% "
            f"{100 * cell.slp.capture_ratio:>9.1f}% "
            f"{100 * cell.reduction:>10.1f}%"
        )
    lines.append("-" * 47)
    lines.append(f"mean reduction: {100 * result.mean_reduction:.1f}%")
    return "\n".join(lines)


def headline_reduction(
    repeats: int = 30,
    sizes: Sequence[int] = PAPER_SIZES,
    base_seed: int = 0,
    noise: object = "casino",
    workers: Optional[int] = None,
) -> Dict[int, float]:
    """The §VI-E headline: mean capture-ratio reduction per search
    distance (the paper reports ~50%)."""
    return {
        sd: run_figure5(
            sd,
            sizes=sizes,
            repeats=repeats,
            base_seed=base_seed,
            noise=noise,
            workers=workers,
        ).mean_reduction
        for sd in PAPER.search_distances
    }
