"""The repeated-run experiment engine behind every figure and table.

One *run* of an experiment (matching one TOSSIM execution in the paper)
is: build a schedule for the chosen algorithm under a fresh seed,
simulate the operational phase against the attacker, record the
outcome.  :class:`ExperimentRunner` sweeps seeds and aggregates runs
into :class:`~repro.metrics.CaptureStats`.

Schedules come from the seeded centralised pipeline by default — one
seed reproduces one plausible outcome of the distributed protocols at a
fraction of the cost (the distributed protocols are validated
separately; see DESIGN.md).  Passing ``use_distributed=True`` runs the
full message-level setup instead, which the examples demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..app import (
    KERNELS,
    OperationalResult,
    Perturbation,
    SourcePlan,
    run_operational_phase,
)
from ..attacker import AttackerSpec
from ..core import Schedule
from ..das import centralized_das_schedule, run_das_setup
from ..das.protocol import resolve_setup_kernel
from ..errors import invalid_field, sweep_failed
from ..metrics import CaptureStats, capture_stats
from ..simulator import CasinoLabNoise, NoiseModel
from ..slp import (
    SlpParameters,
    SlpProtocolConfig,
    build_slp_schedule,
    run_slp_setup,
)
from ..telemetry import active_tracer, default_registry
from ..topology import Topology
from .config import PAPER, PaperParameters
from .faults import active_fault_plan
from .resilience import (
    GUARD_MODES,
    FailedRun,
    GuardReport,
    SweepCheckpoint,
    apply_divergence_guard,
)
from .schedule_cache import (
    ScheduleCache,
    default_schedule_cache,
    schedule_cache_enabled,
    schedule_key,
    topology_fingerprint,
)

#: Algorithm identifiers (the two bars of Figure 5).
PROTECTIONLESS = "protectionless"
SLP = "slp"
ALGORITHMS = (PROTECTIONLESS, SLP)


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell: topology × algorithm × parameters.

    Attributes
    ----------
    algorithm:
        :data:`PROTECTIONLESS` or :data:`SLP`.
    search_distance:
        ``SD`` for the SLP algorithm (ignored for protectionless).
    repeats:
        Number of seeded runs to aggregate.
    base_seed:
        Seed of the first run; run ``i`` uses ``base_seed + i``.
    noise:
        ``"casino"`` (default, the paper's noise), ``"ideal"``, or a
        concrete :class:`~repro.simulator.NoiseModel` instance.
    attacker:
        Attacker parameters; ``None`` = the paper's (1,0,1,s0,D).
    use_distributed:
        Build schedules with the full message-level protocols instead of
        the centralised pipeline.
    parameters:
        The Table I constants in force.
    source_plan:
        Which nodes hold the asset (``None`` = the topology's single
        designated source, the paper's workload).  Multi-source and
        mobile-source scenarios set this.
    perturbations:
        Scheduled mid-run changes (node death, sleeps, duty cycles)
        applied in every run of the sweep.
    max_periods:
        Override the safety-period budget per run (``None`` = Eq. 1).
    kernel:
        Operational-phase kernel: ``"fast"``, ``"legacy"`` or ``None``
        (the engine default, currently fast).  Both kernels are
        bit-identical; the knob exists so regressions can be bisected
        to a layer.  Carried on the config so parallel workers inherit
        the choice.
    setup_kernel:
        Setup-phase engine for distributed schedule builds
        (``use_distributed=True``): ``"fast"`` (the flat-round kernel
        of :mod:`repro.das.fast_setup`), ``"legacy"`` (the event heap)
        or ``None`` for the engine default.  Bit-identical either way;
        ignored by centralised builds.  Carried on the config so
        parallel workers inherit the choice.
    use_schedule_cache:
        Whether :meth:`ExperimentRunner.build_schedule` may reuse
        memoised schedules (identical either way — schedule building is
        deterministic).  Carried on the config for the same reason.
    schedule_jitter:
        Whether centralised Phase 1 builds draw TOSSIM-like random
        arrival-order priorities from the run seed (the default, and
        the paper's behaviour).  ``False`` uses identifier-ordered
        priorities: one canonical schedule per topology regardless of
        seed, which the schedule cache then keys *without* the seed —
        a 30-seed sweep builds once.
    telemetry:
        Whether runs record telemetry spans/metrics.  Stamped
        automatically when a :class:`~repro.telemetry.TelemetrySession`
        is active in the dispatching process, and carried on the config
        so pool workers instrument themselves and ship their spans back
        with each chunk.  Never affects results — instrumentation only
        reads clocks inside already-entered spans and never touches the
        RNG stream.
    """

    algorithm: str = PROTECTIONLESS
    search_distance: int = 3
    repeats: int = 30
    base_seed: int = 0
    noise: object = "casino"
    attacker: Optional[AttackerSpec] = None
    use_distributed: bool = False
    parameters: PaperParameters = field(default_factory=lambda: PAPER)
    source_plan: Optional[SourcePlan] = None
    perturbations: Tuple[Perturbation, ...] = ()
    max_periods: Optional[int] = None
    kernel: Optional[str] = None
    setup_kernel: Optional[str] = None
    use_schedule_cache: bool = True
    schedule_jitter: bool = True
    telemetry: bool = False

    @property
    def seeded_schedule(self) -> bool:
        """Whether schedule construction draws any randomness from the
        run seed.  Distributed builds always do (message timing), SLP
        always does (search/refinement tie-breaks); a centralised
        protectionless build only through the jittered priorities."""
        return (
            self.use_distributed
            or self.algorithm != PROTECTIONLESS
            or self.schedule_jitter
        )

    def __post_init__(self) -> None:
        if self.kernel is not None and self.kernel not in KERNELS:
            raise invalid_field(
                "ExperimentConfig",
                "kernel",
                self.kernel,
                f"pick one of {KERNELS} (or None for the default)",
            )
        resolve_setup_kernel(self.setup_kernel, "ExperimentConfig")
        if self.algorithm not in ALGORITHMS:
            raise invalid_field(
                "ExperimentConfig",
                "algorithm",
                self.algorithm,
                f"unknown algorithm; pick one of {ALGORITHMS}",
            )
        if self.repeats < 1:
            raise invalid_field(
                "ExperimentConfig",
                "repeats",
                self.repeats,
                "an experiment needs at least one repeat",
            )
        object.__setattr__(self, "perturbations", tuple(self.perturbations))
        if self.max_periods is not None and self.max_periods < 1:
            raise invalid_field(
                "ExperimentConfig",
                "max_periods",
                self.max_periods,
                "a run must cover at least one period",
            )

    def make_noise(self) -> Optional[NoiseModel]:
        """Instantiate a fresh noise model for one run."""
        if isinstance(self.noise, NoiseModel):
            return self.noise
        if self.noise == "casino":
            return CasinoLabNoise()
        if self.noise == "ideal":
            return None
        raise invalid_field(
            "ExperimentConfig", "noise", self.noise, "unknown noise spec"
        )


@dataclass(frozen=True)
class ExperimentOutcome:
    """All runs of one experiment cell plus their aggregation.

    ``failures`` is empty unless supervised execution had to quarantine
    seeds (see :mod:`repro.experiments.resilience`); ``results``/
    ``stats`` then cover the surviving seeds only, still in seed order.
    ``guard`` is set when a kernel-divergence guard audited the sweep.
    """

    config: ExperimentConfig
    topology_name: str
    results: Sequence[OperationalResult]
    stats: CaptureStats
    failures: Tuple[FailedRun, ...] = ()
    guard: Optional[GuardReport] = None


class ExperimentRunner:
    """Sweeps seeds for one topology and experiment configuration.

    Runs execute serially in-process; the drop-in
    :class:`~repro.experiments.ParallelExperimentRunner` fans the same
    sweep out over worker processes with identical results.

    ``schedule_cache`` overrides the process-default
    :class:`~repro.experiments.schedule_cache.ScheduleCache` consulted
    by :meth:`build_schedule`; pass an explicit cache to isolate sweeps
    or ``None`` to share the default (the normal mode — cache hits are
    what make identity re-sweeps and algorithm comparisons cheap).
    """

    def __init__(
        self,
        topology: Topology,
        schedule_cache: Optional[ScheduleCache] = None,
    ) -> None:
        self._topology = topology
        self._schedule_cache = schedule_cache
        self._fingerprint: Optional[str] = None

    @property
    def topology(self) -> Topology:
        """The network under test."""
        return self._topology

    def close(self) -> None:
        """Release sweep resources.  A no-op for the serial engine; kept
        so serial and parallel runners share a lifecycle protocol."""

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Schedule construction
    # ------------------------------------------------------------------
    def build_schedule(self, config: ExperimentConfig, seed: int) -> Schedule:
        """Build (or fetch) the run's schedule for the configured algorithm.

        Construction is deterministic in ``(topology content, algorithm,
        parameters, seed)``, so results are memoised in a
        content-addressed :class:`ScheduleCache` — a cached build and a
        fresh one are the same immutable object value.  Disabled per
        sweep via ``config.use_schedule_cache`` or process-wide via
        :func:`~repro.experiments.schedule_cache.configure_schedule_cache`.
        """
        cache = self._schedule_cache
        if cache is None and schedule_cache_enabled():
            cache = default_schedule_cache()
        if cache is None or not config.use_schedule_cache:
            return self._traced_build(config, seed)
        key = self.schedule_key_for(config, seed)
        return cache.get_or_build(key, lambda: self._traced_build(config, seed))

    def schedule_key_for(self, config: ExperimentConfig, seed: int) -> Tuple:
        """The content-addressed cache key of one run's schedule build.

        Public so the parallel runner can ship the parent's already-built
        entries to worker processes under exactly the keys the workers
        will look up."""
        if self._fingerprint is None:
            self._fingerprint = topology_fingerprint(self._topology)
        return schedule_key(
            self._fingerprint,
            self._topology,
            config.algorithm,
            seed,
            config.search_distance,
            config.use_distributed,
            config.parameters,
            config.noise,
            seeded=config.seeded_schedule,
            jitter=config.schedule_jitter,
            setup_kernel=(
                resolve_setup_kernel(config.setup_kernel, "ExperimentConfig")
                if config.use_distributed
                else None
            ),
        )

    def _traced_build(self, config: ExperimentConfig, seed: int) -> Schedule:
        """``_build_schedule`` under a ``schedule.build`` span.

        Only actual builds are spanned — a cache hit never reaches
        this, so the trace shows real construction work."""
        tracer = active_tracer()
        if tracer is None:
            return self._build_schedule(config, seed)
        with tracer.span(
            "schedule.build", algorithm=config.algorithm, seed=seed
        ):
            return self._build_schedule(config, seed)

    def _build_schedule(self, config: ExperimentConfig, seed: int) -> Schedule:
        params = config.parameters
        if config.algorithm == PROTECTIONLESS:
            if config.use_distributed:
                return run_das_setup(
                    self._topology,
                    config=params.das_config(),
                    seed=seed,
                    noise=config.make_noise(),
                    setup_kernel=config.setup_kernel,
                ).schedule
            return centralized_das_schedule(
                self._topology,
                num_slots=params.num_slots,
                seed=seed,
                jitter=config.schedule_jitter,
            )
        # SLP DAS.
        if config.use_distributed:
            slp_config = SlpProtocolConfig(
                das=params.das_config(),
                search_distance=config.search_distance,
                change_length=params.change_length(
                    self._topology, config.search_distance
                ),
            )
            return run_slp_setup(
                self._topology,
                config=slp_config,
                seed=seed,
                noise=config.make_noise(),
                setup_kernel=config.setup_kernel,
            ).schedule
        return build_slp_schedule(
            self._topology,
            SlpParameters(search_distance=config.search_distance),
            num_slots=params.num_slots,
            seed=seed,
            jitter=config.schedule_jitter,
        ).schedule

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_once(self, config: ExperimentConfig, seed: int) -> OperationalResult:
        """Build a schedule and run the operational phase once."""
        tracer = active_tracer()
        if tracer is None:
            return self._run_once(config, seed)
        with tracer.span("run.once", seed=seed, algorithm=config.algorithm):
            return self._run_once(config, seed)

    def _run_once(self, config: ExperimentConfig, seed: int) -> OperationalResult:
        schedule = self.build_schedule(config, seed)
        result = run_operational_phase(
            self._topology,
            schedule,
            attacker=config.attacker,
            noise=config.make_noise(),
            seed=seed,
            frame=config.parameters.frame(),
            safety_factor=config.parameters.safety_factor,
            max_periods=config.max_periods,
            source_plan=config.source_plan,
            perturbations=config.perturbations,
            kernel=config.kernel,
        )
        plan = active_fault_plan()
        if plan is not None:
            # Chaos-only hook (one env lookup in production): lets the
            # fault harness corrupt a fast-kernel result so the
            # divergence guard has something real to catch.
            result = plan.on_result(config, seed, result)
        return result

    def _execute(
        self,
        config: ExperimentConfig,
        seeds: Sequence[int],
        on_result: Optional[Callable[[int, OperationalResult], None]] = None,
    ) -> Tuple[Dict[int, OperationalResult], Tuple[FailedRun, ...]]:
        """Run ``seeds`` and return results keyed by seed plus any
        quarantine records.  The serial engine runs in-process with no
        retry machinery (a failure here is a real bug, not a worker
        casualty); the parallel runner overrides this with supervised
        pool execution.  ``on_result`` fires after each completed seed
        (the checkpoint store's append hook)."""
        results: Dict[int, OperationalResult] = {}
        for seed in seeds:
            result = self.run_once(config, seed)
            results[seed] = result
            if on_result is not None:
                on_result(seed, result)
        return results, ()

    def _outcome(
        self,
        config: ExperimentConfig,
        seeds: Sequence[int],
        results_by_seed: Dict[int, OperationalResult],
        failures: Tuple[FailedRun, ...],
    ) -> ExperimentOutcome:
        """Assemble surviving results (in seed order) into an outcome;
        fail loudly when nothing survived."""
        results = tuple(results_by_seed[s] for s in seeds if s in results_by_seed)
        if not results:
            raise sweep_failed(
                type(self).__name__,
                seeds=[f.seed for f in failures] or list(seeds),
                attempts=max((f.attempts for f in failures), default=0),
                detail=failures[0].error if failures else "no seeds executed",
            )
        return ExperimentOutcome(
            config=config,
            topology_name=self._topology.name,
            results=results,
            stats=capture_stats(results),
            failures=failures,
        )

    def _stamp_telemetry(self, config: ExperimentConfig) -> ExperimentConfig:
        """Mark the config telemetry-enabled while a session is active,
        so pool workers (which only see the pickled config) instrument
        themselves.  Identity when telemetry is off or already set."""
        if config.telemetry or active_tracer() is None:
            return config
        return replace(config, telemetry=True)

    def _publish_sweep_metrics(
        self, outcome: ExperimentOutcome, elapsed: float
    ) -> None:
        """Fold one sweep's capture metrics into the registry.  Only
        called with telemetry active — rates read the span clock."""
        registry = default_registry()
        stats = outcome.stats
        registry.inc("sweep.runs", stats.runs)
        registry.inc("sweep.captures", stats.captures)
        registry.gauge("sweep.capture_ratio", stats.capture_ratio)
        registry.observe("sweep.capture_ratio", stats.capture_ratio)
        messages = 0
        for result in outcome.results:
            registry.observe("sweep.safety_periods", result.safety_periods)
            registry.observe("sweep.periods_run", result.periods_run)
            messages += result.messages_sent
        registry.inc("sweep.messages", messages)
        if elapsed > 0:
            registry.gauge(
                "sweep.runs_per_second", round(stats.runs / elapsed, 3)
            )
            registry.gauge(
                "sweep.messages_per_second", round(messages / elapsed, 1)
            )

    def run(
        self,
        config: ExperimentConfig,
        on_result: Optional[Callable[[int, OperationalResult], None]] = None,
    ) -> ExperimentOutcome:
        """Run all repeats and aggregate.  ``on_result`` fires after
        each completed seed (progress reporting)."""
        config = self._stamp_telemetry(config)
        seeds = [config.base_seed + i for i in range(config.repeats)]
        tracer = active_tracer()
        if tracer is None:
            results_by_seed, failures = self._execute(config, seeds, on_result)
            return self._outcome(config, seeds, results_by_seed, failures)
        with tracer.span(
            "sweep.execute", algorithm=config.algorithm, repeats=config.repeats
        ) as span:
            results_by_seed, failures = self._execute(config, seeds, on_result)
            outcome = self._outcome(config, seeds, results_by_seed, failures)
        self._publish_sweep_metrics(outcome, span.end - span.start)
        return outcome

    def run_checkpointed(
        self,
        config: ExperimentConfig,
        checkpoint: SweepCheckpoint,
        resume: bool = True,
        on_result: Optional[Callable[[int, OperationalResult], None]] = None,
    ) -> ExperimentOutcome:
        """Run the sweep through an on-disk checkpoint store.

        Completed seeds are appended to the store as they finish; with
        ``resume=True`` seeds already on record are not re-run, and the
        merged outcome is bit-identical to an uninterrupted sweep (each
        run re-seeds from scratch, so a result cannot depend on which
        process produced it or when).  ``resume=False`` discards any
        prior record first.
        """
        config = self._stamp_telemetry(config)
        key = checkpoint.key_for(self._topology, config)
        if not resume:
            checkpoint.clear(key)
        done = checkpoint.load(key) if resume else {}
        seeds = [config.base_seed + i for i in range(config.repeats)]
        missing = [s for s in seeds if s not in done]

        def _record(seed: int, result: OperationalResult) -> None:
            checkpoint.append(key, seed, result)
            if on_result is not None:
                on_result(seed, result)

        fresh, failures = self._execute(config, missing, on_result=_record)
        merged = {s: done[s] for s in seeds if s in done}
        merged.update(fresh)
        return self._outcome(config, seeds, merged, failures)

    def run_resilient(
        self,
        config: ExperimentConfig,
        checkpoint: Optional[SweepCheckpoint] = None,
        resume: bool = False,
        guard: Optional[str] = None,
        guard_sample: int = 3,
        bundle_dir: str = "divergence",
        on_result: Optional[Callable[[int, OperationalResult], None]] = None,
    ) -> ExperimentOutcome:
        """The fault-tolerance front door: checkpointing and the
        kernel-divergence guard composed over :meth:`run`.

        With every knob at its default this is exactly :meth:`run`.
        ``guard="differential"`` re-runs ``guard_sample`` of the
        sweep's seeds on the legacy engines after the sweep; a mismatch
        writes a reproducer bundle under ``bundle_dir`` and degrades
        the whole sweep to the legacy kernel (see
        :func:`~repro.experiments.resilience.apply_divergence_guard`).
        """
        if guard is not None and guard not in GUARD_MODES:
            raise invalid_field(
                "ExperimentRunner", "guard", guard,
                f"pick one of {GUARD_MODES} (or None)",
            )
        if checkpoint is not None:
            outcome = self.run_checkpointed(
                config, checkpoint, resume=resume, on_result=on_result
            )
        else:
            outcome = self.run(config, on_result=on_result)
        if guard is not None:
            outcome = apply_divergence_guard(
                self, config, outcome, sample=guard_sample, bundle_dir=bundle_dir
            )
        return outcome
