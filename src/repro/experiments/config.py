"""Table I — the parameters of the paper's evaluation, as code.

Every experiment module reads its defaults from here, so a single
source of truth maps the paper's parameter table onto the library's
configuration objects.  ``format_table1()`` regenerates the table
itself (the ``table1`` entry of the experiment index in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..das import DasProtocolConfig
from ..errors import invalid_field
from ..mac import TdmaFrame
from ..topology import Topology, paper_grid

#: §VI-A: grid sizes of the evaluation.
PAPER_SIZES: Tuple[int, ...] = (11, 15, 21)

#: Table I rows: (symbol, description, value) for protectionless DAS.
PROTECTIONLESS_ROWS = (
    ("Psrc", "Source Period", "5.5 s"),
    ("Pslot", "Slot Period", "0.05 s"),
    ("Pdiss", "Dissemination Period", "0.5 s"),
    ("slots", "Number of Slots", "100"),
    ("MSP", "Minimum Setup Periods", "80"),
    ("NDP", "Neighbour Discovery Periods", "4"),
    ("DT", "Dissemination Timeout", "5"),
)

#: Table I rows added by SLP DAS.
SLP_ROWS = (
    ("SD", "Search Distance", "3, 5"),
    ("CL", "Change Length", "Δss − SD"),
)


@dataclass(frozen=True)
class PaperParameters:
    """The concrete Table I values wired into library objects.

    Attributes mirror the table; helper methods construct the
    corresponding configuration objects.
    """

    source_period: float = 5.5
    slot_period: float = 0.05
    dissemination_period: float = 0.5
    num_slots: int = 100
    minimum_setup_periods: int = 80
    neighbour_discovery_periods: int = 4
    dissemination_timeout: int = 5
    search_distances: Tuple[int, ...] = (3, 5)
    safety_factor: float = 1.5

    def __post_init__(self) -> None:
        expected = (
            self.dissemination_period + self.num_slots * self.slot_period
        )
        if abs(expected - self.source_period) > 1e-9:
            raise invalid_field(
                "PaperParameters",
                "source_period",
                self.source_period,
                "Table I is self-consistent: Psrc must equal "
                f"Pdiss + slots × Pslot = {expected}",
            )

    def frame(self) -> TdmaFrame:
        """The TDMA frame of Table I (period = source period = 5.5 s)."""
        return TdmaFrame(
            num_slots=self.num_slots,
            slot_duration=self.slot_period,
            dissemination_duration=self.dissemination_period,
        )

    def das_config(self, setup_periods: Optional[int] = None) -> DasProtocolConfig:
        """Phase 1 protocol parameters (``setup_periods`` overridable for
        fast test runs; defaults to the paper's MSP)."""
        return DasProtocolConfig(
            dissemination_period=self.dissemination_period,
            num_slots=self.num_slots,
            neighbour_discovery_periods=self.neighbour_discovery_periods,
            setup_periods=(
                setup_periods
                if setup_periods is not None
                else self.minimum_setup_periods
            ),
            dissemination_timeout=self.dissemination_timeout,
        )

    def change_length(self, topology: Topology, search_distance: int) -> int:
        """Table I: ``CL = Δss − SD`` (at least one hop)."""
        return max(1, topology.source_sink_distance() - search_distance)

    def simulation_bound_seconds(self, topology: Topology) -> float:
        """§VI-B: ``number of nodes × source period × 4``."""
        return topology.num_nodes * self.source_period * 4


#: The canonical instance used across experiments and benchmarks.
PAPER = PaperParameters()


def paper_topologies() -> List[Topology]:
    """The three grids of §VI-A (source top-left, sink centre)."""
    return [paper_grid(size) for size in PAPER_SIZES]


def format_table1() -> str:
    """Regenerate Table I as fixed-width text."""
    lines = ["Table I: Parameters for protectionless and SLP DAS", ""]
    lines.append(f"{'Symbol':<8} {'Description':<32} {'Value':<10}")
    lines.append("-" * 52)
    lines.append("Protectionless DAS")
    for symbol, description, value in PROTECTIONLESS_ROWS:
        lines.append(f"{symbol:<8} {description:<32} {value:<10}")
    lines.append("SLP DAS")
    for symbol, description, value in SLP_ROWS:
        lines.append(f"{symbol:<8} {description:<32} {value:<10}")
    return "\n".join(lines)
