"""The message-overhead experiment (§I / §VII: "negligible overhead").

Runs the two distributed setups — protectionless Phase 1 and the full
3-phase SLP protocol — under identical seeds and counts every broadcast,
yielding the :class:`~repro.metrics.MessageOverhead` the claim is about.

Seeds are independent, so the sweep optionally fans out over a process
pool (``workers``); per-seed measurements come back in seed order and
are identical to a serial sweep.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..das import run_das_setup
from ..metrics import MessageOverhead
from ..simulator import NoiseModel
from ..slp import SlpProtocolConfig, run_slp_setup
from ..telemetry import active_tracer
from ..topology import Topology
from .config import PAPER, PaperParameters
from .parallel import resolve_workers


@dataclass(frozen=True)
class OverheadMeasurement:
    """Setup overhead for one topology across seeds."""

    topology_name: str
    per_seed: Tuple[MessageOverhead, ...]

    @property
    def mean_extra_messages(self) -> float:
        """Mean absolute overhead across seeds."""
        return sum(m.extra_messages for m in self.per_seed) / len(self.per_seed)

    @property
    def mean_overhead_percent(self) -> float:
        """Mean relative overhead across seeds."""
        return sum(m.overhead_percent for m in self.per_seed) / len(self.per_seed)


def _measure_one_seed(
    topology: Topology,
    seed: int,
    search_distance: int,
    setup_periods: Optional[int],
    refinement_periods: int,
    noise: Optional[NoiseModel],
    parameters: PaperParameters,
    setup_kernel: Optional[str] = None,
) -> MessageOverhead:
    """One seed's baseline-vs-SLP setup comparison.

    Module-level so the parallel path can ship it to worker processes.
    Under an active telemetry session the whole measurement runs in an
    ``overhead.seed`` span (the setup kernels add their own
    ``setup.phase*`` children).
    """
    tracer = active_tracer()
    if tracer is None:
        return _measure_one_seed_impl(
            topology,
            seed,
            search_distance,
            setup_periods,
            refinement_periods,
            noise,
            parameters,
            setup_kernel,
        )
    with tracer.span("overhead.seed", seed=seed):
        return _measure_one_seed_impl(
            topology,
            seed,
            search_distance,
            setup_periods,
            refinement_periods,
            noise,
            parameters,
            setup_kernel,
        )


def _measure_one_seed_impl(
    topology: Topology,
    seed: int,
    search_distance: int,
    setup_periods: Optional[int],
    refinement_periods: int,
    noise: Optional[NoiseModel],
    parameters: PaperParameters,
    setup_kernel: Optional[str] = None,
) -> MessageOverhead:
    das_cfg = parameters.das_config(setup_periods=setup_periods)
    baseline = run_das_setup(
        topology, config=das_cfg, seed=seed, noise=noise, setup_kernel=setup_kernel
    )
    slp_cfg = SlpProtocolConfig(
        das=das_cfg,
        search_distance=search_distance,
        change_length=parameters.change_length(topology, search_distance),
        refinement_periods=refinement_periods,
    )
    slp = run_slp_setup(
        topology, config=slp_cfg, seed=seed, noise=noise, setup_kernel=setup_kernel
    )
    return MessageOverhead(
        baseline_messages=baseline.messages_sent,
        slp_messages=slp.messages_sent,
        search_messages=slp.search_messages,
        change_messages=slp.change_messages,
    )


def measure_setup_overhead(
    topology: Topology,
    seeds: Sequence[int] = (0, 1, 2),
    search_distance: int = 3,
    setup_periods: Optional[int] = None,
    refinement_periods: int = 20,
    noise: Optional[NoiseModel] = None,
    parameters: PaperParameters = PAPER,
    workers: Optional[int] = None,
    setup_kernel: Optional[str] = None,
) -> OverheadMeasurement:
    """Measure SLP setup overhead over protectionless setup.

    ``setup_periods`` defaults to the paper's MSP (80); tests pass a
    smaller value to keep runtime down — overhead ratios are unaffected
    because both protocols share the same Phase 1.  ``workers`` spreads
    the seeds over that many processes (``None`` or ``1`` = serial).
    ``setup_kernel`` selects the setup engine (``"fast"``/``"legacy"``/
    ``None`` for the default; bit-identical either way).
    """
    seeds = list(seeds)
    workers = resolve_workers(workers)
    if workers is not None and workers > 1 and len(seeds) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(seeds))) as pool:
            measurements = list(
                pool.map(
                    _measure_one_seed,
                    (topology,) * len(seeds),
                    seeds,
                    (search_distance,) * len(seeds),
                    (setup_periods,) * len(seeds),
                    (refinement_periods,) * len(seeds),
                    (noise,) * len(seeds),
                    (parameters,) * len(seeds),
                    (setup_kernel,) * len(seeds),
                )
            )
    else:
        measurements = [
            _measure_one_seed(
                topology,
                seed,
                search_distance,
                setup_periods,
                refinement_periods,
                noise,
                parameters,
                setup_kernel,
            )
            for seed in seeds
        ]
    return OverheadMeasurement(
        topology_name=topology.name,
        per_seed=tuple(measurements),
    )


def format_overhead(measurement: OverheadMeasurement) -> str:
    """Render the overhead experiment as fixed-width text."""
    lines = [
        f"Setup message overhead on {measurement.topology_name} "
        f"({len(measurement.per_seed)} seeds)",
        "",
        f"{'Seed':<6} {'Baseline':>10} {'SLP':>10} {'Extra':>8} {'Overhead':>10}",
        "-" * 48,
    ]
    for i, m in enumerate(measurement.per_seed):
        lines.append(
            f"{i:<6} {m.baseline_messages:>10} {m.slp_messages:>10} "
            f"{m.extra_messages:>8} {m.overhead_percent:>9.1f}%"
        )
    lines.append("-" * 48)
    lines.append(
        f"mean: +{measurement.mean_extra_messages:.0f} msgs "
        f"({measurement.mean_overhead_percent:+.1f}%)"
    )
    return "\n".join(lines)
