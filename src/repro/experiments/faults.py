"""Injectable fault points for chaos-testing the sweep engine.

The resilience layer (:mod:`repro.experiments.resilience`) promises
that a sweep survives crashed, hung or transiently failing workers.
That promise is only testable if those failures can be *produced on
demand*, deterministically, inside real pool workers — so this module
defines a :class:`FaultPlan`: a declarative set of fault points keyed
by seed, carried to worker processes through the environment (workers
inherit ``os.environ`` under both fork and spawn start methods).

Fault kinds
-----------
``crash_seeds``
    The worker process calls ``os._exit`` before running the seed —
    the hard failure mode that breaks the whole pool
    (``BrokenProcessPool``).  Fires once per seed (see *once-only
    faults* below) so the supervisor's respawn-and-retry can succeed.
``hang_seeds``
    The worker sleeps ``hang_seconds`` before running the seed,
    simulating a wedged worker; the supervisor's chunk timeout is the
    only thing that can recover.  Fires once per seed.
``transient_seeds``
    The worker raises :class:`InjectedFault` on the *first* attempt at
    the seed and succeeds on retries — the retry/backoff happy path.
``poison_seeds``
    The worker raises :class:`InjectedFault` on *every* attempt — the
    chunk-splitting/quarantine path.
``pickle_seeds``
    The parent-side submit of any chunk containing the seed raises
    :class:`InjectedFault` once, simulating a chunk that fails to
    pickle (the failure happens before a worker ever sees it).
``perturb_seeds``
    The run *completes* but its result is corrupted (``messages_sent``
    off by one) — only when the run used a non-legacy kernel.  This is
    the drill target for the runtime kernel-divergence guard: a
    silently wrong fast kernel that only a legacy re-run can expose.
``halt_seeds``
    The *scheduler process* raises :class:`ServiceHalt` before
    dispatching any shard containing the seed — the in-process stand-in
    for ``kill -9`` of the sweep service itself, leaving the job's
    record ``running`` and its checkpoint partial, exactly as a dead
    process would.  Fires once per seed; the restart-and-resume drill
    in the service chaos tests is built on it.

Network chaos (the remote-worker transport's fault points;
see :mod:`repro.service.worker`):

``drop_requests``
    The worker transport's *n*-th HTTP request (a 1-based per-transport
    ordinal) is dropped on the floor before it is sent — the client
    sees a connection error, the server sees nothing.  Fires once per
    ordinal; the transport's bounded retry/backoff must absorb it.
``delay_requests``
    The *n*-th request sleeps ``delay_seconds`` before being sent —
    latency, not loss.  Fires once per ordinal.
``duplicate_uploads``
    The upload of the listed seed's result is sent *twice*, back to
    back — the replayed-datagram case.  Fires unconditionally (no
    marker): the server's ``(job, shard, seed)`` dedup must make every
    replay harmless, however often it happens.
``partition_worker``
    Immediately before uploading the listed seed's result, the worker
    is cut off from the network for ``partition_seconds``: every
    request (uploads *and* new claims) fails client-side without being
    sent.  The server-side lease stalls, is revoked, and the shard is
    re-queued to a healthy worker; when the partition heals, the
    stranded worker's late traffic must dedup away.  Fires once per
    seed.

Storage chaos (the durable-IO seam's fault points; every writer that
flows through :mod:`repro.storage` is exercised by the same drill —
fault targets are *path substrings*, e.g. ``"sweep-"`` for checkpoint
files or ``"results/"`` for result blobs):

``torn_writes``
    The writing process lands ``enospc_after_bytes`` of the payload,
    fsyncs the fragment so it is really on disk, and ``os._exit``\\ s —
    exactly where ``SIGKILL`` mid-write would leave the file.  Fires
    once per target; the torn-line welding in ``durable_append`` plus
    the checkpoint loader's skip-corrupt-lines policy (or the atomic
    tempfile rename, for whole-artefact writes) must recover.
``short_writes``
    The write silently lands only ``enospc_after_bytes`` bytes and
    *reports success* — the lying-disk case.  Fires once per target.
``enospc_writes``
    The write lands ``enospc_after_bytes`` bytes and then raises
    ``ENOSPC`` — disk full mid-write.  Fires once per target; a CLI
    sweep must fail with a typed :class:`~repro.errors.StorageError`
    (its own exit code), a service must re-queue the job and 503 new
    submissions until a durable write succeeds again.
``readonly_writes``
    Every matching write raises ``EROFS`` before writing anything — a
    read-only remount / permission flip.  *Persistent* (no marker):
    the filesystem stays broken until the plan is deactivated.
``corrupt_checkpoint_seeds``
    The listed seed's checkpoint line is mangled in memory before the
    (successful, durable) append — silent corruption at rest.  The
    line digest makes the loader skip it; the scheduler's recovery
    pass re-runs the seed; ``fsck`` reports and repairs the debris.
    Fires once per seed.

Once-only faults (crash, hang, transient, pickle, halt, drop, delay,
partition, torn, short, enospc, corrupt) coordinate across processes
and retries through marker files in ``marker_dir``: the first process
to atomically create ``<kind>-<key>`` wins the right to fire the
fault, every later attempt proceeds normally.  ``poison``, ``perturb``,
``duplicate`` and ``readonly`` need no markers — they fire
unconditionally.

Nothing in this module runs unless a plan is active: the hot paths
call :func:`active_fault_plan`, which is a cached environment lookup
returning ``None`` in production.
"""

from __future__ import annotations

import errno
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Iterator, Optional, Sequence, Tuple

#: Environment variable carrying the active plan (JSON) to workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class InjectedFault(RuntimeError):
    """An artificial failure raised by an active :class:`FaultPlan`.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults stand in for arbitrary third-party failures (a segfaulting
    extension, a flaky filesystem), which the supervisor must handle
    without recognising them.
    """


class ServiceHalt(BaseException):
    """The ``halt_seeds`` fault: the service process "dies" here.

    A :class:`BaseException` so no retry/quarantine machinery between
    the fault point and the service's main loop can swallow it — the
    real event it stands in for (``SIGKILL``) is not catchable either.
    """


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, environment-carried set of fault injections.

    Activate with :meth:`activated` (a context manager) *before* the
    worker pool is created so child processes inherit the environment;
    the sweep engine's fault points then consult
    :func:`active_fault_plan` in whichever process they run.
    """

    crash_seeds: Tuple[int, ...] = ()
    hang_seeds: Tuple[int, ...] = ()
    transient_seeds: Tuple[int, ...] = ()
    poison_seeds: Tuple[int, ...] = ()
    pickle_seeds: Tuple[int, ...] = ()
    perturb_seeds: Tuple[int, ...] = ()
    halt_seeds: Tuple[int, ...] = ()
    drop_requests: Tuple[int, ...] = ()
    delay_requests: Tuple[int, ...] = ()
    duplicate_uploads: Tuple[int, ...] = ()
    partition_worker: Tuple[int, ...] = ()
    torn_writes: Tuple[str, ...] = ()
    short_writes: Tuple[str, ...] = ()
    enospc_writes: Tuple[str, ...] = ()
    readonly_writes: Tuple[str, ...] = ()
    corrupt_checkpoint_seeds: Tuple[int, ...] = ()
    hang_seconds: float = 30.0
    delay_seconds: float = 0.05
    partition_seconds: float = 2.0
    enospc_after_bytes: int = 16
    marker_dir: str = ""

    def __post_init__(self) -> None:
        for name in (
            "crash_seeds",
            "hang_seeds",
            "transient_seeds",
            "pickle_seeds",
            "halt_seeds",
            "drop_requests",
            "delay_requests",
            "partition_worker",
            "torn_writes",
            "short_writes",
            "enospc_writes",
            "corrupt_checkpoint_seeds",
        ):
            if getattr(self, name) and not self.marker_dir:
                raise ValueError(
                    f"FaultPlan.{name} needs marker_dir: once-only faults "
                    "coordinate across processes through marker files"
                )

    # ------------------------------------------------------------------
    # Environment round trip
    # ------------------------------------------------------------------
    def to_env(self) -> str:
        """Serialise the plan for :data:`FAULT_PLAN_ENV`."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_env(cls, raw: str) -> "FaultPlan":
        """Rebuild a plan from its :meth:`to_env` serialisation."""
        payload = json.loads(raw)
        for name, value in list(payload.items()):
            if isinstance(value, list):
                payload[name] = tuple(value)
        return cls(**payload)

    @contextmanager
    def activated(self) -> Iterator["FaultPlan"]:
        """Install the plan in this process's environment (and thus in
        every worker spawned while active); restore the prior state on
        exit."""
        previous = os.environ.get(FAULT_PLAN_ENV)
        os.environ[FAULT_PLAN_ENV] = self.to_env()
        try:
            yield self
        finally:
            if previous is None:
                os.environ.pop(FAULT_PLAN_ENV, None)
            else:
                os.environ[FAULT_PLAN_ENV] = previous

    # ------------------------------------------------------------------
    # Fault points
    # ------------------------------------------------------------------
    def _once(self, kind: str, seed: int) -> bool:
        """Atomically claim the one firing of a once-only fault."""
        marker = Path(self.marker_dir) / f"{kind}-{seed}"
        try:
            marker.parent.mkdir(parents=True, exist_ok=True)
            marker.touch(exist_ok=False)
        except FileExistsError:
            return False
        except OSError:
            return False
        return True

    def before_seed(self, seed: int) -> None:
        """Worker-side fault point, called before each seed runs."""
        if seed in self.crash_seeds and self._once("crash", seed):
            os._exit(17)
        if seed in self.hang_seeds and self._once("hang", seed):
            time.sleep(self.hang_seconds)
        if seed in self.transient_seeds and self._once("transient", seed):
            raise InjectedFault(f"injected transient failure for seed {seed}")
        if seed in self.poison_seeds:
            raise InjectedFault(f"injected poison failure for seed {seed}")

    def before_submit(self, seeds: Sequence[int]) -> None:
        """Parent-side fault point, called before a chunk is submitted
        (simulates the chunk failing to pickle)."""
        for seed in seeds:
            if seed in self.pickle_seeds and self._once("pickle", seed):
                raise InjectedFault(
                    f"injected chunk-pickle failure for seed {seed}"
                )

    def before_shard(self, seeds: Sequence[int]) -> None:
        """Service-side fault point, called before a shard is handed to
        the shard scheduler's pool (simulates the service process dying
        mid-job)."""
        for seed in seeds:
            if seed in self.halt_seeds and self._once("halt", seed):
                raise ServiceHalt(
                    f"injected service halt before shard containing seed {seed}"
                )

    # ------------------------------------------------------------------
    # Network chaos (remote-worker transport fault points)
    # ------------------------------------------------------------------
    def transport_drop(self, ordinal: int) -> bool:
        """Whether the transport's ``ordinal``-th request should be
        dropped before it is sent (once per listed ordinal)."""
        return ordinal in self.drop_requests and self._once("drop", ordinal)

    def transport_delay(self, ordinal: int) -> bool:
        """Whether the ``ordinal``-th request should sleep
        ``delay_seconds`` before being sent (once per listed ordinal)."""
        return ordinal in self.delay_requests and self._once("delay", ordinal)

    def partition_before_upload(self, seed: int) -> bool:
        """Whether the worker should partition itself for
        ``partition_seconds`` instead of uploading ``seed``'s result
        (once per listed seed)."""
        return seed in self.partition_worker and self._once("partition", seed)

    def duplicate_upload(self, seed: int) -> bool:
        """Whether ``seed``'s upload should be sent twice
        (unconditional — replays must always be harmless)."""
        return seed in self.duplicate_uploads

    # ------------------------------------------------------------------
    # Storage chaos (the durable-IO seam's fault points)
    # ------------------------------------------------------------------
    def storage_write_fault(self, path, handle, data: bytes) -> bytes:
        """The injection point inside :mod:`repro.storage.io`.

        Called with the open file ``handle`` immediately before the
        payload ``data`` is written to ``path``.  Returns the bytes to
        actually write (``short`` truncates them); ``readonly`` and
        ``enospc`` raise the corresponding ``OSError`` for the seam to
        wrap; ``torn`` does not return at all — it lands a durable
        fragment and kills the process where SIGKILL would.
        """
        target = str(path)
        for token in self.readonly_writes:
            if token in target:
                raise OSError(
                    errno.EROFS, "injected read-only filesystem", target
                )
        partial = data[: max(0, min(self.enospc_after_bytes, len(data) - 1))]
        for token in self.enospc_writes:
            if token in target and self._once("enospc", _fs_safe(token)):
                handle.write(partial)
                handle.flush()
                raise OSError(errno.ENOSPC, "injected disk full", target)
        for token in self.torn_writes:
            if token in target and self._once("torn", _fs_safe(token)):
                handle.write(partial)
                handle.flush()
                try:
                    os.fsync(handle.fileno())
                except OSError:
                    pass
                os._exit(23)
        for token in self.short_writes:
            if token in target and self._once("short", _fs_safe(token)):
                return partial
        return data

    def corrupt_checkpoint_line(self, seed: int, line: str) -> str:
        """Mangle ``seed``'s checkpoint line before its (durable)
        append — silent corruption at rest (once per listed seed)."""
        if seed not in self.corrupt_checkpoint_seeds:
            return line
        if not self._once("corrupt", seed):
            return line
        middle = len(line) // 2
        return line[:middle] + "#CORRUPT#" + line[middle + 1 :]

    def on_result(self, config: object, seed: int, result):
        """Corrupt a completed non-legacy-kernel result (guard drills).

        The perturbation is deliberately subtle — ``messages_sent`` off
        by one — the kind of wrong answer only a differential re-run
        against the legacy engine can catch.
        """
        if seed not in self.perturb_seeds:
            return result
        if getattr(config, "kernel", None) == "legacy":
            return result
        return replace(result, messages_sent=result.messages_sent + 1)


def _fs_safe(token: str) -> str:
    """A path-substring fault target as a marker-file-name component."""
    return token.replace(os.sep, "_").replace("/", "_")


#: Cache of the last parsed plan, keyed by the raw environment string
#: so repeated lookups in a worker's seed loop stay one dict get.
_PARSED: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def active_fault_plan() -> Optional[FaultPlan]:
    """The process's active :class:`FaultPlan`, or ``None`` (the
    production answer — one environment lookup, no parsing)."""
    global _PARSED
    raw = os.environ.get(FAULT_PLAN_ENV)
    if raw is None:
        return None
    cached_raw, cached_plan = _PARSED
    if raw == cached_raw:
        return cached_plan
    plan = FaultPlan.from_env(raw)
    _PARSED = (raw, plan)
    return plan
