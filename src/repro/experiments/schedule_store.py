"""Shared on-disk schedule store: the cross-process tier of the cache.

The in-process :class:`~repro.experiments.schedule_cache.ScheduleCache`
dedups schedule builds *within* one process; concurrent service jobs
over the same topology each pay the build once per worker process.
:class:`ScheduleStore` closes that gap: a SQLite table keyed by the
SHA-256 of the existing content-addressed ``schedule_key`` tuple, so
any process that builds a schedule publishes it and every other process
fetches instead of rebuilding.

Properties the design leans on:

* **Safety** — schedule construction is deterministic in the key, so
  two processes racing to publish the same key write identical values;
  ``INSERT OR IGNORE`` under SQLite's own locking makes the race
  harmless (first writer wins, the value is the same either way).
* **Truthful stats** — the store is consulted only on an in-memory
  miss, through :meth:`ScheduleCache.get_or_build`'s store hook; the
  cache's ``misses`` counter keeps meaning "a build happened here"
  (a store fetch increments ``store_hits`` instead — see the cache).
* **Per-call connections** — every operation opens, uses and closes
  its own connection (with a busy timeout), so the store object is
  safe to share across threads and survives fork/spawn into workers.
* **Opt-in** — nothing changes unless a store is attached; the
  in-memory LRU stays the default everywhere.

A corrupt or unreadable row (torn write on a dying host) deserialises
to ``None`` and the caller simply rebuilds — the store can lose
entries, never invent them.
"""

from __future__ import annotations

import pickle
import sqlite3
from hashlib import sha256
from pathlib import Path
from typing import Optional, Tuple, Union

from ..core import Schedule

#: On-disk format version; part of the table name so a format change
#: can never silently read old rows.
STORE_VERSION = 1

_TABLE = f"schedules_v{STORE_VERSION}"


def store_key(key: Tuple) -> str:
    """The SHA-256 hex digest of one ``schedule_key`` tuple.

    The tuple contains only primitives with stable ``repr``\\ s
    (strings, ints, bools, ``None``), so the digest is identical across
    processes and hosts — the same content-addressing argument the
    in-memory cache already relies on.
    """
    return sha256(repr(key).encode()).hexdigest()


class ScheduleStore:
    """A SQLite-backed, concurrency-safe map from schedule keys to
    built :class:`~repro.core.Schedule` objects.

    ``hits``/``misses`` count this store's own lookups (fetches that
    found / did not find a row); they are surfaced through the attached
    cache's ``stats()`` as ``store_hits``/``store_misses``.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        with self._connect() as conn:
            conn.execute(
                f"CREATE TABLE IF NOT EXISTS {_TABLE} ("
                "  key TEXT PRIMARY KEY,"
                "  schedule BLOB NOT NULL"
                ")"
            )

    @property
    def path(self) -> Path:
        """The backing database file."""
        return self._path

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self._path, timeout=30.0)
        conn.execute("PRAGMA busy_timeout = 30000")
        return conn

    def get(self, key: Tuple) -> Optional[Schedule]:
        """The stored schedule for ``key``, or ``None``."""
        digest = store_key(key)
        with self._connect() as conn:
            row = conn.execute(
                f"SELECT schedule FROM {_TABLE} WHERE key = ?", (digest,)
            ).fetchone()
        if row is None:
            self.misses += 1
            return None
        try:
            schedule = pickle.loads(row[0])
        except Exception:
            # A torn or foreign row: treat as absent, the caller rebuilds.
            self.misses += 1
            return None
        self.hits += 1
        return schedule

    def put(self, key: Tuple, schedule: Schedule) -> None:
        """Publish a built schedule (first writer wins; racing writers
        carry identical values, so losing the race loses nothing)."""
        digest = store_key(key)
        payload = pickle.dumps(schedule, protocol=pickle.HIGHEST_PROTOCOL)
        with self._connect() as conn:
            conn.execute(
                f"INSERT OR IGNORE INTO {_TABLE} (key, schedule) VALUES (?, ?)",
                (digest, payload),
            )

    def __len__(self) -> int:
        with self._connect() as conn:
            (count,) = conn.execute(f"SELECT COUNT(*) FROM {_TABLE}").fetchone()
        return int(count)
