"""Parallel seed sweeps: the experiment engine's multi-core mode.

The evaluation aggregates thousands of independent seeded runs (30
repeats × sizes × algorithms × ablations), and the seed dimension is
embarrassingly parallel: run *i* depends only on ``base_seed + i``.
:class:`ParallelExperimentRunner` fans those runs out over a
:class:`~concurrent.futures.ProcessPoolExecutor` while preserving the
serial engine's contract exactly — run *i* still uses ``base_seed + i``
and results are reassembled in seed order, so the aggregated
:class:`~repro.metrics.CaptureStats` are bit-identical to a serial
sweep of the same configuration.

Seeds are dispatched in contiguous chunks (several runs per task) to
amortise pickling and scheduling overhead; chunk boundaries cannot
affect results because every run re-seeds from scratch.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..app import OperationalResult
from ..core import Schedule
from ..errors import ConfigurationError, invalid_field
from ..metrics import capture_stats
from ..topology import Topology
from .runner import ExperimentConfig, ExperimentOutcome, ExperimentRunner
from .schedule_cache import (
    ScheduleCache,
    default_schedule_cache,
    schedule_cache_enabled,
)


def default_workers() -> int:
    """The worker count used when none is given: one per CPU."""
    return max(os.cpu_count() or 1, 1)


#: Dispatch threshold for :func:`plan_workers`: a sweep whose total work
#: (``repeats × nodes``) falls below this is cheaper to run serially
#: than to pickle, ship and gather across a pool.  Calibrated on the
#: tracked bench: the quick-mode scenario sweeps (4 × 121 node-runs)
#: sit below it, the full sweeps (20-30 × 121+) above.
MIN_NODE_RUNS_FOR_POOL = 1000


def plan_workers(
    workers: Optional[int],
    repeats: Optional[int] = None,
    topology: Optional[Topology] = None,
    force_parallel: bool = False,
) -> int:
    """Resolve a requested worker count into an *effective* one.

    Two situations make a process pool a net loss, both observed on the
    tracked bench (``scenario_churn`` ran at 0.57× the serial speed with
    4 workers on a 1-core container):

    * more workers than usable cores — the pool adds pickling and
      scheduling overhead while the extra processes just time-slice one
      another; the count is capped at :func:`default_workers`;
    * a sweep too small to amortise dispatch — when
      ``repeats × topology nodes`` falls under
      :data:`MIN_NODE_RUNS_FOR_POOL`, the whole sweep runs serially.

    Returns the worker count to actually use (``1`` = serial).
    ``force_parallel`` is the escape hatch: the requested count is used
    verbatim (benchmarks measuring pool overhead itself need this).
    ``None`` stays serial, ``0`` means one per CPU, as everywhere else.
    """
    resolved = resolve_workers(workers)
    if resolved is None or resolved <= 1:
        return 1
    if force_parallel:
        return resolved
    effective = min(resolved, default_workers())
    if effective <= 1:
        return 1
    if (
        repeats is not None
        and topology is not None
        and repeats * topology.num_nodes < MIN_NODE_RUNS_FOR_POOL
    ):
        return 1
    return effective


def workers_argument(value: str) -> int:
    """argparse converter for ``--workers`` flags, shared by the CLI and
    the scripts: a positive process count, or ``0`` for one per CPU."""
    import argparse

    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if workers < 0:
        raise argparse.ArgumentTypeError("--workers must be >= 0")
    return default_workers() if workers == 0 else workers


def seed_chunks(seeds: Sequence[int], tasks: int) -> List[Tuple[int, ...]]:
    """Split ``seeds`` into at most ``tasks`` contiguous, ordered chunks.

    Contiguity means a flattened, submission-ordered gather reproduces
    the original seed order with no re-sorting step.
    """
    if tasks < 1:
        raise ConfigurationError("seed_chunks needs at least one task")
    n = len(seeds)
    tasks = min(tasks, n) if n else 0
    chunks: List[Tuple[int, ...]] = []
    start = 0
    for i in range(tasks):
        # Balanced partition: the first n % tasks chunks get one extra.
        size = n // tasks + (1 if i < n % tasks else 0)
        chunks.append(tuple(seeds[start : start + size]))
        start += size
    return chunks


def _run_seed_chunk(
    topology: Topology,
    config: ExperimentConfig,
    seeds: Tuple[int, ...],
    schedules: Optional[Dict[Tuple, Schedule]] = None,
) -> List[OperationalResult]:
    """Worker entry point: execute one contiguous chunk of seeds.

    ``schedules`` carries any of the chunk's schedules the parent had
    already built (keyed exactly as the worker's ``build_schedule``
    lookups); they are preloaded counter-neutrally into this worker's
    process-default cache so the worker reuses instead of rebuilding.
    Module-level so it pickles by reference under every start method.
    """
    if schedules:
        default_schedule_cache().preload(schedules)
    runner = ExperimentRunner(topology)
    return [runner.run_once(config, seed) for seed in seeds]


class ParallelExperimentRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` that sweeps seeds across processes.

    Parameters
    ----------
    topology:
        The network under test.
    workers:
        Process count; ``None`` or ``0`` means one per CPU (the CLI
        convention).  ``workers=1`` degenerates to the serial engine
        without spawning a pool.
    chunks_per_worker:
        Load-balancing granularity: each ``run`` splits its seeds into
        up to ``workers × chunks_per_worker`` tasks.
    executor:
        An externally owned pool to submit to, shared between runners
        (e.g. one pool across every grid size of a figure).  The runner
        never shuts an external pool down; without one, a pool is
        created lazily on first use and reused across ``run`` calls
        (pool start-up would otherwise dominate short sweeps) — close
        it with :meth:`close` or use the runner as a context manager.
    schedule_cache:
        As on :class:`ExperimentRunner` — the parent-side cache
        consulted by ``build_schedule`` *and* mined for already-built
        schedules to ship with each worker chunk.
    """

    def __init__(
        self,
        topology: Topology,
        workers: Optional[int] = None,
        chunks_per_worker: int = 4,
        executor: Optional[ProcessPoolExecutor] = None,
        schedule_cache: Optional["ScheduleCache"] = None,
    ) -> None:
        super().__init__(topology, schedule_cache=schedule_cache)
        resolved = default_workers() if not workers else workers
        if resolved < 1:
            raise invalid_field(
                "ParallelExperimentRunner", "workers", workers,
                "the parallel runner needs at least one worker",
            )
        if chunks_per_worker < 1:
            raise invalid_field(
                "ParallelExperimentRunner", "chunks_per_worker", chunks_per_worker,
                "chunks_per_worker must be at least one",
            )
        self._workers = resolved
        self._chunks_per_worker = chunks_per_worker
        self._executor: Optional[ProcessPoolExecutor] = None
        self._external_executor = executor

    @property
    def workers(self) -> int:
        """The process count seed sweeps fan out over."""
        return self._workers

    def _cached_schedules_for(
        self, config: ExperimentConfig, seeds: Tuple[int, ...]
    ) -> Optional[Dict[Tuple, Schedule]]:
        """The chunk's schedules the parent already holds, keyed for the
        worker's lookups.

        Only entries actually present travel (a cold parent ships
        nothing — workers build and cache locally exactly as before),
        and the peek is counter-neutral so parent-side ``cache_hits``
        accounting keeps meaning "a build was avoided *here*".
        """
        if not config.use_schedule_cache:
            return None
        cache = self._schedule_cache
        if cache is None and schedule_cache_enabled():
            cache = default_schedule_cache()
        if cache is None:
            return None
        shipped: Dict[Tuple, Schedule] = {}
        for seed in seeds:
            key = self.schedule_key_for(config, seed)
            if key in shipped:
                continue  # unseeded builds: one key covers every seed
            schedule = cache.peek(key)
            if schedule is not None:
                shipped[key] = schedule
        return shipped or None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._external_executor is not None:
            return self._external_executor
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self._workers)
        return self._executor

    def close(self) -> None:
        """Shut the owned worker pool down (an external ``executor`` is
        left running).  Idempotent; the runner may be reused afterwards
        (a fresh pool is spawned on demand)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ParallelExperimentRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def run(self, config: ExperimentConfig) -> ExperimentOutcome:
        """Run all repeats across the pool and aggregate in seed order."""
        seeds = [config.base_seed + i for i in range(config.repeats)]
        if self._workers == 1 or len(seeds) == 1:
            return super().run(config)
        chunks = seed_chunks(seeds, self._workers * self._chunks_per_worker)
        executor = self._ensure_executor()
        payloads = [self._cached_schedules_for(config, chunk) for chunk in chunks]
        results: List[OperationalResult] = []
        # map() yields in submission order; chunks are contiguous, so the
        # flattened results are exactly the serial seed order.
        for chunk_results in executor.map(
            _run_seed_chunk,
            (self._topology,) * len(chunks),
            (config,) * len(chunks),
            chunks,
            payloads,
        ):
            results.extend(chunk_results)
        return ExperimentOutcome(
            config=config,
            topology_name=self._topology.name,
            results=tuple(results),
            stats=capture_stats(results),
        )


def resolve_workers(workers: Optional[int]) -> Optional[int]:
    """Normalise a ``workers`` argument: ``0`` means one per CPU (the
    CLI convention), anything else passes through unchanged."""
    return default_workers() if workers == 0 else workers


def make_runner(
    topology: Topology,
    workers: Optional[int] = None,
    repeats: Optional[int] = None,
    force_parallel: bool = False,
) -> ExperimentRunner:
    """Build the right runner for a worker count.

    ``None`` or ``1`` gives the serial :class:`ExperimentRunner`; ``0``
    means one per CPU; any other count gives a
    :class:`ParallelExperimentRunner`.  Both support the
    context-manager protocol, so call sites can treat them uniformly::

        with make_runner(topology, workers) as runner:
            outcome = runner.run(config)

    When the sweep size is known, pass ``repeats`` so
    :func:`plan_workers` can fall back to the serial engine where a pool
    would only add overhead (worker count above the core count, or a
    sweep too small to amortise dispatch); ``force_parallel=True``
    bypasses that policy and honours the requested count verbatim.
    Results are bit-identical whichever engine is picked.
    """
    effective = plan_workers(
        workers, repeats=repeats, topology=topology, force_parallel=force_parallel
    )
    if effective <= 1:
        return ExperimentRunner(topology)
    return ParallelExperimentRunner(topology, workers=effective)
