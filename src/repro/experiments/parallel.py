"""Parallel seed sweeps: the experiment engine's multi-core mode.

The evaluation aggregates thousands of independent seeded runs (30
repeats × sizes × algorithms × ablations), and the seed dimension is
embarrassingly parallel: run *i* depends only on ``base_seed + i``.
:class:`ParallelExperimentRunner` fans those runs out over a
:class:`~concurrent.futures.ProcessPoolExecutor` while preserving the
serial engine's contract exactly — run *i* still uses ``base_seed + i``
and results are reassembled in seed order, so the aggregated
:class:`~repro.metrics.CaptureStats` are bit-identical to a serial
sweep of the same configuration.

Seeds are dispatched in contiguous chunks (several runs per task) to
amortise pickling and scheduling overhead; chunk boundaries cannot
affect results because every run re-seeds from scratch.

Execution is *supervised* (see :mod:`repro.experiments.resilience`):
each chunk is an individually watched future with optional timeout,
retries with deterministic backoff, pool respawn after worker death,
and poison-seed isolation via chunk splitting — a failing worker
quarantines at most its own seeds instead of aborting the sweep, and a
sweep in which nothing fails is byte-identical to unsupervised
execution.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..app import OperationalResult
from ..core import Schedule
from ..errors import ConfigurationError, invalid_field
from ..telemetry import (
    MetricsRegistry,
    SpanTracer,
    active_tracer,
    tracing,
    use_registry,
)
from ..topology import Topology
from .faults import active_fault_plan
from .resilience import FailedRun, RetryPolicy, WorkerSupervisor
from .runner import ExperimentConfig, ExperimentRunner
from .schedule_cache import (
    ScheduleCache,
    default_schedule_cache,
    schedule_cache_enabled,
)


def default_workers() -> int:
    """The worker count used when none is given: one per CPU.

    Robust to platforms where ``os.cpu_count()`` answers ``None``
    (POSIX permits it): the fallback is one worker, never a crash or a
    zero-sized pool.
    """
    count = os.cpu_count()
    return max(count, 1) if count else 1


#: Dispatch threshold for :func:`plan_workers`: a sweep whose total work
#: (``repeats × nodes``) falls below this is cheaper to run serially
#: than to pickle, ship and gather across a pool.  Calibrated on the
#: tracked bench: the quick-mode scenario sweeps (4 × 121 node-runs)
#: sit below it, the full sweeps (20-30 × 121+) above.
MIN_NODE_RUNS_FOR_POOL = 1000


def plan_workers(
    workers: Optional[int],
    repeats: Optional[int] = None,
    topology: Optional[Topology] = None,
    force_parallel: bool = False,
) -> int:
    """Resolve a requested worker count into an *effective* one.

    Two situations make a process pool a net loss, both observed on the
    tracked bench (``scenario_churn`` ran at 0.57× the serial speed with
    4 workers on a 1-core container):

    * more workers than usable cores — the pool adds pickling and
      scheduling overhead while the extra processes just time-slice one
      another; the count is capped at :func:`default_workers`;
    * a sweep too small to amortise dispatch — when
      ``repeats × topology nodes`` falls under
      :data:`MIN_NODE_RUNS_FOR_POOL`, the whole sweep runs serially.

    Returns the worker count to actually use (``1`` = serial).
    ``force_parallel`` is the escape hatch: the requested count is used
    verbatim (benchmarks measuring pool overhead itself need this).
    ``None`` stays serial, ``0`` means one per CPU, as everywhere else.
    """
    resolved = resolve_workers(workers)
    if resolved is None or resolved <= 1:
        return 1
    if force_parallel:
        return resolved
    effective = min(resolved, default_workers())
    if effective <= 1:
        return 1
    if (
        repeats is not None
        and topology is not None
        and repeats * topology.num_nodes < MIN_NODE_RUNS_FOR_POOL
    ):
        return 1
    return effective


def workers_argument(value: str) -> int:
    """argparse converter for ``--workers`` flags, shared by the CLI and
    the scripts: a positive process count, or ``0`` for one per CPU."""
    import argparse

    try:
        workers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if workers < 0:
        raise argparse.ArgumentTypeError("--workers must be >= 0")
    return default_workers() if workers == 0 else workers


def seed_chunks(seeds: Sequence[int], tasks: int) -> List[Tuple[int, ...]]:
    """Split ``seeds`` into at most ``tasks`` contiguous, ordered chunks.

    Contiguity means a flattened, submission-ordered gather reproduces
    the original seed order with no re-sorting step.
    """
    if tasks < 1:
        raise ConfigurationError("seed_chunks needs at least one task")
    n = len(seeds)
    tasks = min(tasks, n) if n else 0
    chunks: List[Tuple[int, ...]] = []
    start = 0
    for i in range(tasks):
        # Balanced partition: the first n % tasks chunks get one extra.
        size = n // tasks + (1 if i < n % tasks else 0)
        chunks.append(tuple(seeds[start : start + size]))
        start += size
    return chunks


class ChunkResults(List[OperationalResult]):
    """One chunk's result list plus an optional telemetry payload.

    A ``list`` subclass, so the supervisor's seed↔result zip and every
    other consumer handle it exactly like the bare list workers used
    to return; the payload (worker spans + metrics snapshot, see
    :meth:`SpanTracer.export_payload`) rides back on the same future
    and is only ever looked for via ``getattr``.
    """

    telemetry: Optional[dict] = None


def _run_seed_chunk(
    topology: Topology,
    config: ExperimentConfig,
    seeds: Tuple[int, ...],
    schedules: Optional[Dict[Tuple, Schedule]] = None,
) -> List[OperationalResult]:
    """Worker entry point: execute one contiguous chunk of seeds.

    ``schedules`` carries any of the chunk's schedules the parent had
    already built (keyed exactly as the worker's ``build_schedule``
    lookups); they are preloaded counter-neutrally into this worker's
    process-default cache so the worker reuses instead of rebuilding.
    Module-level so it pickles by reference under every start method.

    With ``config.telemetry`` set the chunk instruments itself — a
    private tracer and registry for exactly this chunk's work — and
    ships both back with the results as a :class:`ChunkResults`
    payload, which the supervisor absorbs onto the parent's timeline
    as a separate worker track.
    """
    # An active tracer owned by *this* process means the chunk is
    # running inline under the parent session — its spans land on the
    # parent track directly.  A tracer with a foreign pid is an
    # artefact of fork-start pools (the child inherits the parent's
    # module globals); the worker must still instrument itself.
    parent_tracer = active_tracer()
    if not config.telemetry or (
        parent_tracer is not None and parent_tracer.pid == os.getpid()
    ):
        return _run_chunk_seeds(topology, config, seeds, schedules)
    tracer = SpanTracer()
    registry = MetricsRegistry()
    with use_registry(registry), tracing(tracer):
        with tracer.span("chunk.run", seeds=list(seeds)):
            results = _run_chunk_seeds(topology, config, seeds, schedules)
    payload = tracer.export_payload()
    payload["metrics"] = registry.snapshot()
    wrapped = ChunkResults(results)
    wrapped.telemetry = payload
    return wrapped


def _run_chunk_seeds(
    topology: Topology,
    config: ExperimentConfig,
    seeds: Tuple[int, ...],
    schedules: Optional[Dict[Tuple, Schedule]] = None,
) -> List[OperationalResult]:
    if schedules:
        default_schedule_cache().preload(schedules)
    plan = active_fault_plan()
    runner = ExperimentRunner(topology)
    results = []
    for seed in seeds:
        if plan is not None:
            # Chaos-only fault point (crash/hang/transient/poison).
            plan.before_seed(seed)
        results.append(runner.run_once(config, seed))
    return results


class ParallelExperimentRunner(ExperimentRunner):
    """An :class:`ExperimentRunner` that sweeps seeds across processes.

    Parameters
    ----------
    topology:
        The network under test.
    workers:
        Process count; ``None`` or ``0`` means one per CPU (the CLI
        convention).  ``workers=1`` degenerates to the serial engine
        without spawning a pool.
    chunks_per_worker:
        Load-balancing granularity: each ``run`` splits its seeds into
        up to ``workers × chunks_per_worker`` tasks.
    executor:
        An externally owned pool to submit to, shared between runners
        (e.g. one pool across every grid size of a figure).  The runner
        never shuts an external pool down; without one, a pool is
        created lazily on first use and reused across ``run`` calls
        (pool start-up would otherwise dominate short sweeps) — close
        it with :meth:`close` or use the runner as a context manager.
    schedule_cache:
        As on :class:`ExperimentRunner` — the parent-side cache
        consulted by ``build_schedule`` *and* mined for already-built
        schedules to ship with each worker chunk.
    retry_policy:
        Backoff schedule for supervised retries of failed or hung
        chunks (default: three attempts, 50 ms base delay).  See
        :class:`~repro.experiments.resilience.RetryPolicy`.
    chunk_timeout:
        Seconds a chunk future may run before the pool is presumed
        hung, killed and respawned (``None``, the default, disables the
        timeout — a crash still recovers, a genuine hang does not).
    """

    def __init__(
        self,
        topology: Topology,
        workers: Optional[int] = None,
        chunks_per_worker: int = 4,
        executor: Optional[ProcessPoolExecutor] = None,
        schedule_cache: Optional["ScheduleCache"] = None,
        retry_policy: Optional[RetryPolicy] = None,
        chunk_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(topology, schedule_cache=schedule_cache)
        resolved = default_workers() if not workers else workers
        if resolved < 1:
            raise invalid_field(
                "ParallelExperimentRunner", "workers", workers,
                "the parallel runner needs at least one worker",
            )
        if chunks_per_worker < 1:
            raise invalid_field(
                "ParallelExperimentRunner", "chunks_per_worker", chunks_per_worker,
                "chunks_per_worker must be at least one",
            )
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise invalid_field(
                "ParallelExperimentRunner", "chunk_timeout", chunk_timeout,
                "a timeout must be positive (None disables it)",
            )
        self._workers = resolved
        self._chunks_per_worker = chunks_per_worker
        self._executor: Optional[ProcessPoolExecutor] = None
        self._external_executor = executor
        self._retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self._chunk_timeout = chunk_timeout

    @property
    def workers(self) -> int:
        """The process count seed sweeps fan out over."""
        return self._workers

    def _cached_schedules_for(
        self, config: ExperimentConfig, seeds: Tuple[int, ...]
    ) -> Optional[Dict[Tuple, Schedule]]:
        """The chunk's schedules the parent already holds, keyed for the
        worker's lookups.

        Only entries actually present travel (a cold parent ships
        nothing — workers build and cache locally exactly as before),
        and the peek is counter-neutral so parent-side ``cache_hits``
        accounting keeps meaning "a build was avoided *here*".
        """
        if not config.use_schedule_cache:
            return None
        cache = self._schedule_cache
        if cache is None and schedule_cache_enabled():
            cache = default_schedule_cache()
        if cache is None:
            return None
        shipped: Dict[Tuple, Schedule] = {}
        for seed in seeds:
            key = self.schedule_key_for(config, seed)
            if key in shipped:
                continue  # unseeded builds: one key covers every seed
            schedule = cache.peek(key)
            if schedule is not None:
                shipped[key] = schedule
        return shipped or None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._external_executor is not None:
            return self._external_executor
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self._workers)
        return self._executor

    @staticmethod
    def _terminate_processes(executor: ProcessPoolExecutor) -> None:
        """Forcibly end a pool's worker processes (the only way to
        reclaim a hung worker; ``shutdown`` alone would wait forever)."""
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError):  # already gone
                pass

    def _abandon_pool(self, kill: bool = False) -> None:
        """Discard the current pool so the next submit gets a fresh one
        (the supervisor's ``respawn`` hook).

        A broken or hung *external* pool cannot be recovered here — it
        belongs to the caller, who still shuts it down — so the runner
        simply stops submitting to it and falls back to an owned
        replacement.  ``kill=True`` additionally terminates an owned
        pool's processes before the non-blocking shutdown.
        """
        if self._external_executor is not None:
            self._external_executor = None
        executor = self._executor
        self._executor = None
        if executor is not None:
            if kill:
                self._terminate_processes(executor)
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self, kill: bool = False) -> None:
        """Shut the owned worker pool down (an external ``executor`` is
        left running).  Idempotent; the runner may be reused afterwards
        (a fresh pool is spawned on demand).  ``kill=True`` cancels
        pending futures, terminates the worker processes and does not
        wait — the interrupt path, which must never orphan workers
        behind a blocking shutdown."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            if kill:
                self._terminate_processes(executor)
            executor.shutdown(wait=not kill, cancel_futures=True)

    def __enter__(self) -> "ParallelExperimentRunner":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        # On KeyboardInterrupt (or interpreter teardown via SystemExit)
        # a graceful shutdown would block on in-flight chunks and leave
        # workers orphaned if the user interrupts again; kill instead.
        interrupted = isinstance(exc_type, type) and issubclass(
            exc_type, (KeyboardInterrupt, SystemExit)
        )
        self.close(kill=interrupted)

    def _submit_chunk(self, config: ExperimentConfig, seeds: Tuple[int, ...]):
        """Dispatch one chunk to the current pool (the supervisor's
        ``submit`` hook), shipping any already-built schedules."""
        payload = self._cached_schedules_for(config, seeds)
        return self._ensure_executor().submit(
            _run_seed_chunk, self._topology, config, seeds, payload
        )

    def _execute(
        self,
        config: ExperimentConfig,
        seeds: Sequence[int],
        on_result=None,
    ) -> Tuple[Dict[int, OperationalResult], Tuple[FailedRun, ...]]:
        """Supervised pool execution of a seed sweep.

        Chunks run as individually supervised futures (timeout, retry
        with backoff, pool respawn, poison-seed isolation — see
        :class:`~repro.experiments.resilience.WorkerSupervisor`);
        results are keyed by seed, so the reassembled sweep is
        bit-identical to a serial one whenever nothing fails.
        """
        if self._workers == 1 or len(seeds) <= 1:
            return super()._execute(config, seeds, on_result)
        chunks = seed_chunks(list(seeds), self._workers * self._chunks_per_worker)
        supervisor = WorkerSupervisor(
            submit=lambda chunk: self._submit_chunk(config, chunk),
            respawn=self._abandon_pool,
            retry=self._retry_policy,
            chunk_timeout=self._chunk_timeout,
            on_result=on_result,
        )
        try:
            return supervisor.execute(chunks)
        except BaseException:
            # KeyboardInterrupt (or any other escape) mid-sweep: tear
            # the pool down hard rather than leave workers running a
            # sweep nobody will collect.
            self.close(kill=True)
            raise


def resolve_workers(workers: Optional[int]) -> Optional[int]:
    """Normalise a ``workers`` argument: ``0`` means one per CPU (the
    CLI convention), anything else passes through unchanged."""
    return default_workers() if workers == 0 else workers


def make_runner(
    topology: Topology,
    workers: Optional[int] = None,
    repeats: Optional[int] = None,
    force_parallel: bool = False,
    retry_policy: Optional[RetryPolicy] = None,
    chunk_timeout: Optional[float] = None,
) -> ExperimentRunner:
    """Build the right runner for a worker count.

    ``None`` or ``1`` gives the serial :class:`ExperimentRunner`; ``0``
    means one per CPU; any other count gives a
    :class:`ParallelExperimentRunner`.  Both support the
    context-manager protocol, so call sites can treat them uniformly::

        with make_runner(topology, workers) as runner:
            outcome = runner.run(config)

    When the sweep size is known, pass ``repeats`` so
    :func:`plan_workers` can fall back to the serial engine where a pool
    would only add overhead (worker count above the core count, or a
    sweep too small to amortise dispatch); ``force_parallel=True``
    bypasses that policy and honours the requested count verbatim.
    Results are bit-identical whichever engine is picked.
    ``retry_policy`` and ``chunk_timeout`` configure the parallel
    engine's supervision (ignored by the serial engine, which has no
    workers to lose).
    """
    effective = plan_workers(
        workers, repeats=repeats, topology=topology, force_parallel=force_parallel
    )
    if effective <= 1:
        return ExperimentRunner(topology)
    return ParallelExperimentRunner(
        topology,
        workers=effective,
        retry_policy=retry_policy,
        chunk_timeout=chunk_timeout,
    )
