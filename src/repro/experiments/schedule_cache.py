"""Content-addressed memoisation of schedule construction.

The evaluation's outer loops rebuild DAS/SLP schedules far more often
than they strictly need to: the bench's serial-vs-parallel identity
checks sweep the same ``(topology, algorithm, parameters, seed)`` cells
twice, ``scenario compare`` lowers many scenarios onto the same 11×11
grid with the same seeds, and the two panels of Figure 5 share every
protectionless cell.  Schedule building is deterministic in exactly
those inputs, so rebuilding is pure waste — ~10–15 % of a sweep run.

:class:`ScheduleCache` is a bounded LRU memo keyed *by content*, not by
object identity: :func:`topology_fingerprint` hashes the node set, the
edge set and the sink, so two independently constructed topologies with
the same structure share cache entries, and changing a single link
changes the key.  The designated source joins the key only for
algorithms whose schedule depends on it (SLP's decoy path); the
protectionless DAS schedule is source-independent, which is what lets
``scenario compare`` share one schedule across multi-source variants of
the same grid.

Each process holds one default cache (:func:`default_schedule_cache`):
the parent's for serial sweeps, one per worker for parallel sweeps
(workers populate theirs on first use and keep it across chunks).
Hit/miss counters make the cache observable — ``scripts/bench.py``
reports them and the CLI prints a one-line summary — and
``ExperimentConfig(use_schedule_cache=False)`` or the process-wide
:func:`configure_schedule_cache` switch it off for bisection.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from ..core import Schedule
from ..errors import invalid_field
from ..topology import Topology

#: Default bound on retained schedules.  Entries are full Schedule
#: objects (two dicts over the node set), so even 21×21 grids keep the
#: default cache within a few megabytes.
DEFAULT_MAXSIZE = 256


def topology_fingerprint(topology: Topology) -> str:
    """A content hash of a topology's communication structure.

    Covers the node set, the (canonicalised) edge set and the sink —
    everything schedule construction reads apart from the designated
    source, which :func:`schedule_key` mixes in only when the algorithm
    depends on it.  Two topologies with identical structure fingerprint
    identically regardless of name or construction path; adding,
    removing or rewiring any link changes the fingerprint.
    """
    graph = topology.graph
    digest = hashlib.sha256()
    digest.update(repr(tuple(sorted(graph.nodes))).encode())
    edges = tuple(sorted(tuple(sorted(edge)) for edge in graph.edges))
    digest.update(repr(edges).encode())
    digest.update(repr(topology.sink).encode())
    return digest.hexdigest()


def schedule_key(
    fingerprint: str,
    topology: Topology,
    algorithm: str,
    seed: int,
    search_distance: int,
    use_distributed: bool,
    parameters: object,
    noise: object,
    seeded: bool = True,
    jitter: bool = True,
    setup_kernel: Optional[str] = None,
) -> Tuple:
    """The cache key for one schedule build.

    ``fingerprint`` is the topology's content hash (hoisted out so
    callers can compute it once per sweep).  The source and the search
    distance join the key only for SLP (protectionless DAS ignores
    both), and the noise specification joins only for distributed
    builds (the centralised pipeline never draws from it) — omitting
    irrelevant inputs is what turns algorithm comparisons and
    multi-source scenario sweeps into cache hits.

    ``seeded`` declares whether the build draws any randomness from the
    seed.  A centralised protectionless build with jitter disabled is a
    pure function of the topology and parameters, so the seed leaves
    the key and a cold 30-seed sweep logs 1 miss + 29 hits instead of
    30 misses; every seeded build (jittered priorities, SLP tie-breaks,
    distributed message timing) keeps the seed in the key.

    ``jitter`` is itself a key component for centralised builds: the
    same seed produces different schedules with jitter on vs off (an
    SLP build keeps its seeded phase 2/3 tie-breaks either way but
    starts from a different Phase 1 baseline), so the two must never
    share an entry.  Distributed builds ignore the flag, and their key
    ignores it too.

    ``setup_kernel`` (the *resolved* engine of a distributed build,
    never ``None``-as-default) keys distributed entries by the engine
    that built them.  The engines are bit-identical, so sharing would
    be harmless for results — but someone selecting ``legacy`` is
    bisecting the fast kernel, and handing them a fast-built cache
    entry would defeat exactly that.  Centralised builds pass ``None``.
    """
    slp = algorithm != "protectionless"
    return (
        fingerprint,
        algorithm,
        seed if seeded else None,
        (topology.source if topology.has_source else None) if slp else None,
        search_distance if slp else None,
        use_distributed,
        jitter if not use_distributed else None,
        repr(parameters),
        repr(noise) if use_distributed else None,
        setup_kernel if use_distributed else None,
    )


class ScheduleCache:
    """A bounded LRU map from schedule keys to built :class:`Schedule`\\ s.

    Entries are immutable ``Schedule`` objects, safe to share between
    runs (the operational harness derives its own compressed copy).
    ``maxsize`` bounds retained entries; the least recently *used* entry
    is evicted first.  ``hits``/``misses`` count lookups for the
    observability surfaces (bench, CLI summary).
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise invalid_field(
                "ScheduleCache", "maxsize", maxsize, "needs room for one entry"
            )
        self._maxsize = maxsize
        self._entries: "OrderedDict[Tuple, Schedule]" = OrderedDict()
        self._store = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.preloads = 0

    def attach_store(self, store) -> None:
        """Attach (or with ``None`` detach) a shared on-disk
        :class:`~repro.experiments.schedule_store.ScheduleStore` as the
        second cache tier.

        On an in-memory miss the store is consulted before building; a
        fetched schedule is installed in memory and counted as a
        *store hit*, not a miss — ``misses`` keeps meaning "a build
        happened here" and the stats the bench reports stay truthful.
        Every build is published back write-through, so concurrent
        processes over the same topology dedup to one build.
        """
        self._store = store

    @property
    def store(self):
        """The attached on-disk store, or ``None``."""
        return self._store

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def maxsize(self) -> int:
        """The retention bound."""
        return self._maxsize

    def get_or_build(self, key: Tuple, build: Callable[[], Schedule]) -> Schedule:
        """Return the cached schedule for ``key``, building on miss.

        Lookup order: in-memory LRU (``hits``), then the attached
        on-disk store if any (its ``hits`` surface as ``store_hits``),
        then an actual build (``misses`` — the counter means exactly
        "builds performed here").  Total lookups are therefore
        ``hits + store_hits + misses``.
        """
        entries = self._entries
        schedule = entries.get(key)
        if schedule is not None:
            self.hits += 1
            entries.move_to_end(key)
            return schedule
        if self._store is not None:
            schedule = self._store.get(key)
            if schedule is not None:
                self._install(key, schedule)
                return schedule
        self.misses += 1
        schedule = build()
        self._install(key, schedule)
        if self._store is not None:
            self._store.put(key, schedule)
        return schedule

    def _install(self, key: Tuple, schedule: Schedule) -> None:
        entries = self._entries
        entries[key] = schedule
        if len(entries) > self._maxsize:
            entries.popitem(last=False)
            self.evictions += 1

    def peek(self, key: Tuple) -> Optional[Schedule]:
        """A counter-neutral lookup: the cached schedule or ``None``.

        Does not bump hits/misses and does not refresh LRU recency —
        the parallel runner uses it to see which of a sweep's schedules
        are already built (to ship them to workers) without distorting
        the accounting the bench reports.
        """
        return self._entries.get(key)

    def preload(self, entries: Dict[Tuple, Schedule]) -> None:
        """Seed the cache with already-built schedules, counter-neutrally.

        Worker processes call this with the entries the parent shipped
        in the chunk payload; the subsequent ``get_or_build`` lookups
        then count as ordinary hits (they are: the schedule exists and
        is reused), while the preload itself is neither a hit nor a
        miss — the worker never looked anything up to install it.  The
        ``preloads`` counter records each installed entry so shipped
        schedules stay visible without distorting the hit rate.
        """
        cache = self._entries
        for key, schedule in entries.items():
            cache[key] = schedule
            self.preloads += 1
            if len(cache) > self._maxsize:
                cache.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.preloads = 0

    def stats(self) -> Dict[str, int]:
        """A snapshot of the counters (plus current size).

        ``store_hits``/``store_misses`` appear only while an on-disk
        store is attached; ``misses`` always equals builds performed.
        """
        counters = {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "preloads": self.preloads,
            "size": len(self._entries),
        }
        if self._store is not None:
            counters["store_hits"] = self._store.hits
            counters["store_misses"] = self._store.misses
        return counters

    def summary(self) -> str:
        """One line for CLI/bench output."""
        store_hits = self._store.hits if self._store is not None else 0
        total = self.hits + store_hits + self.misses
        ratio = (100.0 * (self.hits + store_hits) / total) if total else 0.0
        line = (
            f"schedule cache: {self.hits} hits / {self.misses} misses "
            f"({ratio:.0f}% hit rate), {len(self._entries)}/{self._maxsize} entries"
        )
        if self._store is not None:
            line += f", {store_hits} store hits"
        if self.evictions or self.preloads:
            line += f", {self.evictions} evictions, {self.preloads} preloads"
        return line


#: The per-process default cache (each worker process owns its own).
_DEFAULT_CACHE = ScheduleCache()
_ENABLED = True


def default_schedule_cache() -> ScheduleCache:
    """This process's shared schedule cache."""
    return _DEFAULT_CACHE


def default_cache() -> ScheduleCache:
    """Public accessor for the process-default cache.

    Alias of :func:`default_schedule_cache`, kept as the short public
    name so tooling never reaches for the private module state:
    ``default_cache().stats()`` for the counters,
    ``default_cache().summary()`` for the CLI one-liner.
    """
    return _DEFAULT_CACHE


def default_cache_stats() -> Dict[str, int]:
    """Counter snapshot of the process-default cache
    (hits/misses/evictions/preloads/size)."""
    return _DEFAULT_CACHE.stats()


def reset_default_cache() -> None:
    """Drop the process-default cache's entries and counters, and
    detach any on-disk store.

    For test isolation and long-lived tooling sessions; sweeps never
    need it (the LRU bound caps retention).
    """
    _DEFAULT_CACHE.clear()
    _DEFAULT_CACHE.attach_store(None)


def schedule_cache_enabled() -> bool:
    """Whether runners consult the default cache (process-wide switch)."""
    return _ENABLED


#: Sentinel: "leave the store attachment as it is".
_KEEP_STORE = object()


def configure_schedule_cache(
    enabled: Optional[bool] = None, store: object = _KEEP_STORE
) -> None:
    """Process-wide cache configuration.

    ``enabled`` is the kill switch (the CLI's ``--no-schedule-cache``);
    ``store`` attaches a shared on-disk tier to the default cache — a
    :class:`~repro.experiments.schedule_store.ScheduleStore`, a path to
    create one at, or ``None`` to detach.  Only affects the *current*
    process — worker processes of a parallel sweep decide from the
    pickled ``ExperimentConfig.use_schedule_cache`` flag instead (and
    the service's shard workers attach their store explicitly).
    """
    global _ENABLED
    if enabled is not None:
        _ENABLED = enabled
    if store is not _KEEP_STORE:
        if store is not None and not hasattr(store, "get"):
            from .schedule_store import ScheduleStore

            store = ScheduleStore(store)
        _DEFAULT_CACHE.attach_store(store)
