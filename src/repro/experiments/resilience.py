"""Fault-tolerant sweep execution: retries, checkpoints, divergence guard.

The parallel sweep engine's original failure story was all-or-nothing:
one crashed or hung pool worker aborted the whole sweep and threw away
every completed seed.  This module gives the experiment layer the same
degrade-gracefully-or-fail-loudly discipline the paper demands of its
setup phase, in four pieces:

:class:`WorkerSupervisor`
    Drives per-chunk futures with a configurable timeout, retries
    failed or hung chunks with exponential backoff and deterministic
    jitter (:class:`RetryPolicy`), has broken pools respawned, splits a
    repeatedly failing chunk to isolate poison seeds, and — instead of
    aborting — quarantines unrecoverable seeds as structured
    :class:`FailedRun` entries.  A sweep in which nothing fails is
    byte-identical to the pre-supervision engine.

:class:`SweepCheckpoint`
    An append-only on-disk store of completed per-seed results, keyed
    by a content digest of (topology fingerprint, canonicalised
    config).  An interrupted sweep resumed from its checkpoint re-runs
    only the missing seeds, and the merged report is bit-identical to
    an uninterrupted run (every run re-seeds from scratch, so result
    values cannot depend on which process executed them or when).

:func:`apply_divergence_guard`
    The runtime net under the fast kernels' compile-time gates: re-run
    a deterministic sample of a sweep's seeds on the legacy engines
    and compare results.  On mismatch it writes a reproducer bundle
    (topology fingerprint, seed, config, both results) and *degrades*
    the sweep to the legacy kernel instead of emitting silently wrong
    data.

:class:`FailedRun` / :class:`GuardReport`
    The structured records surfaced on
    :class:`~repro.experiments.ExperimentOutcome` (and from there in
    scenario reports) so partial results are always labelled as such.

The fault points the chaos tests drive through this machinery live in
:mod:`repro.experiments.faults`.
"""

from __future__ import annotations

import json
import random
import time
from collections import deque
from concurrent.futures import BrokenExecutor, CancelledError, Future
from dataclasses import asdict, dataclass, replace
from hashlib import sha256
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..app import OperationalResult
from ..errors import invalid_field
from ..storage import atomic_write_text, durable_append
from ..telemetry import absorb_worker_payload, active_tracer, default_registry
from .faults import active_fault_plan
from .schedule_cache import topology_fingerprint

#: Divergence-guard modes accepted by ``run_resilient``/the CLI.
GUARD_DIFFERENTIAL = "differential"
GUARD_MODES = (GUARD_DIFFERENTIAL,)

#: Checkpoint on-disk format version; part of every store key so a
#: format change can never silently merge with old entries.
CHECKPOINT_VERSION = 1


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(attempt, key)`` grows as ``base_delay * 2**(attempt-1)``,
    capped at ``max_delay``, scaled by a jitter factor in ``[0.5, 1.0)``
    drawn from ``(seed, attempt, key)`` — deterministic, so a retried
    sweep sleeps the same amount every time it is replayed (no
    wall-clock enters any result, but reproducible chaos tests want
    reproducible schedules too).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise invalid_field(
                "RetryPolicy", "max_attempts", self.max_attempts,
                "a chunk must be attempted at least once",
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise invalid_field(
                "RetryPolicy", "base_delay", self.base_delay,
                "delays cannot be negative",
            )

    def delay(self, attempt: int, key: int = 0) -> float:
        """The back-off before retrying after failed ``attempt``."""
        raw = min(self.base_delay * (2 ** max(attempt - 1, 0)), self.max_delay)
        jitter = random.Random(f"{self.seed}:{attempt}:{key}").random()
        return raw * (0.5 + 0.5 * jitter)


# ----------------------------------------------------------------------
# Structured failure records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FailedRun:
    """One quarantined seed: every recovery avenue was exhausted.

    Attributes
    ----------
    seed:
        The seed whose run never completed.
    attempts:
        Attempts made at the final (single-seed) isolation level.
    kind:
        ``"crash"`` (worker death broke the pool), ``"timeout"`` (hung
        past the chunk timeout), ``"error"`` (the run raised), or
        ``"submit"`` (the chunk could not even be dispatched, e.g. a
        pickling failure).
    error:
        ``TypeName: message`` of the last observed exception.
    """

    seed: int
    attempts: int
    kind: str
    error: str


@dataclass(frozen=True)
class GuardReport:
    """What the kernel-divergence guard saw on one sweep.

    ``degraded`` means a mismatch was found and the reported results
    were re-computed on the legacy engines; ``bundle_path`` then names
    the reproducer bundle written for the kernel bug hunt.
    """

    mode: str
    sampled_seeds: Tuple[int, ...]
    mismatched_seeds: Tuple[int, ...]
    degraded: bool
    bundle_path: Optional[str] = None


# ----------------------------------------------------------------------
# Worker supervision
# ----------------------------------------------------------------------
class _Task:
    """One chunk of seeds queued for (re-)execution."""

    __slots__ = ("seeds", "attempt")

    def __init__(self, seeds: Tuple[int, ...], attempt: int) -> None:
        self.seeds = seeds
        self.attempt = attempt


class WorkerSupervisor:
    """Supervised gather of chunked seed runs over a worker pool.

    The supervisor owns *policy* (timeouts, retries, splitting,
    quarantine) and delegates *mechanism* to two callables supplied by
    the runner: ``submit(seeds) -> Future`` dispatches one chunk to the
    current pool, and ``respawn(kill)`` discards a broken or hung pool
    so the next ``submit`` gets a fresh one (``kill=True`` additionally
    terminates the pool's processes — the only way to reclaim a hung
    worker).

    Failure semantics:

    * a chunk future raising an ordinary exception is retried up to
      ``retry.max_attempts`` times with backoff;
    * a broken pool (worker death) is respawned; the observed chunk
      *and every other unfinished in-flight chunk* get a retry attempt
      charged, because the culprit cannot be identified — with one
      deterministic crasher this converges to isolating it, at worst
      quarantining the seeds that shared its rounds;
    * a chunk exceeding ``chunk_timeout`` has the pool killed and is
      charged an attempt; other in-flight chunks are re-queued without
      blame (their worker was murdered, not wedged);
    * a chunk out of attempts is *split* in half and both halves start
      fresh — repeated failures therefore bisect down to the poison
      seed, which is quarantined as a :class:`FailedRun` while its
      former chunk-mates complete normally.

    Results are keyed by seed, so completion order — reshuffled by
    every retry — cannot affect the reassembled sweep.
    """

    def __init__(
        self,
        submit: Callable[[Tuple[int, ...]], Future],
        respawn: Callable[[bool], None],
        retry: Optional[RetryPolicy] = None,
        chunk_timeout: Optional[float] = None,
        on_result: Optional[Callable[[int, OperationalResult], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise invalid_field(
                "WorkerSupervisor", "chunk_timeout", chunk_timeout,
                "a timeout must be positive (None disables it)",
            )
        self._submit = submit
        self._respawn = respawn
        self._retry = retry if retry is not None else RetryPolicy()
        self._chunk_timeout = chunk_timeout
        self._on_result = on_result
        self._sleep = sleep
        self._plan = active_fault_plan()

    def execute(
        self, chunks: Sequence[Tuple[int, ...]]
    ) -> Tuple[Dict[int, OperationalResult], Tuple[FailedRun, ...]]:
        """Run every chunk to completion or quarantine.

        Returns results keyed by seed plus the quarantine records,
        ordered by seed.
        """
        results: Dict[int, OperationalResult] = {}
        failures: List[FailedRun] = []
        queue: Deque[_Task] = deque(
            _Task(tuple(chunk), 1) for chunk in chunks if chunk
        )
        while queue:
            batch = list(queue)
            queue.clear()
            round_delay = 0.0

            in_flight: List[Tuple[_Task, Future]] = []
            for task in batch:
                future, delay = self._try_submit(task, queue, failures)
                round_delay = max(round_delay, delay)
                if future is not None:
                    in_flight.append((task, future))

            pool_dead = False
            blame_rest = False
            for task, future in in_flight:
                if pool_dead:
                    # The pool died earlier in this round.  Harvest
                    # chunks that had already finished; charge the rest
                    # an attempt only when worker death left the
                    # culprit unidentifiable.
                    if (
                        future.done()
                        and not future.cancelled()
                        and future.exception() is None
                    ):
                        self._harvest(task, future.result(), results)
                    elif blame_rest:
                        round_delay = max(
                            round_delay,
                            self._retry_or_fail(
                                task,
                                BrokenExecutor("pool broke mid-round"),
                                "crash",
                                queue,
                                failures,
                            ),
                        )
                    else:
                        queue.append(task)
                    continue
                try:
                    chunk_results = future.result(timeout=self._chunk_timeout)
                except CancelledError:
                    queue.append(task)
                except BrokenExecutor as exc:
                    pool_dead = True
                    blame_rest = True
                    self._note_respawn(False)
                    round_delay = max(
                        round_delay,
                        self._retry_or_fail(task, exc, "crash", queue, failures),
                    )
                except TimeoutError as exc:
                    pool_dead = True
                    self._note_respawn(True)
                    round_delay = max(
                        round_delay,
                        self._retry_or_fail(task, exc, "timeout", queue, failures),
                    )
                except Exception as exc:
                    round_delay = max(
                        round_delay,
                        self._retry_or_fail(task, exc, "error", queue, failures),
                    )
                else:
                    self._harvest(task, chunk_results, results)

            if queue and round_delay > 0:
                self._sleep(round_delay)

        failures.sort(key=lambda f: f.seed)
        return results, tuple(failures)

    # ------------------------------------------------------------------
    def _try_submit(
        self, task: _Task, queue: Deque[_Task], failures: List[FailedRun]
    ) -> Tuple[Optional[Future], float]:
        try:
            if self._plan is not None:
                self._plan.before_submit(task.seeds)
            future = self._submit(task.seeds)
        except BrokenExecutor as exc:
            self._note_respawn(False)
            return None, self._retry_or_fail(task, exc, "crash", queue, failures)
        except Exception as exc:
            return None, self._retry_or_fail(task, exc, "submit", queue, failures)
        default_registry().inc("supervisor.chunks")
        tracer = active_tracer()
        if tracer is not None:
            tracer.instant(
                "chunk.dispatch", seeds=list(task.seeds), attempt=task.attempt
            )
        return future, 0.0

    def _note_respawn(self, kill: bool) -> None:
        default_registry().inc("supervisor.respawns")
        self._respawn(kill)

    def _harvest(
        self,
        task: _Task,
        chunk_results: Sequence[OperationalResult],
        results: Dict[int, OperationalResult],
    ) -> None:
        payload = getattr(chunk_results, "telemetry", None)
        if payload is not None:
            # A telemetry-enabled worker shipped its spans and metrics
            # with the chunk; merge them onto the parent's timeline.
            absorb_worker_payload(payload)
        for seed, result in zip(task.seeds, chunk_results):
            results[seed] = result
            if self._on_result is not None:
                self._on_result(seed, result)

    def _retry_or_fail(
        self,
        task: _Task,
        exc: BaseException,
        kind: str,
        queue: Deque[_Task],
        failures: List[FailedRun],
    ) -> float:
        """Requeue, split, or quarantine a failed task; return the
        backoff its round owes."""
        registry = default_registry()
        tracer = active_tracer()
        if task.attempt < self._retry.max_attempts:
            registry.inc("supervisor.retries")
            if kind == "timeout":
                registry.inc("supervisor.timeouts")
            if tracer is not None:
                tracer.instant(
                    "chunk.retry",
                    seeds=list(task.seeds),
                    attempt=task.attempt,
                    kind=kind,
                )
            queue.append(_Task(task.seeds, task.attempt + 1))
            return self._retry.delay(task.attempt, key=task.seeds[0])
        if len(task.seeds) > 1:
            # Out of attempts as a chunk: bisect to isolate the poison
            # seed.  Halves start fresh — their seeds are merely
            # suspects, not convicts.
            registry.inc("supervisor.bisections")
            if tracer is not None:
                tracer.instant("chunk.bisect", seeds=list(task.seeds))
            mid = len(task.seeds) // 2
            queue.append(_Task(task.seeds[:mid], 1))
            queue.append(_Task(task.seeds[mid:], 1))
            return self._retry.delay(task.attempt, key=task.seeds[0])
        registry.inc("supervisor.quarantined")
        if tracer is not None:
            tracer.instant(
                "chunk.quarantine", seed=task.seeds[0], kind=kind
            )
        failures.append(
            FailedRun(
                seed=task.seeds[0],
                attempts=task.attempt,
                kind=kind,
                error=f"{type(exc).__name__}: {exc}",
            )
        )
        return 0.0


# ----------------------------------------------------------------------
# Result (de)serialisation — the checkpoint store's line format
# ----------------------------------------------------------------------
def result_to_dict(result: OperationalResult) -> Dict[str, object]:
    """An :class:`OperationalResult` as JSON-ready primitives."""
    return asdict(result)


def encode_checkpoint_line(seed: int, result: OperationalResult) -> str:
    """One seed's checkpoint record: the JSON entry plus a ``check``
    digest over its canonical serialisation, so corruption *at rest*
    (bit rot, a lying disk) is detectable — not just torn writes."""
    entry = {"result": result_to_dict(result), "seed": seed}
    body = json.dumps(entry, sort_keys=True)
    check = sha256(body.encode()).hexdigest()[:16]
    entry["check"] = check
    return json.dumps(entry, sort_keys=True)


def decode_checkpoint_line(line: str) -> Tuple[int, OperationalResult]:
    """Invert :func:`encode_checkpoint_line`, verifying the digest.

    Raises ``ValueError``/``KeyError``/``TypeError`` for malformed or
    digest-mismatched lines (pre-digest lines, which carry no ``check``
    field, are accepted — old checkpoints stay resumable).
    """
    entry = json.loads(line)
    check = entry.pop("check", None)
    if check is not None:
        body = json.dumps(entry, sort_keys=True)
        if sha256(body.encode()).hexdigest()[:16] != check:
            raise ValueError("checkpoint line digest mismatch")
    return int(entry["seed"]), result_from_dict(entry["result"])


def result_from_dict(data: Dict[str, object]) -> OperationalResult:
    """Invert :func:`result_to_dict` exactly (tuples restored, so a
    round-tripped result compares equal to the original)."""
    return OperationalResult(
        captured=data["captured"],
        capture_period=data["capture_period"],
        capture_time=data["capture_time"],
        periods_run=data["periods_run"],
        safety_periods=data["safety_periods"],
        attacker_path=tuple(data["attacker_path"]),
        messages_sent=data["messages_sent"],
        aggregation_ratio=data["aggregation_ratio"],
        captured_source=data["captured_source"],
        source_pool=tuple(data["source_pool"]),
    )


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------
class SweepCheckpoint:
    """Append-only per-seed result store for interruptible sweeps.

    One sweep maps to one ``sweep-<digest>.jsonl`` file under ``root``;
    the digest (:meth:`key_for`) covers the topology's content
    fingerprint and the experiment config with ``repeats``/``base_seed``
    canonicalised away — so a resumed sweep, a re-run after reboot, or
    a widened seed range all hit the same store, while any change that
    could alter a result (algorithm, parameters, noise, perturbations,
    kernel selection, schedule jitter) gets a fresh one.  Nothing
    machine- or git-dependent enters the key.

    Each line is ``{"check": digest, "result": {...}, "seed": s}``
    (:func:`encode_checkpoint_line`); appends go through the durable-IO
    seam (fsynced, torn-tail welding) and a torn or digest-mismatched
    line is skipped on load, so a crashed append — or silent corruption
    at rest — costs at most that one seed.  Float fields survive the
    JSON round trip exactly (shortest round-trip repr), which is what
    makes a resumed report bit-identical to an uninterrupted one.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        """The store directory."""
        return self._root

    def key_for(self, topology, config) -> str:
        """The sweep's content digest (see the class docstring)."""
        # Telemetry is canonicalised away with repeats/base_seed: it
        # never affects results, so instrumented and plain sweeps must
        # share one store.
        canonical = replace(config, repeats=1, base_seed=0, telemetry=False)
        digest = sha256()
        digest.update(topology_fingerprint(topology).encode())
        digest.update(repr(topology.source if topology.has_source else None).encode())
        digest.update(repr(canonical).encode())
        digest.update(f"v{CHECKPOINT_VERSION}".encode())
        return digest.hexdigest()

    def path_for(self, key: str) -> Path:
        """The store file backing one sweep key."""
        return self._root / f"sweep-{key}.jsonl"

    def load(self, key: str) -> Dict[int, OperationalResult]:
        """Every completed seed on record for ``key``.

        Corrupt lines (a write torn by the interruption being resumed
        from) are skipped; a seed recorded twice keeps the last entry.
        """
        path = self.path_for(key)
        results: Dict[int, OperationalResult] = {}
        if not path.exists():
            return results
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                found, result = decode_checkpoint_line(line)
            except (ValueError, KeyError, TypeError):
                continue
            results[found] = result
        return results

    def append(self, key: str, seed: int, result: OperationalResult) -> None:
        """Record one completed seed through the durable-IO seam
        (:func:`~repro.storage.durable_append`: single-write append with
        torn-line welding, flushed and fsynced, so results survive
        whatever interrupts the sweep next — including the power).

        Raises :class:`~repro.errors.StorageError` if the disk fails
        the append; a seed whose result cannot be made durable must
        fail loudly, never report success.
        """
        line = encode_checkpoint_line(seed, result)
        plan = active_fault_plan()
        if plan is not None:
            line = plan.corrupt_checkpoint_line(seed, line)
        durable_append(self.path_for(key), line)

    def clear(self, key: str) -> None:
        """Drop the record of one sweep (``--checkpoint`` without
        ``--resume`` starts fresh)."""
        self.path_for(key).unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Runtime kernel-divergence guard
# ----------------------------------------------------------------------
def guard_sample(seeds: Sequence[int], sample: int, base_seed: int) -> Tuple[int, ...]:
    """A deterministic sample of a sweep's seeds to re-check: drawn
    from the sweep's shape, not wall-clock, so the same sweep always
    audits the same seeds."""
    k = min(sample, len(seeds))
    if k <= 0:
        return ()
    rng = random.Random(f"guard:{base_seed}:{len(seeds)}")
    return tuple(sorted(rng.sample(list(seeds), k)))


def _legacy_config(config):
    """``config`` pinned to the legacy engines (the reference the guard
    trusts), with the schedule cache bypassed so the probe cannot be
    fed a fast-kernel-built entry."""
    return replace(
        config,
        kernel="legacy",
        setup_kernel="legacy" if config.use_distributed else config.setup_kernel,
        use_schedule_cache=False,
    )


def write_reproducer_bundle(
    bundle_dir: Union[str, Path],
    topology,
    config,
    mismatches: Sequence[Tuple[int, OperationalResult, OperationalResult]],
) -> str:
    """Persist everything needed to replay a kernel divergence:
    topology fingerprint, config, and both engines' results per
    mismatched seed.  Returns the bundle path."""
    directory = Path(bundle_dir)
    directory.mkdir(parents=True, exist_ok=True)
    fingerprint = topology_fingerprint(topology)
    payload = {
        "topology": {
            "name": topology.name,
            "fingerprint": fingerprint,
            "nodes": topology.num_nodes,
        },
        "config": repr(config),
        "mismatches": [
            {
                "seed": seed,
                "fast": result_to_dict(fast),
                "legacy": result_to_dict(legacy),
            }
            for seed, fast, legacy in mismatches
        ],
    }
    path = directory / (
        f"divergence-{fingerprint[:12]}-seed{mismatches[0][0]}.json"
    )
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return str(path)


def apply_divergence_guard(
    runner,
    config,
    outcome,
    sample: int = 3,
    bundle_dir: Union[str, Path] = "divergence",
):
    """Re-run a sampled subset of ``outcome``'s seeds on the legacy
    engines and compare.

    A clean audit returns the outcome annotated with a
    :class:`GuardReport` (``degraded=False``).  A mismatch writes a
    reproducer bundle and re-runs the *whole* sweep on the legacy
    engines — degraded, slower, but never silently wrong — returning
    the legacy outcome annotated accordingly.  The degraded re-run goes
    back through ``runner.run``, so it keeps the supervised-execution
    guarantees.
    """
    from .runner import ExperimentRunner  # runner imports this module

    quarantined = {failure.seed for failure in outcome.failures}
    completed = [
        config.base_seed + i
        for i in range(config.repeats)
        if config.base_seed + i not in quarantined
    ]
    by_seed = dict(zip(completed, outcome.results))
    sampled = guard_sample(completed, sample, config.base_seed)
    legacy_cfg = _legacy_config(config)
    probe = ExperimentRunner(runner.topology)
    mismatches: List[Tuple[int, OperationalResult, OperationalResult]] = []
    tracer = active_tracer()
    rerun_span = (
        tracer.begin("guard.rerun", sampled=list(sampled))
        if tracer is not None
        else None
    )
    try:
        for seed in sampled:
            reference = probe.run_once(legacy_cfg, seed)
            if reference != by_seed[seed]:
                mismatches.append((seed, by_seed[seed], reference))
    finally:
        if rerun_span is not None:
            tracer.end(rerun_span)
    registry = default_registry()
    registry.inc("guard.sampled", len(sampled))
    registry.inc("guard.mismatched", len(mismatches))
    if not mismatches:
        report = GuardReport(
            mode=GUARD_DIFFERENTIAL,
            sampled_seeds=sampled,
            mismatched_seeds=(),
            degraded=False,
        )
        return replace(outcome, guard=report)
    bundle_path = write_reproducer_bundle(
        bundle_dir, runner.topology, config, mismatches
    )
    degraded = runner.run(_legacy_config(config))
    report = GuardReport(
        mode=GUARD_DIFFERENTIAL,
        sampled_seeds=sampled,
        mismatched_seeds=tuple(seed for seed, _, _ in mismatches),
        degraded=True,
        bundle_path=bundle_path,
    )
    return replace(degraded, guard=report)
