"""Exception hierarchy for the ``repro`` package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class TopologyError(ReproError):
    """Raised when a topology is malformed or a query is invalid.

    Examples: asking for the neighbours of a node that does not exist,
    constructing a grid with non-positive dimensions, or designating a
    source node that is not part of the graph.
    """


class ScheduleError(ReproError):
    """Raised when a slot assignment is structurally invalid.

    This covers queries against nodes without slots, slot values outside
    the frame, and attempts to build sender sets from partial schedules.
    """


class SimulationError(ReproError):
    """Raised when the discrete event simulator is misused.

    Examples: scheduling an event in the past, running a simulator that
    has already been shut down, or registering two processes under the
    same identifier.
    """


class ProtocolError(ReproError):
    """Raised when a distributed protocol reaches an unrecoverable state.

    Examples: Phase 1 failing to assign a slot to every node within the
    configured number of setup periods, or Phase 3 being started from a
    node that was never selected by the Phase 2 node locator.
    """


class VerificationError(ReproError):
    """Raised when ``VerifySchedule`` is invoked with inconsistent inputs.

    Examples: verifying a schedule against a topology it does not cover,
    or supplying a non-positive safety period.
    """


class ConfigurationError(ReproError):
    """Raised when experiment parameters are inconsistent.

    Examples: a search distance larger than the network diameter, or a
    negative number of repeats.
    """


class SweepExecutionError(ReproError):
    """Raised when a seed sweep cannot produce any usable results.

    Supervised execution quarantines individual failing seeds and
    completes the sweep with the survivors; this error is the
    fail-loudly end of that spectrum — *no* seed survived (every chunk
    crashed, hung past its timeout, or raised on every attempt).  The
    offending seeds and the attempt count are carried as structured
    attributes so tooling can report them without parsing the message.
    """

    def __init__(self, message: str, seeds=(), attempts: int = 0) -> None:
        super().__init__(message)
        self.seeds = tuple(seeds)
        self.attempts = attempts


class StorageError(ReproError):
    """Raised when a durable write (or a storage audit) fails.

    The crash-consistent IO layer (:mod:`repro.storage`) wraps every
    ``OSError`` from its atomic-write/durable-append paths in this
    type, so callers can distinguish "the disk failed us" (ENOSPC,
    read-only filesystem, permission flip, torn artefact) from a seed
    sweep failing on its own merits.  The CLI maps it to its own exit
    code (distinct from sweep failure and quarantine) and the service
    answers 503 while degraded.

    ``os_errno`` and ``path`` are best-effort diagnostics (they may be
    lost when the error crosses a process boundary via pickling; the
    message always survives).
    """

    def __init__(self, message: str, os_errno: int = 0, path: str = "") -> None:
        super().__init__(message)
        self.os_errno = os_errno
        self.path = path


def storage_failure(op: str, path, exc: OSError) -> StorageError:
    """Build a :class:`StorageError` in the library's uniform shape,
    naming the operation, the artefact, and the underlying OS error::

        raise storage_failure("atomic_write", path, exc) from exc
    """
    detail = exc.strerror or exc.__class__.__name__
    return StorageError(
        f"storage {op} failed for {path}: {detail}",
        os_errno=exc.errno or 0,
        path=str(path),
    )


def sweep_failed(
    owner: str, seeds, attempts: int, detail: str
) -> SweepExecutionError:
    """Build a :class:`SweepExecutionError` in the library's uniform
    shape, naming the seeds that never completed and how hard the
    supervisor tried::

        raise sweep_failed("ParallelExperimentRunner", [3, 4], 3,
                           "InjectedFault: poison")
    """
    listed = ", ".join(map(str, seeds))
    return SweepExecutionError(
        f"{owner}: sweep failed — seeds [{listed}] unrecovered after "
        f"{attempts} attempt(s): {detail}",
        seeds=seeds,
        attempts=attempts,
    )


def invalid_field(
    owner: str, field: str, value: object, problem: str
) -> ConfigurationError:
    """Build a :class:`ConfigurationError` in the library's uniform shape.

    Every validation failure of a configuration object reads the same
    way — ``Owner.field=value: what is wrong`` — so users can always see
    *which* parameter of *which* object they got wrong, not just a prose
    description of the constraint::

        raise invalid_field("ExperimentConfig", "repeats", 0,
                            "an experiment needs at least one repeat")
    """
    return ConfigurationError(f"{owner}.{field}={value!r}: {problem}")
