"""Version information for the ``repro`` package."""

__version__ = "1.0.0"

#: The paper this package reproduces.
PAPER_TITLE = (
    "Source Location Privacy-Aware Data Aggregation Scheduling "
    "for Wireless Sensor Networks"
)
PAPER_AUTHORS = ("Jack Kirton", "Matthew Bradbury", "Arshad Jhumka")
PAPER_VENUE = "37th IEEE International Conference on Distributed Computing Systems (ICDCS 2017)"
