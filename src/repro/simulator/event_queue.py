"""A binary-heap future event list.

The queue is the heart of the discrete event simulator: events pop in
``(time, seq)`` order, cancelled events are dropped lazily on pop (the
standard heapq idiom — cancellation is O(1), cleanup amortised).

Two hot-path refinements over the textbook version:

* heap entries are ``(time, seq, event)`` tuples, so ordering is
  resolved by C-level tuple comparison instead of a Python ``__lt__``
  (the comparator is the single most-called function in a sweep);
* a live-event counter is maintained on push/pop/cancel, making
  ``len(queue)`` — and therefore ``Simulator.pending_events`` — O(1)
  instead of an O(n) scan.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError
from .event import Event, EventHandle


class EventQueue:
    """A future event list ordered by ``(time, sequence)``."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    @property
    def empty(self) -> bool:
        """Whether no live (non-cancelled) events remain."""
        return self._live == 0

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at simulated ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        event = Event(time=time, seq=self._seq, callback=callback, args=args)
        event.in_queue = True
        heapq.heappush(self._heap, (time, self._seq, event))
        self._seq += 1
        self._live += 1
        return EventHandle(event, self)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when empty."""
        self._drop_cancelled_head()
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next live event."""
        self._drop_cancelled_head()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        event = heapq.heappop(self._heap)[2]
        event.in_queue = False
        self._live -= 1
        return event

    def clear(self) -> None:
        """Drop every pending event."""
        for _, _, event in self._heap:
            event.in_queue = False
        self._heap.clear()
        self._live = 0

    def _note_cancelled(self) -> None:
        """Called by :class:`EventHandle` when a queued event is cancelled."""
        self._live -= 1

    def _drop_cancelled_head(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)[2].in_queue = False
