"""A binary-heap future event list.

The queue is the heart of the discrete event simulator: events pop in
``(time, seq)`` order, cancelled events are dropped lazily on pop (the
standard heapq idiom — cancellation is O(1), cleanup amortised).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError
from .event import Event, EventHandle


class EventQueue:
    """A future event list ordered by ``(time, sequence)``."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def empty(self) -> bool:
        """Whether no live (non-cancelled) events remain."""
        self._drop_cancelled_head()
        return not self._heap

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at simulated ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        event = Event(time=time, seq=self._seq, callback=callback, args=args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next live event, or ``None`` when empty."""
        self._drop_cancelled_head()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next live event."""
        self._drop_cancelled_head()
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
