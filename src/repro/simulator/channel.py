"""FIFO message channels (the ``ch`` variable of the paper's model).

§III-A: "Each process has a special channel variable, denoted by ch,
modelling a FIFO queue of incoming messages sent by other processes."
:class:`Channel` is that queue; the radio enqueues deliveries and the
owning process dequeues them in arrival order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Iterator, Optional

from ..errors import SimulationError
from ..topology import NodeId


@dataclass(frozen=True, slots=True)
class Delivery:
    """A message sitting in a channel: who sent it, what, and when."""

    sender: NodeId
    message: Any
    time: float


class Channel:
    """A FIFO queue of incoming :class:`Delivery` records."""

    __slots__ = ("_owner", "_queue")

    def __init__(self, owner: NodeId) -> None:
        self._owner = owner
        self._queue: Deque[Delivery] = deque()

    @property
    def owner(self) -> NodeId:
        """The node this channel belongs to."""
        return self._owner

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self) -> Iterator[Delivery]:
        return iter(tuple(self._queue))

    def enqueue(self, delivery: Delivery) -> None:
        """Append a delivery at the tail (called by the radio)."""
        self._queue.append(delivery)

    def head(self) -> Optional[Delivery]:
        """Peek at the head of the queue without removing it."""
        return self._queue[0] if self._queue else None

    def dequeue(self) -> Delivery:
        """Remove and return the head delivery (the ``rcv`` action)."""
        if not self._queue:
            raise SimulationError(f"dequeue from empty channel of node {self._owner}")
        return self._queue.popleft()

    def drain(self) -> Iterator[Delivery]:
        """Dequeue and yield every pending delivery in FIFO order."""
        while self._queue:
            yield self._queue.popleft()

    def clear(self) -> None:
        """Discard all pending deliveries."""
        self._queue.clear()
