"""Run tracing: a structured log of everything a simulation did.

Metrics (message overhead, capture time, latency) are computed from the
trace rather than by instrumenting protocol code, keeping the protocols
clean and the accounting auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Well-known event kinds emitted by the library.
SEND = "send"
DELIVER = "deliver"
DROP = "drop"
COLLIDE = "collide"
ATTACKER_MOVE = "attacker-move"
ATTACKER_HEAR = "attacker-hear"
CAPTURE = "capture"
SLOT_ASSIGNED = "slot-assigned"
SLOT_CHANGED = "slot-changed"
PERIOD_START = "period-start"
PHASE = "phase"

#: The counting-only filter: no record of any kind is retained, only
#: per-kind totals.  The cheapest trace mode — experiment sweeps that
#: need nothing beyond counts should use this.
COUNTS_ONLY: frozenset = frozenset()


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry: a timestamped event kind with free-form detail."""

    time: float
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceRecord` entries during a run.

    Recording every radio delivery on a 441-node network is cheap in
    absolute terms but dominates runtime when thousands of runs are
    aggregated, so a ``kinds`` filter can restrict what is kept.  Counts
    are always maintained for every kind, even filtered ones, because the
    overhead metric only needs totals.

    Passing ``kinds=frozenset()`` (:data:`COUNTS_ONLY`) keeps counts and
    nothing else.  Hot emitters should consult :meth:`wants` once and
    call :meth:`bump` for unwanted kinds — that skips building both the
    detail dict and the :class:`TraceRecord`.
    """

    __slots__ = ("_kinds", "_records", "_counts")

    def __init__(self, kinds: Optional[frozenset] = None) -> None:
        self._kinds = kinds
        self._records: List[TraceRecord] = []
        self._counts: Dict[str, int] = {}

    @property
    def counting_only(self) -> bool:
        """``True`` when no kind is ever retained (``kinds=frozenset()``)."""
        return self._kinds is not None and not self._kinds

    def wants(self, kind: str) -> bool:
        """Whether records of ``kind`` are retained (counts always are)."""
        return self._kinds is None or kind in self._kinds

    def bump(self, kind: str) -> None:
        """Increment ``kind``'s count without constructing a record.

        Equivalent to :meth:`record` for a kind :meth:`wants` is false
        for, minus the per-call dict/record allocation.
        """
        counts = self._counts
        counts[kind] = counts.get(kind, 0) + 1

    def bump_many(self, kind: str, n: int) -> None:
        """Add ``n`` to ``kind``'s count in one call.

        The operational fast lane accumulates its per-kind totals in
        local integers and flushes them here, instead of paying one
        :meth:`bump` per message; the resulting counts are identical.
        """
        if n:
            counts = self._counts
            counts[kind] = counts.get(kind, 0) + n

    def record(self, time: float, kind: str, **detail: Any) -> None:
        """Add an entry (subject to the kind filter) and bump its count."""
        counts = self._counts
        counts[kind] = counts.get(kind, 0) + 1
        if self._kinds is None or kind in self._kinds:
            self._records.append(TraceRecord(time=time, kind=kind, detail=detail))

    def count(self, kind: str) -> int:
        """Total occurrences of ``kind``, including filtered-out ones."""
        return self._counts.get(kind, 0)

    def counts(self) -> Dict[str, int]:
        """A copy of all per-kind totals."""
        return dict(self._counts)

    def publish_counts(self, registry, prefix: str = "trace.") -> None:
        """Fold every per-kind total into a telemetry metrics registry
        as ``<prefix><kind>`` counters.

        The recorder stays import-free of the telemetry package — any
        object with an ``inc(name, value)`` method works — so trace
        accounting carries no telemetry dependency when disabled.
        """
        inc = registry.inc
        for kind, total in self._counts.items():
            inc(prefix + kind, total)

    @property
    def records(self) -> List[TraceRecord]:
        """All retained records in chronological order."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All retained records of one kind."""
        return [r for r in self._records if r.kind == kind]

    def where(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        """All retained records satisfying ``predicate``."""
        return [r for r in self._records if predicate(r)]

    def last(self, kind: str) -> Optional[TraceRecord]:
        """The most recent retained record of ``kind``, if any."""
        for record in reversed(self._records):
            if record.kind == kind:
                return record
        return None

    def clear(self) -> None:
        """Drop all records and counts."""
        self._records.clear()
        self._counts.clear()
