"""Link noise models.

The paper evaluates under TOSSIM with an "ideal communication model" and
the *casino-lab* noise trace (§VI-A).  We cannot replay the original
trace file offline, so this module substitutes parametric models that
reproduce the two behaviours the algorithms are sensitive to:

* occasional message loss (affects what the attacker hears and which
  dissemination messages arrive), and
* *bursts* of correlated loss, which the casino-lab trace exhibits —
  modelled here with a two-state Gilbert–Elliott chain.

Models are stateless with respect to the simulator: they receive the
run's ``random.Random`` so that all stochasticity flows from one seed.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..topology import NodeId


class NoiseModel(ABC):
    """Decides, per transmission and per receiver, whether a frame arrives."""

    @abstractmethod
    def delivers(self, sender: NodeId, receiver: NodeId, rng: random.Random) -> bool:
        """Return ``True`` when the frame from ``sender`` reaches ``receiver``."""

    def delivers_block(
        self, sender: NodeId, receivers: Sequence[NodeId], rng: random.Random
    ) -> List[bool]:
        """Per-receiver outcomes for one broadcast, in receiver order.

        The block form exists for the operational fast path: concrete
        models override it with a loop that binds everything locally and
        advances per-link state inline, removing the per-receiver method
        dispatch of :meth:`delivers`.  **RNG contract:** the block MUST
        consume the run's random stream exactly as ``[self.delivers(
        sender, r, rng) for r in receivers]`` would — same number of
        draws, same order — so a run is bit-identical whichever form the
        medium uses.  This default implementation delegates per call,
        which keeps third-party models that only override
        :meth:`delivers` correct automatically.
        """
        return [self.delivers(sender, receiver, rng) for receiver in receivers]

    def reset(self) -> None:
        """Clear any per-run state.  Called once per simulation run."""


class IdealNoise(NoiseModel):
    """The paper's ideal communication model: every frame arrives."""

    def delivers(self, sender: NodeId, receiver: NodeId, rng: random.Random) -> bool:
        return True

    def delivers_block(
        self, sender: NodeId, receivers: Sequence[NodeId], rng: random.Random
    ) -> List[bool]:
        # No draws in either form: the per-call path never touches the RNG.
        return [True] * len(receivers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "IdealNoise()"


class BernoulliNoise(NoiseModel):
    """Independent per-frame loss with fixed probability.

    The simplest lossy model; useful for ablations where loss rate is the
    swept variable.
    """

    def __init__(self, loss_probability: float) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1), got {loss_probability}"
            )
        self.loss_probability = loss_probability

    def delivers(self, sender: NodeId, receiver: NodeId, rng: random.Random) -> bool:
        return rng.random() >= self.loss_probability

    def delivers_block(
        self, sender: NodeId, receivers: Sequence[NodeId], rng: random.Random
    ) -> List[bool]:
        # One draw per receiver, in order — exactly the per-call stream.
        loss = self.loss_probability
        rand = rng.random
        return [rand() >= loss for _ in receivers]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BernoulliNoise(loss_probability={self.loss_probability})"


class CasinoLabNoise(NoiseModel):
    """Bursty loss approximating TOSSIM's casino-lab noise trace.

    Each directed link evolves through a two-state Gilbert–Elliott chain:
    a *good* state with light loss and a *bad* state with heavy loss.
    Defaults are calibrated so the long-run loss rate is a few percent —
    enough to perturb attacker hearing and dissemination order between
    runs, as the original trace does, without partitioning the network.

    Parameters
    ----------
    good_loss, bad_loss:
        Per-frame loss probability in each state.
    p_good_to_bad, p_bad_to_good:
        Per-frame state transition probabilities.
    """

    def __init__(
        self,
        good_loss: float = 0.005,
        bad_loss: float = 0.25,
        p_good_to_bad: float = 0.03,
        p_bad_to_good: float = 0.50,
    ) -> None:
        for name, value in (
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
        ):
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {value}")
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
        ):
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1], got {value}")
        self.good_loss = good_loss
        self.bad_loss = bad_loss
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        #: per-directed-link state; True means the link is in the bad state.
        self._bad: Dict[Tuple[NodeId, NodeId], bool] = {}

    def expected_loss_rate(self) -> float:
        """Long-run average loss probability of a link (stationary mix)."""
        stationary_bad = self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
        return stationary_bad * self.bad_loss + (1 - stationary_bad) * self.good_loss

    def delivers(self, sender: NodeId, receiver: NodeId, rng: random.Random) -> bool:
        link = (sender, receiver)
        bad = self._bad.get(link, False)
        # Advance the chain once per frame on this link.
        if bad:
            if rng.random() < self.p_bad_to_good:
                bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                bad = True
        self._bad[link] = bad
        loss = self.bad_loss if bad else self.good_loss
        return rng.random() >= loss

    def delivers_block(
        self, sender: NodeId, receivers: Sequence[NodeId], rng: random.Random
    ) -> List[bool]:
        # Two draws per receiver (chain advance, then loss), in receiver
        # order — the same stream :meth:`delivers` consumes per call.
        rand = rng.random
        bad_map = self._bad
        good_loss = self.good_loss
        bad_loss = self.bad_loss
        p_good_to_bad = self.p_good_to_bad
        p_bad_to_good = self.p_bad_to_good
        out: List[bool] = []
        append = out.append
        for receiver in receivers:
            link = (sender, receiver)
            bad = bad_map.get(link, False)
            if bad:
                if rand() < p_bad_to_good:
                    bad = False
            else:
                if rand() < p_good_to_bad:
                    bad = True
            bad_map[link] = bad
            append(rand() >= (bad_loss if bad else good_loss))
        return out

    def reset(self) -> None:
        self._bad.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CasinoLabNoise(good_loss={self.good_loss}, bad_loss={self.bad_loss}, "
            f"p_good_to_bad={self.p_good_to_bad}, p_bad_to_good={self.p_bad_to_good})"
        )
