"""Events and event handles for the discrete event engine.

An event is a callback bound to a simulated timestamp.  Events at equal
timestamps execute in scheduling order (a monotonically increasing
sequence number breaks ties), which gives deterministic runs for a fixed
seed — essential for reproducible experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .event_queue import EventQueue


class Event:
    """A scheduled callback.  Ordered by ``(time, seq)``.

    A plain ``__slots__`` class rather than a dataclass: millions of
    events are allocated per experiment sweep, and the heap itself
    orders ``(time, seq, event)`` tuples so comparisons never reach
    Python-level ``__lt__`` on the hot path.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "in_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        #: maintained by :class:`EventQueue` for its O(1) live count.
        self.in_queue = False

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.seq) == (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"Event(time={self.time}, seq={self.seq}{flag})"


class EventHandle:
    """A caller-facing handle that allows cancelling a pending event."""

    __slots__ = ("_event", "_queue")

    def __init__(self, event: Event, queue: "EventQueue" = None) -> None:
        self._event = event
        self._queue = queue

    @property
    def time(self) -> float:
        """The simulated time at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if self._queue is not None and event.in_queue:
                self._queue._note_cancelled()
