"""Events and event handles for the discrete event engine.

An event is a callback bound to a simulated timestamp.  Events at equal
timestamps execute in scheduling order (a monotonically increasing
sequence number breaks ties), which gives deterministic runs for a fixed
seed — essential for reproducible experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Tuple


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by ``(time, seq)``."""

    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback(*self.args)


class EventHandle:
    """A caller-facing handle that allows cancelling a pending event."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """The simulated time at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True
