"""The shared wireless medium.

A broadcast by node ``n`` is offered to every 1-hop neighbour of ``n``
(the unit-disk model of §III-A); each directed delivery independently
passes through the run's :class:`~repro.simulator.noise.NoiseModel`.
Eavesdroppers — attacker processes that are not part of the network —
can attach to the medium and overhear any transmission whose sender is
within range of their current location.

An optional collision window models concurrent-transmission loss: when
two frames would arrive at one receiver within ``collision_window``
seconds, both are destroyed.  TDMA operation is collision-free by
construction, so the window mainly matters for the dissemination phase
and is disabled by default (TinyOS disseminations are CSMA-spaced, which
our per-node jitter reproduces).

Hot-path notes.  Broadcast delivery dominates sweep runtime, so the
medium (a) caches the per-sender fan-out list (attached neighbours and
their callbacks, plus the receiver-id tuple fed to the noise
block-draw) and the per-sender audible set instead of rebuilding them
each transmission, (b) schedules *one* event per broadcast that fans
out to every surviving receiver when it fires, rather than one event
per directed delivery, (c) draws all of a broadcast's noise decisions
through :meth:`NoiseModel.delivers_block` in one call, and (d) bypasses
trace-record construction entirely for kinds the recorder does not
retain.  :meth:`RadioMedium.broadcast` is split into
:meth:`RadioMedium.transmit` (send + noise + eavesdropping, returning
the surviving fan-out) and :meth:`RadioMedium.deliver` (explicit-time
fan-out) so the operational fast kernel can run both halves without the
event heap.  None of this changes the event ordering or RNG draw
sequence of a run: deliveries of one broadcast share a timestamp and
fired back-to-back before under the ``(time, seq)`` order anyway, and
noise draws happen at transmission time in neighbour order exactly as
before.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, Dict, FrozenSet, List, Optional, Protocol, Tuple

from ..topology import NodeId, Topology
from . import trace as trace_kinds
from .noise import IdealNoise, NoiseModel
from .trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator

#: One directed delivery of a broadcast: the receiver and its callback.
_Fanout = Tuple[Tuple[NodeId, Callable[[NodeId, Any, float], None]], ...]


class Eavesdropper(Protocol):
    """Anything that can overhear the medium (the attacker)."""

    @property
    def location(self) -> NodeId:
        """The node position the eavesdropper currently occupies."""
        ...

    def overhear(self, sender: NodeId, message: Any, time: float) -> None:
        """Called for every transmission audible at ``location``."""
        ...


class RadioMedium:
    """Broadcast delivery over a :class:`~repro.topology.Topology`.

    Parameters
    ----------
    simulator:
        The owning engine (provides the clock, RNG and event queue).
    topology:
        Connectivity; receivers of a broadcast are the sender's 1-hop
        neighbours.
    noise:
        Per-directed-delivery loss model.  Defaults to the ideal model.
    propagation_delay:
        Fixed sender→receiver latency in seconds.  Radio propagation at
        4.5 m is sub-microsecond; the default stands in for transmit and
        processing time and merely keeps deliveries strictly after sends.
    collision_window:
        When positive, two frames arriving at the same receiver within
        this many seconds destroy each other.
    """

    def __init__(
        self,
        simulator: "Simulator",
        topology: Topology,
        noise: Optional[NoiseModel] = None,
        propagation_delay: float = 1e-4,
        collision_window: float = 0.0,
    ) -> None:
        self._sim = simulator
        self._topology = topology
        self._noise = noise if noise is not None else IdealNoise()
        self._propagation_delay = propagation_delay
        self._collision_window = collision_window
        self._receivers: Dict[NodeId, Callable[[NodeId, Any, float], None]] = {}
        self._eavesdroppers: List[Eavesdropper] = []
        #: bumped on every attach/detach; fan-out consumers (the
        #: operational fast lane) rebuild their tables when it moves.
        self._epoch = 0
        #: receiver → time of last arrival, for the collision window.
        self._last_arrival: Dict[NodeId, float] = {}
        #: sender → (fan-out list, receiver-id tuple); invalidated on
        #: attach/detach.  The id tuple feeds the noise block-draw.
        self._fanout_cache: Dict[NodeId, Tuple[_Fanout, Tuple[NodeId, ...]]] = {}
        #: sender → {sender} ∪ neighbours; topology is immutable, so
        #: entries never need invalidating.
        self._audible_cache: Dict[NodeId, FrozenSet[NodeId]] = {}
        trace = simulator.trace
        self._keep_send = trace.wants(trace_kinds.SEND)
        self._keep_deliver = trace.wants(trace_kinds.DELIVER)
        self._keep_drop = trace.wants(trace_kinds.DROP)
        self._keep_collide = trace.wants(trace_kinds.COLLIDE)
        self._keep_hear = trace.wants(trace_kinds.ATTACKER_HEAR)

    @property
    def topology(self) -> Topology:
        """The connectivity graph deliveries follow."""
        return self._topology

    @property
    def noise(self) -> NoiseModel:
        """The active noise model."""
        return self._noise

    @property
    def propagation_delay(self) -> float:
        """Fixed sender→receiver latency applied to every delivery."""
        return self._propagation_delay

    @property
    def collision_window(self) -> float:
        """The concurrent-arrival destruction window (0 = disabled)."""
        return self._collision_window

    @property
    def epoch(self) -> int:
        """Attachment-state version: changes whenever a node attaches to
        or detaches from the medium.  Consumers holding compiled fan-out
        tables (the operational fast lane) compare epochs to know when
        to rebuild."""
        return self._epoch

    @property
    def eavesdroppers(self) -> Tuple[Eavesdropper, ...]:
        """The currently attached eavesdroppers."""
        return tuple(self._eavesdroppers)

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(
        self, node: NodeId, on_deliver: Callable[[NodeId, Any, float], None]
    ) -> None:
        """Register the delivery callback for ``node``'s channel."""
        self._receivers[node] = on_deliver
        self._fanout_cache.clear()
        self._epoch += 1

    def detach(self, node: NodeId) -> None:
        """Remove ``node`` from the medium (e.g. node failure injection)."""
        self._receivers.pop(node, None)
        self._fanout_cache.clear()
        self._epoch += 1

    def attach_eavesdropper(self, eavesdropper: Eavesdropper) -> None:
        """Let ``eavesdropper`` overhear transmissions near its location."""
        self._eavesdroppers.append(eavesdropper)

    def detach_eavesdropper(self, eavesdropper: Eavesdropper) -> None:
        """Stop delivering overheard frames to ``eavesdropper``."""
        self._eavesdroppers = [e for e in self._eavesdroppers if e is not eavesdropper]

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _fanout_of(self, sender: NodeId) -> Tuple[_Fanout, Tuple[NodeId, ...]]:
        cached = self._fanout_cache.get(sender)
        if cached is None:
            receivers = self._receivers
            fanout = tuple(
                (neighbour, receivers[neighbour])
                for neighbour in self._topology.neighbours(sender)
                if neighbour in receivers
            )
            cached = (fanout, tuple(pair[0] for pair in fanout))
            self._fanout_cache[sender] = cached
        return cached

    def _audible_of(self, sender: NodeId) -> FrozenSet[NodeId]:
        audible = self._audible_cache.get(sender)
        if audible is None:
            audible = frozenset(self._topology.neighbours(sender)) | {sender}
            self._audible_cache[sender] = audible
        return audible

    def fanout(self, sender: NodeId) -> Tuple[_Fanout, Tuple[NodeId, ...]]:
        """The current ``(fan-out, receiver ids)`` of ``sender``.

        The fan-out pairs each attached neighbour with its delivery
        callback; the id tuple is exactly what :meth:`transmit` feeds
        :meth:`NoiseModel.delivers_block`.  Valid until :attr:`epoch`
        moves (a node attached or detached)."""
        return self._fanout_of(sender)

    def audible_set(self, sender: NodeId) -> FrozenSet[NodeId]:
        """``{sender} ∪ neighbours(sender)``: where ``sender`` is audible.
        Topology-derived and immutable for the run."""
        return self._audible_of(sender)

    def broadcast(self, sender: NodeId, message: Any) -> None:
        """Transmit ``message`` from ``sender`` to all nodes in range.

        Every attached neighbour receives an independent delivery (after
        noise); every eavesdropper whose location is the sender or one of
        its neighbours overhears the frame at transmission time.
        """
        sim = self._sim
        surviving = self.transmit(sender, message, sim.now)
        if surviving:
            sim.schedule_after(
                self._propagation_delay,
                self._deliver_batch,
                (sender, message, surviving),
            )

    def transmit(self, sender: NodeId, message: Any, now: float) -> _Fanout:
        """The transmission half of :meth:`broadcast`: draw noise for the
        fan-out, let eavesdroppers overhear, and return the surviving
        deliveries *without scheduling them*.

        The operational fast kernel uses this to batch a whole TDMA
        slot's deliveries itself; :meth:`broadcast` immediately schedules
        the returned fan-out at ``propagation_delay``.  RNG draw order is
        the historical one: one block of noise decisions in neighbour
        order, then one audibility decision per eavesdropper in range.
        """
        rng = self._sim.rng
        trace = self._sim.trace
        noise = self._noise
        if self._keep_send:
            trace.record(now, trace_kinds.SEND, sender=sender, message=message)
        else:
            trace.bump(trace_kinds.SEND)

        fanout, receiver_ids = self._fanout_of(sender)
        surviving: _Fanout
        if not fanout:
            surviving = ()
        else:
            flags = noise.delivers_block(sender, receiver_ids, rng)
            if all(flags):
                surviving = fanout
            else:
                kept: List[Tuple[NodeId, Callable[[NodeId, Any, float], None]]] = []
                keep_drop = self._keep_drop
                for pair, delivered in zip(fanout, flags):
                    if delivered:
                        kept.append(pair)
                    elif keep_drop:
                        trace.record(
                            now, trace_kinds.DROP, sender=sender, receiver=pair[0]
                        )
                    else:
                        trace.bump(trace_kinds.DROP)
                surviving = tuple(kept)

        if self._eavesdroppers:
            audible = self._audible_of(sender)
            for eavesdropper in list(self._eavesdroppers):
                if eavesdropper.location in audible:
                    if noise.delivers(sender, -1, rng):
                        if self._keep_hear:
                            trace.record(
                                now,
                                trace_kinds.ATTACKER_HEAR,
                                sender=sender,
                                location=eavesdropper.location,
                            )
                        else:
                            trace.bump(trace_kinds.ATTACKER_HEAR)
                        eavesdropper.overhear(sender, message, now)
        return surviving

    def _deliver_batch(
        self,
        sender: NodeId,
        message: Any,
        deliveries: _Fanout,
    ) -> None:
        self.deliver(sender, message, deliveries, self._sim.now)

    def deliver(
        self,
        sender: NodeId,
        message: Any,
        deliveries: _Fanout,
        now: float,
    ) -> None:
        """Fan one broadcast out to all its surviving receivers.

        Receivers fire in neighbour order — identical to the order the
        per-receiver events of one broadcast popped in before batching,
        since they shared a timestamp and consecutive sequence numbers.
        """
        trace = self._sim.trace
        window = self._collision_window
        keep_deliver = self._keep_deliver
        if window > 0.0:
            last_arrival = self._last_arrival
            for receiver, callback in deliveries:
                last = last_arrival.get(receiver)
                last_arrival[receiver] = now
                if last is not None and now - last < window:
                    if self._keep_collide:
                        trace.record(
                            now, trace_kinds.COLLIDE, sender=sender, receiver=receiver
                        )
                    else:
                        trace.bump(trace_kinds.COLLIDE)
                    continue
                if keep_deliver:
                    trace.record(
                        now, trace_kinds.DELIVER, sender=sender, receiver=receiver
                    )
                else:
                    trace.bump(trace_kinds.DELIVER)
                callback(sender, message, now)
            return
        for receiver, callback in deliveries:
            if keep_deliver:
                trace.record(
                    now, trace_kinds.DELIVER, sender=sender, receiver=receiver
                )
            else:
                trace.bump(trace_kinds.DELIVER)
            callback(sender, message, now)

    def reset(self) -> None:
        """Clear per-run medium state (noise chains, collision clocks)."""
        self._noise.reset()
        self._last_arrival.clear()
