"""The shared wireless medium.

A broadcast by node ``n`` is offered to every 1-hop neighbour of ``n``
(the unit-disk model of §III-A); each directed delivery independently
passes through the run's :class:`~repro.simulator.noise.NoiseModel`.
Eavesdroppers — attacker processes that are not part of the network —
can attach to the medium and overhear any transmission whose sender is
within range of their current location.

An optional collision window models concurrent-transmission loss: when
two frames would arrive at one receiver within ``collision_window``
seconds, both are destroyed.  TDMA operation is collision-free by
construction, so the window mainly matters for the dissemination phase
and is disabled by default (TinyOS disseminations are CSMA-spaced, which
our per-node jitter reproduces).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Protocol, Tuple

from ..topology import NodeId, Topology
from . import trace as trace_kinds
from .noise import IdealNoise, NoiseModel
from .trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator


class Eavesdropper(Protocol):
    """Anything that can overhear the medium (the attacker)."""

    @property
    def location(self) -> NodeId:
        """The node position the eavesdropper currently occupies."""
        ...

    def overhear(self, sender: NodeId, message: Any, time: float) -> None:
        """Called for every transmission audible at ``location``."""
        ...


class RadioMedium:
    """Broadcast delivery over a :class:`~repro.topology.Topology`.

    Parameters
    ----------
    simulator:
        The owning engine (provides the clock, RNG and event queue).
    topology:
        Connectivity; receivers of a broadcast are the sender's 1-hop
        neighbours.
    noise:
        Per-directed-delivery loss model.  Defaults to the ideal model.
    propagation_delay:
        Fixed sender→receiver latency in seconds.  Radio propagation at
        4.5 m is sub-microsecond; the default stands in for transmit and
        processing time and merely keeps deliveries strictly after sends.
    collision_window:
        When positive, two frames arriving at the same receiver within
        this many seconds destroy each other.
    """

    def __init__(
        self,
        simulator: "Simulator",
        topology: Topology,
        noise: Optional[NoiseModel] = None,
        propagation_delay: float = 1e-4,
        collision_window: float = 0.0,
    ) -> None:
        self._sim = simulator
        self._topology = topology
        self._noise = noise if noise is not None else IdealNoise()
        self._propagation_delay = propagation_delay
        self._collision_window = collision_window
        self._receivers: Dict[NodeId, Callable[[NodeId, Any, float], None]] = {}
        self._eavesdroppers: List[Eavesdropper] = []
        #: receiver → time of last arrival, for the collision window.
        self._last_arrival: Dict[NodeId, float] = {}

    @property
    def topology(self) -> Topology:
        """The connectivity graph deliveries follow."""
        return self._topology

    @property
    def noise(self) -> NoiseModel:
        """The active noise model."""
        return self._noise

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(
        self, node: NodeId, on_deliver: Callable[[NodeId, Any, float], None]
    ) -> None:
        """Register the delivery callback for ``node``'s channel."""
        self._receivers[node] = on_deliver

    def detach(self, node: NodeId) -> None:
        """Remove ``node`` from the medium (e.g. node failure injection)."""
        self._receivers.pop(node, None)

    def attach_eavesdropper(self, eavesdropper: Eavesdropper) -> None:
        """Let ``eavesdropper`` overhear transmissions near its location."""
        self._eavesdroppers.append(eavesdropper)

    def detach_eavesdropper(self, eavesdropper: Eavesdropper) -> None:
        """Stop delivering overheard frames to ``eavesdropper``."""
        self._eavesdroppers = [e for e in self._eavesdroppers if e is not eavesdropper]

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def broadcast(self, sender: NodeId, message: Any) -> None:
        """Transmit ``message`` from ``sender`` to all nodes in range.

        Every attached neighbour receives an independent delivery event
        (after noise); every eavesdropper whose location is the sender or
        one of its neighbours overhears the frame at transmission time.
        """
        now = self._sim.now
        rng = self._sim.rng
        self._sim.trace.record(now, trace_kinds.SEND, sender=sender, message=message)

        for receiver in self._topology.neighbours(sender):
            callback = self._receivers.get(receiver)
            if callback is None:
                continue
            if not self._noise.delivers(sender, receiver, rng):
                self._sim.trace.record(
                    now, trace_kinds.DROP, sender=sender, receiver=receiver
                )
                continue
            self._sim.schedule_after(
                self._propagation_delay,
                self._deliver,
                (sender, receiver, message, callback),
            )

        audible = set(self._topology.neighbours(sender))
        audible.add(sender)
        for eavesdropper in list(self._eavesdroppers):
            if eavesdropper.location in audible:
                if self._noise.delivers(sender, -1, rng):
                    self._sim.trace.record(
                        now,
                        trace_kinds.ATTACKER_HEAR,
                        sender=sender,
                        location=eavesdropper.location,
                    )
                    eavesdropper.overhear(sender, message, now)

    def _deliver(
        self,
        sender: NodeId,
        receiver: NodeId,
        message: Any,
        callback: Callable[[NodeId, Any, float], None],
    ) -> None:
        now = self._sim.now
        if self._collision_window > 0.0:
            last = self._last_arrival.get(receiver)
            self._last_arrival[receiver] = now
            if last is not None and now - last < self._collision_window:
                self._sim.trace.record(
                    now, trace_kinds.COLLIDE, sender=sender, receiver=receiver
                )
                return
        self._sim.trace.record(
            now, trace_kinds.DELIVER, sender=sender, receiver=receiver
        )
        callback(sender, message, now)

    def reset(self) -> None:
        """Clear per-run medium state (noise chains, collision clocks)."""
        self._noise.reset()
        self._last_arrival.clear()
