"""Discrete event simulation substrate (the TOSSIM replacement).

Provides the event engine, per-node protocol processes with FIFO
channels and timers (matching the paper's guarded-command model), the
shared radio medium with pluggable noise models, and structured run
tracing from which all metrics are computed.
"""

from .channel import Channel, Delivery
from .event import Event, EventHandle
from .event_queue import EventQueue
from .noise import BernoulliNoise, CasinoLabNoise, IdealNoise, NoiseModel
from .process import Process
from .radio import Eavesdropper, RadioMedium
from .simulator import Simulator
from .trace import (
    ATTACKER_HEAR,
    ATTACKER_MOVE,
    CAPTURE,
    COLLIDE,
    COUNTS_ONLY,
    DELIVER,
    DROP,
    PERIOD_START,
    PHASE,
    SEND,
    SLOT_ASSIGNED,
    SLOT_CHANGED,
    TraceRecord,
    TraceRecorder,
)

__all__ = [
    "ATTACKER_HEAR",
    "ATTACKER_MOVE",
    "BernoulliNoise",
    "CAPTURE",
    "COLLIDE",
    "COUNTS_ONLY",
    "CasinoLabNoise",
    "Channel",
    "DELIVER",
    "DROP",
    "Delivery",
    "Eavesdropper",
    "Event",
    "EventHandle",
    "EventQueue",
    "IdealNoise",
    "NoiseModel",
    "PERIOD_START",
    "PHASE",
    "Process",
    "RadioMedium",
    "SEND",
    "SLOT_ASSIGNED",
    "SLOT_CHANGED",
    "Simulator",
    "TraceRecord",
    "TraceRecorder",
]
