"""Protocol process base class.

The paper writes protocols in guarded command notation: actions fire on
timeouts (``timeout(timer)``) or message arrival (``rcv``).  A
:class:`Process` offers the same two triggers in event-driven form:

* :meth:`set_timer` / :meth:`cancel_timer` — named timers whose expiry
  invokes :meth:`on_timer`;
* the radio enqueues arrivals into the process's FIFO :class:`Channel`
  and then invokes :meth:`on_receive` per dequeued message.

Subclasses implement the protocol logic; they never touch the event
queue directly, which keeps them portable across engines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from ..errors import SimulationError
from ..topology import NodeId
from .channel import Channel, Delivery
from .event import EventHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .simulator import Simulator


class Process:
    """A node-resident protocol process with timers and a FIFO channel.

    ``__slots__`` keeps per-node overhead small on large grids;
    subclasses may declare their own slots or fall back to a ``__dict__``
    for protocol state.
    """

    __slots__ = ("_node", "_sim", "_channel", "_timers", "_draining")

    def __init__(self, node: NodeId) -> None:
        self._node = node
        self._sim: Optional["Simulator"] = None
        self._channel = Channel(node)
        self._timers: Dict[str, EventHandle] = {}
        self._draining = False

    # ------------------------------------------------------------------
    # Identity and wiring
    # ------------------------------------------------------------------
    @property
    def node(self) -> NodeId:
        """The node this process runs on."""
        return self._node

    @property
    def channel(self) -> Channel:
        """The FIFO queue of incoming messages (the paper's ``ch``)."""
        return self._channel

    @property
    def sim(self) -> "Simulator":
        """The engine this process is registered with."""
        if self._sim is None:
            raise SimulationError(
                f"process at node {self._node} is not registered with a simulator"
            )
        return self._sim

    def bind(self, simulator: "Simulator") -> None:
        """Attach the process to an engine.  Called by ``register_process``."""
        if self._sim is not None:
            raise SimulationError(
                f"process at node {self._node} is already registered"
            )
        self._sim = simulator

    # ------------------------------------------------------------------
    # Lifecycle hooks (subclass API)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Called once when the simulation starts.  Override as needed."""

    def on_receive(self, sender: NodeId, message: Any, time: float) -> None:
        """Called per message dequeued from the channel.  Override."""

    def on_timer(self, name: str, time: float) -> None:
        """Called when the named timer expires.  Override."""

    # ------------------------------------------------------------------
    # Actions available to subclasses
    # ------------------------------------------------------------------
    def broadcast(self, message: Any) -> None:
        """Transmit ``message`` on the shared medium (the ``BCAST`` action)."""
        self.sim.radio.broadcast(self._node, message)

    def set_timer(self, name: str, delay: float) -> None:
        """(Re)arm a named timer ``delay`` seconds from now.

        Mirrors the paper's ``set(timer, value)``: re-arming an already
        pending timer replaces it.
        """
        if delay < 0:
            raise SimulationError(f"timer {name!r} delay must be non-negative")
        self.cancel_timer(name)
        self._timers[name] = self.sim.schedule_after(
            delay, self._fire_timer, (name,)
        )

    def cancel_timer(self, name: str) -> None:
        """Cancel a pending timer.  No-op when the timer is not armed."""
        handle = self._timers.pop(name, None)
        if handle is not None:
            handle.cancel()

    def timer_pending(self, name: str) -> bool:
        """Whether the named timer is armed and not yet fired."""
        handle = self._timers.get(name)
        return handle is not None and not handle.cancelled

    # ------------------------------------------------------------------
    # Engine-facing plumbing
    # ------------------------------------------------------------------
    def _fire_timer(self, name: str) -> None:
        self._timers.pop(name, None)
        self.on_timer(name, self.sim.now)

    def deliver(self, sender: NodeId, message: Any, time: float) -> None:
        """Radio delivery entry point: enqueue then drain the channel.

        Arrivals pass through the FIFO channel so that ``on_receive``
        observes them strictly in arrival order even if a handler
        triggers further deliveries at the same timestamp.  The common
        case — no re-entrant delivery — skips the queue round-trip: the
        message is handed to ``on_receive`` directly, and only arrivals
        landing *while a handler runs* are enqueued (the outer drain
        loop picks them up in order, preserving the FIFO contract).
        """
        if self._draining:
            self._channel.enqueue(Delivery(sender=sender, message=message, time=time))
            return
        self._draining = True
        try:
            self.on_receive(sender, message, time)
            channel = self._channel
            while channel:
                delivery = channel.dequeue()
                self.on_receive(delivery.sender, delivery.message, delivery.time)
        finally:
            self._draining = False
