"""The discrete event simulation engine.

This is the substrate substituting for TOSSIM: a single-threaded future
event list executor with a shared radio medium, per-node processes,
seeded randomness and structured tracing.  Determinism contract: two
runs with equal topology, processes, noise model and seed execute the
same event sequence.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import SimulationError
from ..topology import NodeId, Topology
from .event import EventHandle
from .event_queue import EventQueue
from .noise import NoiseModel
from .process import Process
from .radio import RadioMedium
from .trace import TraceRecorder


class Simulator:
    """A discrete event simulator over one WSN topology.

    Parameters
    ----------
    topology:
        The network the radio medium delivers over.
    noise:
        Link noise model; defaults to the paper's ideal model.
    seed:
        Seed of the run's single RNG.  All stochastic choices (noise,
        protocol jitter, attacker tie-breaks) draw from this generator.
    trace_kinds:
        Optional filter restricting which trace kinds are retained in
        full (counts are always kept); ``None`` keeps everything.
    collision_window:
        Forwarded to :class:`RadioMedium`.
    """

    __slots__ = (
        "_topology",
        "_queue",
        "_now",
        "_rng",
        "_trace",
        "_radio",
        "_processes",
        "_started",
        "_events_executed",
        "_stop_requested",
    )

    def __init__(
        self,
        topology: Topology,
        noise: Optional[NoiseModel] = None,
        seed: Optional[int] = None,
        trace_kinds: Optional[frozenset] = None,
        collision_window: float = 0.0,
    ) -> None:
        self._topology = topology
        self._queue = EventQueue()
        self._now = 0.0
        self._rng = random.Random(seed)
        self._trace = TraceRecorder(kinds=trace_kinds)
        self._radio = RadioMedium(
            self,
            topology,
            noise=noise,
            collision_window=collision_window,
        )
        self._processes: Dict[NodeId, Process] = {}
        self._started = False
        self._events_executed = 0
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The simulated network."""
        return self._topology

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def rng(self) -> random.Random:
        """The run's seeded random generator."""
        return self._rng

    @property
    def trace(self) -> TraceRecorder:
        """The structured run log."""
        return self._trace

    @property
    def radio(self) -> RadioMedium:
        """The shared wireless medium."""
        return self._radio

    @property
    def events_executed(self) -> int:
        """Number of events fired so far."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def process_at(self, node: NodeId) -> Process:
        """The process registered at ``node``."""
        try:
            return self._processes[node]
        except KeyError as exc:
            raise SimulationError(f"no process registered at node {node}") from exc

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def register_process(self, process: Process) -> None:
        """Attach a protocol process to its node and the radio."""
        node = process.node
        if node not in self._topology:
            raise SimulationError(
                f"cannot register a process at unknown node {node}"
            )
        if node in self._processes:
            raise SimulationError(f"a process is already registered at node {node}")
        process.bind(self)
        self._processes[node] = process
        self._radio.attach(node, process.deliver)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time}; simulated time is {self._now}"
            )
        return self._queue.push(time, callback, args)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay}")
        return self._queue.push(self._now + delay, callback, args)

    def request_stop(self) -> None:
        """Ask the run loop to stop after the current event completes.

        Used by terminal conditions such as source capture: the attacker
        harness calls this instead of draining the queue itself.
        """
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _start_processes(self) -> None:
        if self._started:
            return
        self._started = True
        self._radio.reset()
        for node in sorted(self._processes):
            self._processes[node].start()

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when none remain."""
        self._start_processes()
        if self._queue.empty:
            return False
        event = self._queue.pop()
        self._now = event.time
        event.fire()
        self._events_executed += 1
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` have executed (whichever comes first).

        ``until`` is inclusive: events scheduled exactly at ``until``
        still fire; on exit the clock is advanced to ``until`` if the
        run exhausted earlier events.
        """
        self._start_processes()
        self._stop_requested = False
        executed = 0
        queue = self._queue
        peek_time = queue.peek_time
        pop = queue.pop
        while not self._stop_requested:
            next_time = peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            if max_events is not None and executed >= max_events:
                break
            event = pop()
            self._now = event.time
            event.fire()
            self._events_executed += 1
            executed += 1
        if until is not None and self._now < until and not self._stop_requested:
            self._now = until
