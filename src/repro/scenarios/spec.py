"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a frozen, self-contained description of one
evaluation workload: a topology family and size, where the asset lives
(one source, several simultaneous sources, or a mobile source rotating
through a pool), the attacker from the ``(R, H, M, s0, D)`` spectrum,
the noise regime, and any mid-run perturbations.  Specs carry no
topology objects — source placements are symbolic (``"top-left"``,
``"centre"``, or a concrete node id) and resolved when the spec is
*lowered* onto the experiment engine — so a spec is cheap to build,
hashable, picklable and printable.

Lowering is two calls: :meth:`ScenarioSpec.build_topology` constructs
the network (designating the primary source so SLP schedule building
protects it), and :meth:`ScenarioSpec.to_config` produces the
:class:`~repro.experiments.ExperimentConfig` the serial and parallel
runners already know how to sweep.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..attacker import (
    AttackerSpec,
    AvoidRecentlyVisited,
    FollowAnyHeard,
    FollowFirstHeard,
    paper_attacker,
)
from ..errors import ConfigurationError, invalid_field
from ..experiments import ALGORITHMS, PROTECTIONLESS, ExperimentConfig
from ..app import DutyCycle, NodeDeath, NodeSleep, Perturbation, SourcePlan
from ..topology import GridTopology, LineTopology, NodeId, RingTopology, Topology

#: Topology families a scenario may request.
TOPOLOGY_FAMILIES = ("grid", "line", "ring")

#: Noise regimes a scenario may request (the ExperimentConfig spellings).
NOISE_REGIMES = ("casino", "ideal")

#: A source placement: a concrete node id or a symbolic position.
Placement = Union[int, str]


@dataclass(frozen=True)
class TopologySpec:
    """A topology family plus size, buildable without further input.

    Attributes
    ----------
    family:
        ``"grid"`` (the paper's layout: sink at the centre),
        ``"line"`` (sink at the far end) or ``"ring"`` (sink at node 0).
    size:
        Side length for grids, node count for lines and rings.
    """

    family: str = "grid"
    size: int = 11

    def __post_init__(self) -> None:
        if self.family not in TOPOLOGY_FAMILIES:
            raise invalid_field(
                "TopologySpec",
                "family",
                self.family,
                f"pick one of {TOPOLOGY_FAMILIES}",
            )
        minimum = 2 if self.family == "grid" else 3
        if self.size < minimum:
            raise invalid_field(
                "TopologySpec",
                "size",
                self.size,
                f"a {self.family} topology needs size >= {minimum}",
            )

    @property
    def num_nodes(self) -> int:
        """Node count of the topology this spec builds."""
        return self.size * self.size if self.family == "grid" else self.size

    @property
    def sink_node(self) -> NodeId:
        """The sink the built topology will designate.

        Mirrors each family's placement rule (grid: centre; line: far
        end; ring: node 0) so specs can be validated against the sink
        without building the topology.
        """
        if self.family == "grid":
            return (self.size // 2) * self.size + (self.size // 2)
        if self.family == "line":
            return self.size - 1
        return 0

    def build(self, source: Optional[NodeId] = None) -> Topology:
        """Construct the topology, optionally designating ``source``."""
        if self.family == "grid":
            return GridTopology(self.size, source=source)
        if self.family == "line":
            built: Topology = LineTopology(self.size)
        else:
            built = RingTopology(self.size)
        if source is not None and source != built.source:
            built = built.with_source(source)
        return built

    def resolve_placement(self, placement: Placement) -> NodeId:
        """Turn a symbolic or numeric placement into a node id.

        Numeric placements are validated against the node count.
        Symbolic placements: every family understands ``"centre"``;
        grids additionally understand the four corners
        (``"top-left"``, ``"top-right"``, ``"bottom-left"``,
        ``"bottom-right"``).
        """
        if isinstance(placement, int):
            if not 0 <= placement < self.num_nodes:
                raise invalid_field(
                    "ScenarioSpec",
                    "sources",
                    placement,
                    f"node id out of range for a {self.family} of "
                    f"{self.num_nodes} nodes",
                )
            return placement
        if self.family == "grid":
            n = self.size
            symbols = {
                "top-left": 0,
                "top-right": n - 1,
                "bottom-left": n * (n - 1),
                "bottom-right": n * n - 1,
                "centre": (n // 2) * n + (n // 2),
            }
        else:
            symbols = {"centre": self.num_nodes // 2}
        try:
            return symbols[placement]
        except KeyError:
            raise invalid_field(
                "ScenarioSpec",
                "sources",
                placement,
                f"unknown placement for family {self.family!r}; "
                f"pick one of {tuple(sorted(symbols))} or a node id",
            ) from None


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative evaluation workload.

    Attributes
    ----------
    name:
        Registry key, kebab-case by convention.
    topology:
        The network family and size.
    description:
        One human-readable line for ``repro scenario list``.
    algorithm:
        ``"protectionless"`` or ``"slp"`` — which schedule defends.
    search_distance:
        ``SD`` for the SLP algorithm (ignored for protectionless).
    attacker:
        The ``(R, H, M, s0, D)`` parameters; ``None`` = the paper's.
    noise:
        ``"casino"`` (the paper's noise) or ``"ideal"``.
    sources:
        Source placements (symbolic or node ids).  One placement is
        the paper's workload; several are simultaneous sources unless
        ``source_rotation_period`` makes the pool a mobile source.
        The first placement is the *primary* source the SLP refinement
        protects.
    source_rotation_period:
        ``None`` = all sources broadcast-relevant simultaneously; a
        positive value rotates the asset through ``sources`` every
        that many periods (a mobile source).
    perturbations:
        Node deaths, sleeps and duty cycles applied each run.
    repeats:
        Default sweep width (CLI ``--seeds`` overrides).
    base_seed:
        Seed of the first run; run ``i`` uses ``base_seed + i``.
    max_periods:
        Optional per-run period budget override (``None`` = Eq. 1).
    """

    name: str
    topology: TopologySpec = field(default_factory=TopologySpec)
    description: str = ""
    algorithm: str = PROTECTIONLESS
    search_distance: int = 3
    attacker: Optional[AttackerSpec] = None
    noise: str = "casino"
    sources: Tuple[Placement, ...] = ("top-left",)
    source_rotation_period: Optional[int] = None
    perturbations: Tuple[Perturbation, ...] = ()
    repeats: int = 30
    base_seed: int = 0
    max_periods: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise invalid_field(
                "ScenarioSpec", "name", self.name, "a scenario needs a name"
            )
        if self.algorithm not in ALGORITHMS:
            raise invalid_field(
                "ScenarioSpec",
                "algorithm",
                self.algorithm,
                f"unknown algorithm; pick one of {ALGORITHMS}",
            )
        if self.noise not in NOISE_REGIMES:
            raise invalid_field(
                "ScenarioSpec",
                "noise",
                self.noise,
                f"unknown noise regime; pick one of {NOISE_REGIMES}",
            )
        object.__setattr__(self, "sources", tuple(self.sources))
        object.__setattr__(self, "perturbations", tuple(self.perturbations))
        if not self.sources:
            raise invalid_field(
                "ScenarioSpec", "sources", self.sources, "needs at least one source"
            )
        if self.repeats < 1:
            raise invalid_field(
                "ScenarioSpec", "repeats", self.repeats, "needs at least one repeat"
            )
        if self.source_rotation_period is not None:
            if self.source_rotation_period < 1:
                raise invalid_field(
                    "ScenarioSpec",
                    "source_rotation_period",
                    self.source_rotation_period,
                    "must be at least one period",
                )
            if len(self.sources) < 2:
                raise invalid_field(
                    "ScenarioSpec",
                    "sources",
                    self.sources,
                    "a mobile source needs at least two placements to rotate",
                )
        if self.max_periods is not None and self.max_periods < 1:
            raise invalid_field(
                "ScenarioSpec",
                "max_periods",
                self.max_periods,
                "a run must cover at least one period",
            )
        # Resolve placements eagerly so a malformed spec fails at
        # construction, not mid-sweep — and so duplicates are caught
        # even when spelled differently ("top-left" vs 0).
        resolved = self.resolved_sources()
        if len(set(resolved)) != len(resolved):
            raise invalid_field(
                "ScenarioSpec",
                "sources",
                self.sources,
                f"placements resolve to duplicate nodes {resolved}",
            )
        sink = self.topology.sink_node
        if sink in resolved:
            raise invalid_field(
                "ScenarioSpec",
                "sources",
                self.sources,
                f"placement resolves to node {sink}, the {self.topology.family}'s "
                "sink — the sink cannot hold the asset",
            )
        protected = set(resolved) | {sink}
        for perturbation in self.perturbations:
            for node in perturbation.nodes:
                if not 0 <= node < self.topology.num_nodes:
                    raise invalid_field(
                        "ScenarioSpec",
                        "perturbations",
                        node,
                        f"node id out of range for a {self.topology.family} of "
                        f"{self.topology.num_nodes} nodes",
                    )
                if node in protected:
                    role = "sink" if node == sink else "source"
                    raise invalid_field(
                        "ScenarioSpec",
                        "perturbations",
                        node,
                        f"cannot perturb the {role} (it anchors the privacy game)",
                    )

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def resolved_sources(self) -> Tuple[NodeId, ...]:
        """The source placements as concrete node ids, in pool order."""
        return tuple(self.topology.resolve_placement(p) for p in self.sources)

    def source_plan(self) -> SourcePlan:
        """The runtime :class:`~repro.app.SourcePlan` this spec denotes."""
        return SourcePlan(
            nodes=self.resolved_sources(),
            rotation_period=self.source_rotation_period,
        )

    def build_topology(self) -> Topology:
        """Construct the network with the primary source designated."""
        return self.topology.build(source=self.resolved_sources()[0])

    def to_config(
        self,
        repeats: Optional[int] = None,
        base_seed: Optional[int] = None,
    ) -> ExperimentConfig:
        """Lower onto the experiment engine's configuration object.

        The returned config carries the source plan and perturbations,
        so both :class:`~repro.experiments.ExperimentRunner` and
        :class:`~repro.experiments.ParallelExperimentRunner` sweep the
        scenario without scenario-specific code paths — which is what
        keeps serial and parallel scenario sweeps bit-identical.
        """
        return ExperimentConfig(
            algorithm=self.algorithm,
            search_distance=self.search_distance,
            repeats=self.repeats if repeats is None else repeats,
            base_seed=self.base_seed if base_seed is None else base_seed,
            noise=self.noise,
            attacker=self.attacker,
            source_plan=self.source_plan(),
            perturbations=self.perturbations,
            max_periods=self.max_periods,
        )

    def with_overrides(self, **changes: object) -> "ScenarioSpec":
        """A copy of this spec with ``dataclasses.replace`` semantics."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def workload_kind(self) -> str:
        """A short label for listings: how the asset behaves."""
        if self.source_rotation_period is not None:
            return f"mobile({len(self.sources)} stops/{self.source_rotation_period}p)"
        if len(self.sources) > 1:
            return f"multi({len(self.sources)} sources)"
        return "static"

    def summary(self) -> str:
        """One listing row: workload, attacker, defence, dynamics."""
        attacker = (self.attacker or paper_attacker()).describe()
        parts = [
            f"{self.topology.family}-{self.topology.size}",
            self.algorithm,
            self.workload_kind(),
            attacker,
            f"noise={self.noise}",
        ]
        if self.perturbations:
            kinds = ",".join(
                sorted({type(p).__name__ for p in self.perturbations})
            )
            parts.append(f"perturb={kinds}")
        return " ".join(parts)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The spec as JSON-ready primitives (:meth:`from_dict` inverts
        it exactly — round-tripped specs compare equal)."""
        return {
            "name": self.name,
            "description": self.description,
            "topology": {
                "family": self.topology.family,
                "size": self.topology.size,
            },
            "algorithm": self.algorithm,
            "search_distance": self.search_distance,
            "attacker": (
                _attacker_to_dict(self.attacker)
                if self.attacker is not None
                else None
            ),
            "noise": self.noise,
            "sources": list(self.sources),
            "source_rotation_period": self.source_rotation_period,
            "perturbations": [
                _perturbation_to_dict(p) for p in self.perturbations
            ],
            "repeats": self.repeats,
            "base_seed": self.base_seed,
            "max_periods": self.max_periods,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Every validation failure — unknown fields, bad placements, an
        unrecognised decision function — surfaces as the library's
        uniform :class:`~repro.errors.ConfigurationError`, so callers
        (the CLI, the experiment service's submit endpoint) can turn a
        malformed payload into a clean diagnostic instead of a crash.
        """
        if not isinstance(data, dict):
            raise invalid_field(
                "ScenarioSpec", "json", type(data).__name__,
                "a scenario document must be a JSON object",
            )
        known = {
            "name", "description", "topology", "algorithm",
            "search_distance", "attacker", "noise", "sources",
            "source_rotation_period", "perturbations", "repeats",
            "base_seed", "max_periods",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise invalid_field(
                "ScenarioSpec", "json", unknown,
                f"unknown field(s); known fields: {sorted(known)}",
            )
        topology = data.get("topology", {})
        if not isinstance(topology, dict):
            raise invalid_field(
                "ScenarioSpec", "topology", topology,
                "expected an object with family/size",
            )
        try:
            return cls(
                name=data.get("name", ""),
                topology=TopologySpec(
                    family=topology.get("family", "grid"),
                    size=topology.get("size", 11),
                ),
                description=data.get("description", ""),
                algorithm=data.get("algorithm", PROTECTIONLESS),
                search_distance=data.get("search_distance", 3),
                attacker=_attacker_from_dict(data.get("attacker")),
                noise=data.get("noise", "casino"),
                sources=tuple(data.get("sources", ("top-left",))),
                source_rotation_period=data.get("source_rotation_period"),
                perturbations=tuple(
                    _perturbation_from_dict(p)
                    for p in data.get("perturbations", ())
                ),
                repeats=data.get("repeats", 30),
                base_seed=data.get("base_seed", 0),
                max_periods=data.get("max_periods"),
            )
        except ConfigurationError:
            raise
        except (TypeError, ValueError, AttributeError) as exc:
            raise invalid_field(
                "ScenarioSpec", "json", data.get("name", "<unnamed>"),
                f"malformed scenario document: {exc}",
            ) from exc

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The spec serialised as JSON (sorted keys)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def canonical_json(self) -> str:
        """The compact, key-sorted serialisation used wherever the spec
        is hashed (the experiment service's content-addressed job keys):
        two equal specs canonicalise to identical bytes however they
        were spelled."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a :meth:`to_json` document back into a spec."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise invalid_field(
                "ScenarioSpec", "json", f"{text[:40]!r}...",
                f"not valid JSON: {exc}",
            ) from exc
        return cls.from_dict(data)


# ----------------------------------------------------------------------
# JSON helpers: the attacker and perturbation vocabularies
# ----------------------------------------------------------------------

#: Decision functions a JSON spec may name (the ``D`` of the attacker
#: tuple).  All are parameter-free, so the class name is the whole
#: serialisation.
DECISION_FUNCTIONS = {
    "FollowFirstHeard": FollowFirstHeard,
    "FollowAnyHeard": FollowAnyHeard,
    "AvoidRecentlyVisited": AvoidRecentlyVisited,
}

#: Perturbation kinds a JSON spec may use, with their JSON field names.
PERTURBATION_KINDS = {
    "node-death": (NodeDeath, ("period", "nodes")),
    "node-sleep": (NodeSleep, ("period", "wake_period", "nodes")),
    "duty-cycle": (DutyCycle, ("nodes", "cycle_length", "sleep_for", "offset")),
}

_KIND_OF_PERTURBATION = {
    cls: kind for kind, (cls, _) in PERTURBATION_KINDS.items()
}


def _attacker_to_dict(attacker: AttackerSpec) -> Dict[str, object]:
    return {
        "messages_per_move": attacker.messages_per_move,
        "history_size": attacker.history_size,
        "moves_per_period": attacker.moves_per_period,
        "decision": attacker.decision.name,
    }


def _attacker_from_dict(data: object) -> Optional[AttackerSpec]:
    if data is None:
        return None
    if not isinstance(data, dict):
        raise invalid_field(
            "ScenarioSpec", "attacker", data,
            "expected null or an object with R/H/M/decision fields",
        )
    decision_name = data.get("decision", "FollowFirstHeard")
    try:
        decision_cls = DECISION_FUNCTIONS[decision_name]
    except KeyError:
        raise invalid_field(
            "ScenarioSpec", "attacker", decision_name,
            f"unknown decision function; pick one of "
            f"{sorted(DECISION_FUNCTIONS)}",
        ) from None
    return AttackerSpec(
        messages_per_move=data.get("messages_per_move", 1),
        history_size=data.get("history_size", 0),
        moves_per_period=data.get("moves_per_period", 1),
        decision=decision_cls(),
    )


def _perturbation_to_dict(perturbation: Perturbation) -> Dict[str, object]:
    kind = _KIND_OF_PERTURBATION.get(type(perturbation))
    if kind is None:
        raise invalid_field(
            "ScenarioSpec", "perturbations", type(perturbation).__name__,
            f"not JSON-serialisable; known kinds: {sorted(PERTURBATION_KINDS)}",
        )
    _, field_names = PERTURBATION_KINDS[kind]
    payload: Dict[str, object] = {"kind": kind}
    for name in field_names:
        value = getattr(perturbation, name)
        payload[name] = list(value) if isinstance(value, tuple) else value
    return payload


def _perturbation_from_dict(data: object) -> Perturbation:
    if not isinstance(data, dict) or "kind" not in data:
        raise invalid_field(
            "ScenarioSpec", "perturbations", data,
            "each perturbation must be an object with a 'kind' field",
        )
    kind = data["kind"]
    try:
        cls, field_names = PERTURBATION_KINDS[kind]
    except KeyError:
        raise invalid_field(
            "ScenarioSpec", "perturbations", kind,
            f"unknown perturbation kind; pick one of "
            f"{sorted(PERTURBATION_KINDS)}",
        ) from None
    unknown = sorted(set(data) - {"kind"} - set(field_names))
    if unknown:
        raise invalid_field(
            "ScenarioSpec", "perturbations", unknown,
            f"unknown field(s) for kind {kind!r}; "
            f"known: {sorted(field_names)}",
        )
    kwargs = {}
    for name in field_names:
        if name in data:
            value = data[name]
            kwargs[name] = tuple(value) if name == "nodes" else value
    try:
        return cls(**kwargs)
    except ConfigurationError:
        raise
    except TypeError as exc:
        raise invalid_field(
            "ScenarioSpec", "perturbations", kind,
            f"missing or malformed fields: {exc}",
        ) from exc


def load_scenario_file(path: Union[str, Path]) -> ScenarioSpec:
    """Load a :class:`ScenarioSpec` from a JSON document on disk.

    The CLI's ``scenario run path/to/spec.json`` entry point and the
    file half of the experiment service's submit payload.  Unreadable
    files and malformed documents both raise
    :class:`~repro.errors.ConfigurationError`.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise invalid_field(
            "ScenarioSpec", "path", str(path), f"cannot read spec file: {exc}"
        ) from exc
    return ScenarioSpec.from_json(text)
