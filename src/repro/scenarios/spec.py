"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a frozen, self-contained description of one
evaluation workload: a topology family and size, where the asset lives
(one source, several simultaneous sources, or a mobile source rotating
through a pool), the attacker from the ``(R, H, M, s0, D)`` spectrum,
the noise regime, and any mid-run perturbations.  Specs carry no
topology objects — source placements are symbolic (``"top-left"``,
``"centre"``, or a concrete node id) and resolved when the spec is
*lowered* onto the experiment engine — so a spec is cheap to build,
hashable, picklable and printable.

Lowering is two calls: :meth:`ScenarioSpec.build_topology` constructs
the network (designating the primary source so SLP schedule building
protects it), and :meth:`ScenarioSpec.to_config` produces the
:class:`~repro.experiments.ExperimentConfig` the serial and parallel
runners already know how to sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

from ..attacker import AttackerSpec, paper_attacker
from ..errors import invalid_field
from ..experiments import ALGORITHMS, PROTECTIONLESS, ExperimentConfig
from ..app import Perturbation, SourcePlan
from ..topology import GridTopology, LineTopology, NodeId, RingTopology, Topology

#: Topology families a scenario may request.
TOPOLOGY_FAMILIES = ("grid", "line", "ring")

#: Noise regimes a scenario may request (the ExperimentConfig spellings).
NOISE_REGIMES = ("casino", "ideal")

#: A source placement: a concrete node id or a symbolic position.
Placement = Union[int, str]


@dataclass(frozen=True)
class TopologySpec:
    """A topology family plus size, buildable without further input.

    Attributes
    ----------
    family:
        ``"grid"`` (the paper's layout: sink at the centre),
        ``"line"`` (sink at the far end) or ``"ring"`` (sink at node 0).
    size:
        Side length for grids, node count for lines and rings.
    """

    family: str = "grid"
    size: int = 11

    def __post_init__(self) -> None:
        if self.family not in TOPOLOGY_FAMILIES:
            raise invalid_field(
                "TopologySpec",
                "family",
                self.family,
                f"pick one of {TOPOLOGY_FAMILIES}",
            )
        minimum = 2 if self.family == "grid" else 3
        if self.size < minimum:
            raise invalid_field(
                "TopologySpec",
                "size",
                self.size,
                f"a {self.family} topology needs size >= {minimum}",
            )

    @property
    def num_nodes(self) -> int:
        """Node count of the topology this spec builds."""
        return self.size * self.size if self.family == "grid" else self.size

    @property
    def sink_node(self) -> NodeId:
        """The sink the built topology will designate.

        Mirrors each family's placement rule (grid: centre; line: far
        end; ring: node 0) so specs can be validated against the sink
        without building the topology.
        """
        if self.family == "grid":
            return (self.size // 2) * self.size + (self.size // 2)
        if self.family == "line":
            return self.size - 1
        return 0

    def build(self, source: Optional[NodeId] = None) -> Topology:
        """Construct the topology, optionally designating ``source``."""
        if self.family == "grid":
            return GridTopology(self.size, source=source)
        if self.family == "line":
            built: Topology = LineTopology(self.size)
        else:
            built = RingTopology(self.size)
        if source is not None and source != built.source:
            built = built.with_source(source)
        return built

    def resolve_placement(self, placement: Placement) -> NodeId:
        """Turn a symbolic or numeric placement into a node id.

        Numeric placements are validated against the node count.
        Symbolic placements: every family understands ``"centre"``;
        grids additionally understand the four corners
        (``"top-left"``, ``"top-right"``, ``"bottom-left"``,
        ``"bottom-right"``).
        """
        if isinstance(placement, int):
            if not 0 <= placement < self.num_nodes:
                raise invalid_field(
                    "ScenarioSpec",
                    "sources",
                    placement,
                    f"node id out of range for a {self.family} of "
                    f"{self.num_nodes} nodes",
                )
            return placement
        if self.family == "grid":
            n = self.size
            symbols = {
                "top-left": 0,
                "top-right": n - 1,
                "bottom-left": n * (n - 1),
                "bottom-right": n * n - 1,
                "centre": (n // 2) * n + (n // 2),
            }
        else:
            symbols = {"centre": self.num_nodes // 2}
        try:
            return symbols[placement]
        except KeyError:
            raise invalid_field(
                "ScenarioSpec",
                "sources",
                placement,
                f"unknown placement for family {self.family!r}; "
                f"pick one of {tuple(sorted(symbols))} or a node id",
            ) from None


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative evaluation workload.

    Attributes
    ----------
    name:
        Registry key, kebab-case by convention.
    topology:
        The network family and size.
    description:
        One human-readable line for ``repro scenario list``.
    algorithm:
        ``"protectionless"`` or ``"slp"`` — which schedule defends.
    search_distance:
        ``SD`` for the SLP algorithm (ignored for protectionless).
    attacker:
        The ``(R, H, M, s0, D)`` parameters; ``None`` = the paper's.
    noise:
        ``"casino"`` (the paper's noise) or ``"ideal"``.
    sources:
        Source placements (symbolic or node ids).  One placement is
        the paper's workload; several are simultaneous sources unless
        ``source_rotation_period`` makes the pool a mobile source.
        The first placement is the *primary* source the SLP refinement
        protects.
    source_rotation_period:
        ``None`` = all sources broadcast-relevant simultaneously; a
        positive value rotates the asset through ``sources`` every
        that many periods (a mobile source).
    perturbations:
        Node deaths, sleeps and duty cycles applied each run.
    repeats:
        Default sweep width (CLI ``--seeds`` overrides).
    base_seed:
        Seed of the first run; run ``i`` uses ``base_seed + i``.
    max_periods:
        Optional per-run period budget override (``None`` = Eq. 1).
    """

    name: str
    topology: TopologySpec = field(default_factory=TopologySpec)
    description: str = ""
    algorithm: str = PROTECTIONLESS
    search_distance: int = 3
    attacker: Optional[AttackerSpec] = None
    noise: str = "casino"
    sources: Tuple[Placement, ...] = ("top-left",)
    source_rotation_period: Optional[int] = None
    perturbations: Tuple[Perturbation, ...] = ()
    repeats: int = 30
    base_seed: int = 0
    max_periods: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise invalid_field(
                "ScenarioSpec", "name", self.name, "a scenario needs a name"
            )
        if self.algorithm not in ALGORITHMS:
            raise invalid_field(
                "ScenarioSpec",
                "algorithm",
                self.algorithm,
                f"unknown algorithm; pick one of {ALGORITHMS}",
            )
        if self.noise not in NOISE_REGIMES:
            raise invalid_field(
                "ScenarioSpec",
                "noise",
                self.noise,
                f"unknown noise regime; pick one of {NOISE_REGIMES}",
            )
        object.__setattr__(self, "sources", tuple(self.sources))
        object.__setattr__(self, "perturbations", tuple(self.perturbations))
        if not self.sources:
            raise invalid_field(
                "ScenarioSpec", "sources", self.sources, "needs at least one source"
            )
        if self.repeats < 1:
            raise invalid_field(
                "ScenarioSpec", "repeats", self.repeats, "needs at least one repeat"
            )
        if self.source_rotation_period is not None:
            if self.source_rotation_period < 1:
                raise invalid_field(
                    "ScenarioSpec",
                    "source_rotation_period",
                    self.source_rotation_period,
                    "must be at least one period",
                )
            if len(self.sources) < 2:
                raise invalid_field(
                    "ScenarioSpec",
                    "sources",
                    self.sources,
                    "a mobile source needs at least two placements to rotate",
                )
        if self.max_periods is not None and self.max_periods < 1:
            raise invalid_field(
                "ScenarioSpec",
                "max_periods",
                self.max_periods,
                "a run must cover at least one period",
            )
        # Resolve placements eagerly so a malformed spec fails at
        # construction, not mid-sweep — and so duplicates are caught
        # even when spelled differently ("top-left" vs 0).
        resolved = self.resolved_sources()
        if len(set(resolved)) != len(resolved):
            raise invalid_field(
                "ScenarioSpec",
                "sources",
                self.sources,
                f"placements resolve to duplicate nodes {resolved}",
            )
        sink = self.topology.sink_node
        if sink in resolved:
            raise invalid_field(
                "ScenarioSpec",
                "sources",
                self.sources,
                f"placement resolves to node {sink}, the {self.topology.family}'s "
                "sink — the sink cannot hold the asset",
            )
        protected = set(resolved) | {sink}
        for perturbation in self.perturbations:
            for node in perturbation.nodes:
                if not 0 <= node < self.topology.num_nodes:
                    raise invalid_field(
                        "ScenarioSpec",
                        "perturbations",
                        node,
                        f"node id out of range for a {self.topology.family} of "
                        f"{self.topology.num_nodes} nodes",
                    )
                if node in protected:
                    role = "sink" if node == sink else "source"
                    raise invalid_field(
                        "ScenarioSpec",
                        "perturbations",
                        node,
                        f"cannot perturb the {role} (it anchors the privacy game)",
                    )

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def resolved_sources(self) -> Tuple[NodeId, ...]:
        """The source placements as concrete node ids, in pool order."""
        return tuple(self.topology.resolve_placement(p) for p in self.sources)

    def source_plan(self) -> SourcePlan:
        """The runtime :class:`~repro.app.SourcePlan` this spec denotes."""
        return SourcePlan(
            nodes=self.resolved_sources(),
            rotation_period=self.source_rotation_period,
        )

    def build_topology(self) -> Topology:
        """Construct the network with the primary source designated."""
        return self.topology.build(source=self.resolved_sources()[0])

    def to_config(
        self,
        repeats: Optional[int] = None,
        base_seed: Optional[int] = None,
    ) -> ExperimentConfig:
        """Lower onto the experiment engine's configuration object.

        The returned config carries the source plan and perturbations,
        so both :class:`~repro.experiments.ExperimentRunner` and
        :class:`~repro.experiments.ParallelExperimentRunner` sweep the
        scenario without scenario-specific code paths — which is what
        keeps serial and parallel scenario sweeps bit-identical.
        """
        return ExperimentConfig(
            algorithm=self.algorithm,
            search_distance=self.search_distance,
            repeats=self.repeats if repeats is None else repeats,
            base_seed=self.base_seed if base_seed is None else base_seed,
            noise=self.noise,
            attacker=self.attacker,
            source_plan=self.source_plan(),
            perturbations=self.perturbations,
            max_periods=self.max_periods,
        )

    def with_overrides(self, **changes: object) -> "ScenarioSpec":
        """A copy of this spec with ``dataclasses.replace`` semantics."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def workload_kind(self) -> str:
        """A short label for listings: how the asset behaves."""
        if self.source_rotation_period is not None:
            return f"mobile({len(self.sources)} stops/{self.source_rotation_period}p)"
        if len(self.sources) > 1:
            return f"multi({len(self.sources)} sources)"
        return "static"

    def summary(self) -> str:
        """One listing row: workload, attacker, defence, dynamics."""
        attacker = (self.attacker or paper_attacker()).describe()
        parts = [
            f"{self.topology.family}-{self.topology.size}",
            self.algorithm,
            self.workload_kind(),
            attacker,
            f"noise={self.noise}",
        ]
        if self.perturbations:
            kinds = ",".join(
                sorted({type(p).__name__ for p in self.perturbations})
            )
            parts.append(f"perturb={kinds}")
        return " ".join(parts)
