"""Sweeping scenarios through the experiment engine.

:class:`ScenarioRunner` lowers a :class:`~repro.scenarios.ScenarioSpec`
onto the existing serial/parallel experiment engine: build the
topology, lower the spec to an :class:`~repro.experiments.ExperimentConfig`
(which carries the source plan and perturbations), hand it to
:func:`~repro.experiments.make_runner` and wrap the outcome with the
scenario-level metrics (per-source capture ratios, first-capture
aggregation).

Determinism contract: a scenario swept with ``workers=N`` produces the
same per-run results, the same aggregate statistics and — because
:meth:`ScenarioOutcome.to_json` contains no wall-clock data — the very
same bytes of JSON as the serial sweep.  The test suite and
``scripts/bench.py`` both enforce this.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..app import OperationalResult
from ..experiments import (
    ExperimentConfig,
    FailedRun,
    GuardReport,
    SweepCheckpoint,
    make_runner,
    plan_workers,
)
from ..metrics import (
    CaptureStats,
    FirstCaptureStats,
    PerSourceCapture,
    first_capture_stats,
    per_source_capture_stats,
)
from ..telemetry import ProgressReporter
from ..topology import NodeId
from .registry import get_scenario
from .spec import ScenarioSpec


@dataclass(frozen=True)
class ScenarioOutcome:
    """All runs of one scenario sweep plus scenario-level aggregation."""

    spec: ScenarioSpec
    topology_name: str
    config: ExperimentConfig
    results: Tuple[OperationalResult, ...]
    stats: CaptureStats
    per_source: Tuple[PerSourceCapture, ...]
    first_capture: FirstCaptureStats
    failures: Tuple[FailedRun, ...] = ()
    guard: Optional[GuardReport] = None

    @property
    def source_pool(self) -> Tuple[NodeId, ...]:
        """The resolved source nodes of the sweep."""
        return self.spec.resolved_sources()

    def run_seeds(self) -> Tuple[int, ...]:
        """The seed of each entry of :attr:`results`, in order.

        Normally ``base_seed .. base_seed + repeats - 1``; when
        supervised execution quarantined seeds, those are missing from
        the middle and ``results`` holds only the survivors.
        """
        failed = {f.seed for f in self.failures}
        base = self.config.base_seed
        return tuple(
            seed
            for seed in range(base, base + self.config.repeats)
            if seed not in failed
        )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready report of the sweep.

        Deliberately excludes anything non-deterministic (timings,
        hosts, dates): two sweeps of the same scenario and seeds must
        serialise to identical bytes whether run serially or across a
        worker pool.
        """
        spec = self.spec
        seeds = self.run_seeds()
        report: Dict[str, object] = {
            "scenario": spec.name,
            "description": spec.description,
            "topology": {
                "family": spec.topology.family,
                "size": spec.topology.size,
                "name": self.topology_name,
            },
            "workload": {
                "kind": spec.workload_kind(),
                "sources": list(self.source_pool),
                "source_rotation_period": spec.source_rotation_period,
                "perturbations": [repr(p) for p in spec.perturbations],
            },
            "algorithm": spec.algorithm,
            "search_distance": spec.search_distance,
            "attacker": (
                spec.attacker.describe() if spec.attacker is not None else "paper"
            ),
            "noise": spec.noise,
            "seeds": {
                "repeats": self.config.repeats,
                "base_seed": self.config.base_seed,
            },
            "stats": asdict(self.stats),
            "per_source": [asdict(entry) for entry in self.per_source],
            "first_capture": asdict(self.first_capture),
            "runs": [
                self._run_row(seed, result)
                for seed, result in zip(seeds, self.results)
            ],
        }
        # Emitted only when present: a clean sweep's report stays
        # byte-identical to what it was before supervision existed.
        if self.failures:
            report["failures"] = [asdict(failure) for failure in self.failures]
        if self.guard is not None:
            report["guard"] = asdict(self.guard)
        return report

    def _run_row(self, seed: int, result: OperationalResult) -> Dict[str, object]:
        return {
            "seed": seed,
            "captured": result.captured,
            "captured_source": result.captured_source,
            "capture_period": result.capture_period,
            "capture_time": result.capture_time,
            "periods_run": result.periods_run,
            "safety_periods": result.safety_periods,
            "attacker_moves": max(len(result.attacker_path) - 1, 0),
            "messages_sent": result.messages_sent,
            "aggregation_ratio": result.aggregation_ratio,
        }

    def to_json(self) -> str:
        """The report serialised canonically (sorted keys, 2-space indent)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_jsonl(self) -> str:
        """One JSON line per run, each carrying the scenario name."""
        lines = []
        for seed, result in zip(self.run_seeds(), self.results):
            row = {"scenario": self.spec.name}
            row.update(self._run_row(seed, result))
            lines.append(json.dumps(row, sort_keys=True))
        return "\n".join(lines) + "\n"


class ScenarioRunner:
    """Runs named or ad-hoc scenarios, serially or across processes.

    Parameters
    ----------
    workers:
        Worker processes per sweep (the CLI convention: ``None``/``1``
        = serial, ``0`` = one per CPU).  Fanning out changes nothing
        but wall-clock time; see the module docstring.  The requested
        count passes through :func:`~repro.experiments.plan_workers`,
        which falls back to the serial engine when a pool would only
        add overhead (more workers than cores, or a sweep too small to
        amortise dispatch).
    force_parallel:
        Bypass that fallback and honour ``workers`` verbatim (the CLI's
        ``--force-parallel``).
    kernel:
        Operational kernel override (``"fast"``/``"fast-object"``/
        ``"legacy"``/``None`` for the engine default); bit-identical
        whichever is chosen.
    setup_kernel:
        Setup-phase engine override for scenarios whose schedules come
        from the distributed protocols (``"fast"``/``"legacy"``/``None``
        for the engine default); bit-identical whichever is chosen and
        ignored by centralised builds.
    use_schedule_cache:
        Whether sweeps may reuse memoised schedules (identical either
        way); ``False`` is the CLI's ``--no-schedule-cache``.
    checkpoint:
        Directory for the per-seed result store (the CLI's
        ``--checkpoint``): completed seeds are persisted as they land,
        so an interrupted sweep can restart from where it stopped.
    resume:
        Reuse results already in the checkpoint store instead of
        clearing it first (the CLI's ``--resume``).  The merged report
        is bit-identical to an uninterrupted sweep.
    guard:
        ``"differential"`` re-runs a sample of each sweep's seeds on
        the legacy engines; on divergence a reproducer bundle is
        written and the whole sweep degrades to legacy.
    chunk_timeout:
        Seconds one parallel chunk may run before its worker is
        presumed hung and the pool is rebuilt (``None`` = wait
        forever).
    progress:
        Render live sweep progress on stderr (seeds completed, runs/s,
        ETA, retry ticker).  The reporter is TTY-aware — with stderr
        redirected it stays silent — and never touches the report
        bytes; the CLI passes ``not --quiet``.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        force_parallel: bool = False,
        kernel: Optional[str] = None,
        setup_kernel: Optional[str] = None,
        use_schedule_cache: bool = True,
        checkpoint: Optional[Path] = None,
        resume: bool = False,
        guard: Optional[str] = None,
        chunk_timeout: Optional[float] = None,
        progress: bool = False,
    ) -> None:
        self._workers = workers
        self._force_parallel = force_parallel
        self._kernel = kernel
        self._setup_kernel = setup_kernel
        self._use_schedule_cache = use_schedule_cache
        self._checkpoint = SweepCheckpoint(checkpoint) if checkpoint else None
        self._resume = resume
        self._guard = guard
        self._chunk_timeout = chunk_timeout
        self._progress = progress
        self._bundle_dir = (
            str(Path(checkpoint) / "divergence") if checkpoint else "divergence"
        )

    @property
    def workers(self) -> Optional[int]:
        """The configured worker count (CLI convention)."""
        return self._workers

    def effective_workers(
        self,
        scenario: Union[str, ScenarioSpec],
        seeds: Optional[int] = None,
    ) -> int:
        """The worker count :meth:`run` will actually use for a sweep
        (``1`` = serial): the configured request resolved through the
        worker policy with this scenario's size and repeat count — the
        same call :meth:`run` makes, so the answer cannot drift from
        the engine choice (the bench records it as ``workers_effective``).
        """
        spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
        config = spec.to_config(repeats=seeds)
        return plan_workers(
            self._workers,
            repeats=config.repeats,
            topology=spec.build_topology(),
            force_parallel=self._force_parallel,
        )

    def run(
        self,
        scenario: Union[str, ScenarioSpec],
        seeds: Optional[int] = None,
        base_seed: Optional[int] = None,
    ) -> ScenarioOutcome:
        """Sweep one scenario.

        Parameters
        ----------
        scenario:
            A registry name or an ad-hoc :class:`ScenarioSpec`.
        seeds:
            Override the spec's ``repeats`` (the CLI's ``--seeds``).
        base_seed:
            Override the spec's first seed.
        """
        spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
        topology = spec.build_topology()
        config = spec.to_config(repeats=seeds, base_seed=base_seed)
        if (
            self._kernel is not None
            or self._setup_kernel is not None
            or not self._use_schedule_cache
        ):
            config = replace(
                config,
                kernel=self._kernel,
                setup_kernel=self._setup_kernel,
                use_schedule_cache=self._use_schedule_cache,
            )
        reporter = None
        on_result = None
        if self._progress:
            reporter = ProgressReporter(
                total=config.repeats, label=f"{spec.name}: "
            )
            on_result = reporter.on_result
        try:
            with make_runner(
                topology,
                self._workers,
                repeats=config.repeats,
                force_parallel=self._force_parallel,
                chunk_timeout=self._chunk_timeout,
            ) as runner:
                outcome = runner.run_resilient(
                    config,
                    checkpoint=self._checkpoint,
                    resume=self._resume,
                    guard=self._guard,
                    bundle_dir=self._bundle_dir,
                    on_result=on_result,
                )
        finally:
            if reporter is not None:
                reporter.finish()
        return ScenarioOutcome(
            spec=spec,
            topology_name=outcome.topology_name,
            config=config,
            results=tuple(outcome.results),
            stats=outcome.stats,
            per_source=per_source_capture_stats(outcome.results),
            first_capture=first_capture_stats(outcome.results),
            failures=tuple(outcome.failures),
            guard=outcome.guard,
        )

    def compare(
        self,
        scenarios: Sequence[Union[str, ScenarioSpec]],
        seeds: Optional[int] = None,
        base_seed: Optional[int] = None,
    ) -> List[ScenarioOutcome]:
        """Sweep several scenarios with the same seed settings."""
        return [self.run(s, seeds=seeds, base_seed=base_seed) for s in scenarios]


def format_comparison(outcomes: Sequence[ScenarioOutcome]) -> str:
    """Render a scenario comparison as a fixed-width table."""
    header = (
        f"{'scenario':<22} {'workload':<22} {'runs':>4} "
        f"{'capture':>8} {'mean period':>12} {'aggregation':>12}"
    )
    lines = [header, "-" * len(header)]
    for outcome in outcomes:
        stats = outcome.stats
        mean_period = (
            f"{stats.mean_capture_period:.1f}"
            if stats.mean_capture_period is not None
            else "-"
        )
        aggregation = sum(r.aggregation_ratio for r in outcome.results) / len(
            outcome.results
        )
        lines.append(
            f"{outcome.spec.name:<22} {outcome.spec.workload_kind():<22} "
            f"{stats.runs:>4} {stats.capture_ratio:>8.1%} "
            f"{mean_period:>12} {aggregation:>12.1%}"
        )
    return "\n".join(lines)
