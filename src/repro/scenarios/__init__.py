"""Declarative scenario workloads swept through the experiment engine.

The paper's evaluation covers one workload shape: a single static
source on square grids against the ``(1, 0, 1, s0, first-heard)``
attacker.  This package turns every axis the paper parameterises into
a declarative, named workload:

* :class:`ScenarioSpec` — a frozen description of topology, source
  placement (static, multiple simultaneous, or mobile/rotating),
  attacker, noise regime and mid-run perturbations;
* the registry (:func:`register_scenario`, :func:`get_scenario`,
  :func:`scenario_names`) with a built-in gallery from
  ``paper-baseline`` to ``churn-10pct``;
* :class:`ScenarioRunner` — lowers specs onto the serial/parallel
  experiment engine with bit-identical results either way, reporting
  per-source capture ratios and first-capture aggregation.

CLI: ``repro-slp-das scenario list|run|compare``.
"""

from .registry import (
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from .runner import ScenarioOutcome, ScenarioRunner, format_comparison
from .spec import (
    DECISION_FUNCTIONS,
    NOISE_REGIMES,
    PERTURBATION_KINDS,
    TOPOLOGY_FAMILIES,
    ScenarioSpec,
    TopologySpec,
    load_scenario_file,
)

__all__ = [
    "DECISION_FUNCTIONS",
    "NOISE_REGIMES",
    "PERTURBATION_KINDS",
    "ScenarioOutcome",
    "ScenarioRunner",
    "ScenarioSpec",
    "TOPOLOGY_FAMILIES",
    "TopologySpec",
    "format_comparison",
    "get_scenario",
    "iter_scenarios",
    "load_scenario_file",
    "register_scenario",
    "scenario_names",
]
