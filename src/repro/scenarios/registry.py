"""The named-scenario registry.

Scenarios are registered under kebab-case names so the CLI, the
benchmark suite and the tests all speak the same vocabulary::

    repro-slp-das scenario run two-sources --seeds 20 --workers 2

The built-in gallery spans the axes the paper's machinery
parameterises but its evaluation never sweeps: the attacker spectrum
of ``examples/attacker_gallery.py`` promoted to named workloads,
multiple simultaneous sources, a mobile source rotating through the
grid corners, and network churn (node death waves, duty-cycled
regions).  ``paper-baseline`` is the anchor: it is exactly the
paper's Figure 5 cell (11×11, protectionless, (1,0,1,s0,first-heard),
casino noise) and reproduces :class:`~repro.experiments.ExperimentRunner`
results bit-for-bit, which the test suite enforces.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from ..attacker import AttackerSpec, AvoidRecentlyVisited, FollowAnyHeard
from ..errors import invalid_field
from ..experiments import SLP
from ..app import DutyCycle, NodeDeath
from .spec import ScenarioSpec, TopologySpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry under ``spec.name``.

    Re-registering an existing name requires ``replace=True`` so a typo
    cannot silently shadow a built-in.
    """
    if spec.name in _REGISTRY and not replace:
        raise invalid_field(
            "register_scenario",
            "name",
            spec.name,
            "already registered; pass replace=True to overwrite",
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise invalid_field(
            "get_scenario",
            "name",
            name,
            f"unknown scenario; registered: {scenario_names()}",
        ) from None


def scenario_names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def iter_scenarios() -> Iterator[ScenarioSpec]:
    """All registered scenarios in name order."""
    for name in scenario_names():
        yield _REGISTRY[name]


# ----------------------------------------------------------------------
# Built-in gallery
# ----------------------------------------------------------------------

_GRID11 = TopologySpec(family="grid", size=11)

#: ~10% of the 11×11 grid crashing in three waves: every tenth node,
#: skipping the source (0) and steering clear of the sink (60).
_CHURN_WAVES = (
    NodeDeath(period=2, nodes=(7, 17, 27, 37)),
    NodeDeath(period=4, nodes=(47, 57, 67, 77)),
    NodeDeath(period=6, nodes=(87, 97, 107, 117)),
)

#: Rows 2–3 of the grid duty cycling: asleep 2 of every 5 periods.
_DUTY_BAND = DutyCycle(
    nodes=tuple(range(22, 44)), cycle_length=5, sleep_for=2, offset=1
)

register_scenario(
    ScenarioSpec(
        name="paper-baseline",
        topology=_GRID11,
        description="The paper's Figure 5 cell: one static source, "
        "(1,0,1,s0,first-heard) attacker, protectionless DAS.",
    )
)

register_scenario(
    ScenarioSpec(
        name="paper-baseline-slp",
        topology=_GRID11,
        algorithm=SLP,
        description="The paper's SLP DAS cell at search distance 3 "
        "against the same attacker.",
    )
)

register_scenario(
    ScenarioSpec(
        name="two-sources",
        topology=_GRID11,
        sources=("top-left", "top-right"),
        description="Two simultaneous static sources in opposite "
        "corners; capturing either ends the run.",
    )
)

register_scenario(
    ScenarioSpec(
        name="two-sources-slp",
        topology=_GRID11,
        algorithm=SLP,
        sources=("top-left", "top-right"),
        description="Two simultaneous sources with the SLP refinement "
        "protecting the primary (top-left) one.",
    )
)

register_scenario(
    ScenarioSpec(
        name="mobile-source",
        topology=_GRID11,
        sources=("top-left", "top-right", "bottom-right", "bottom-left"),
        source_rotation_period=2,
        description="A mobile source rotating through the four corners "
        "every two periods; rotating onto the attacker is a capture.",
    )
)

register_scenario(
    ScenarioSpec(
        name="churn-10pct",
        topology=_GRID11,
        perturbations=_CHURN_WAVES,
        description="~10% of the grid crashes in three waves (periods "
        "2, 4, 6) while the attacker hunts the static source.",
    )
)

register_scenario(
    ScenarioSpec(
        name="duty-cycle",
        topology=_GRID11,
        perturbations=(_DUTY_BAND,),
        description="Rows 2-3 duty cycle (asleep 2 of every 5 periods), "
        "thinning the traffic the attacker steers by.",
    )
)

register_scenario(
    ScenarioSpec(
        name="strong-attacker",
        topology=_GRID11,
        attacker=AttackerSpec(2, 0, 2, FollowAnyHeard()),
        description="The gallery's (2,0,2,s0,any-heard) attacker: hears "
        "two messages and may move twice per period.",
    )
)

register_scenario(
    ScenarioSpec(
        name="patient-attacker",
        topology=_GRID11,
        attacker=AttackerSpec(3, 0, 2, FollowAnyHeard()),
        description="The gallery's (3,0,2,s0,any-heard) attacker: wide "
        "hearing before each of up to two moves.",
    )
)

register_scenario(
    ScenarioSpec(
        name="cautious-attacker",
        topology=_GRID11,
        attacker=AttackerSpec(1, 2, 1, AvoidRecentlyVisited()),
        description="The gallery's (1,2,1,s0,avoid-recent) attacker: "
        "first-heard with two locations of anti-oscillation memory.",
    )
)
