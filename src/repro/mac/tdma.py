"""TDMA MAC driver.

:class:`TdmaDriver` turns the frame arithmetic of
:class:`~repro.mac.frame.TdmaFrame` into engine events: each period it
fires a period-start hook on every registered client and a slot hook at
the client's assigned slot.  Protocol processes implement
:class:`TdmaClient` and never deal with absolute timestamps themselves.

This mirrors how a TDMA MAC sits under the application in TinyOS: the
MAC owns the timing, the application owns the payloads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Protocol

from ..errors import SimulationError
from ..simulator import PERIOD_START
from ..topology import NodeId
from .frame import TdmaFrame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulator import Simulator


class TdmaClient(Protocol):
    """A process driven by the TDMA MAC."""

    @property
    def node(self) -> NodeId:
        """The node the client runs on."""
        ...

    def on_period_start(self, period: int, time: float) -> None:
        """Called at the start of every period."""
        ...

    def on_slot(self, period: int, slot: int, time: float) -> None:
        """Called at the start of the client's own slot."""
        ...


class TdmaDriver:
    """Fires period and slot events for a set of clients.

    The driver is started once with :meth:`start` and then self-schedules
    one period at a time — scheduling only the upcoming period keeps the
    event queue small on long runs and lets slot reassignment (Phase 3)
    take effect at the next period boundary, exactly as a real TDMA MAC
    would apply a new schedule.
    """

    def __init__(self, simulator: "Simulator", frame: TdmaFrame) -> None:
        self._sim = simulator
        self._frame = frame
        self._clients: Dict[NodeId, TdmaClient] = {}
        self._slots: Dict[NodeId, int] = {}
        self._running = False
        self._stop_after: Optional[int] = None
        self._current_period = 0

    @property
    def frame(self) -> TdmaFrame:
        """The frame geometry the driver follows."""
        return self._frame

    @property
    def current_period(self) -> int:
        """Index of the period currently being executed."""
        return self._current_period

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, client: TdmaClient, slot: Optional[int]) -> None:
        """Add a client; ``slot`` may be ``None`` for listen-only nodes."""
        if client.node in self._clients:
            raise SimulationError(
                f"a TDMA client is already registered at node {client.node}"
            )
        if slot is not None and not self._frame.fits(slot):
            raise SimulationError(
                f"slot {slot} does not fit a frame of {self._frame.num_slots} slots"
            )
        self._clients[client.node] = client
        if slot is not None:
            self._slots[client.node] = slot

    def reassign(self, node: NodeId, slot: Optional[int]) -> None:
        """Change a client's slot; applied from the next period onward."""
        if node not in self._clients:
            raise SimulationError(f"no TDMA client registered at node {node}")
        if slot is None:
            self._slots.pop(node, None)
            return
        if not self._frame.fits(slot):
            raise SimulationError(
                f"slot {slot} does not fit a frame of {self._frame.num_slots} slots"
            )
        self._slots[node] = slot

    def slot_of(self, node: NodeId) -> Optional[int]:
        """The slot currently assigned to ``node``, if any."""
        return self._slots.get(node)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self, first_period: int = 0, stop_after: Optional[int] = None) -> None:
        """Begin firing events from ``first_period``.

        ``stop_after`` bounds how many periods run (``None`` = until the
        simulation's own horizon ends the run).
        """
        if self._running:
            raise SimulationError("the TDMA driver is already running")
        self._running = True
        self._stop_after = stop_after
        self._current_period = first_period
        self._sim.schedule_at(
            self._frame.period_start(first_period),
            self._begin_period,
            (first_period,),
        )

    def _begin_period(self, period: int) -> None:
        self._current_period = period
        now = self._sim.now
        self._sim.trace.record(now, PERIOD_START, period=period)
        for node in sorted(self._clients):
            self._clients[node].on_period_start(period, now)
        # Schedule this period's slot events using the *current* slot map
        # (reassignments made during the previous period are now live).
        for node, slot in sorted(self._slots.items()):
            self._sim.schedule_at(
                self._frame.slot_start(period, slot),
                self._fire_slot,
                (node, period, slot),
            )
        if self._stop_after is None or period + 1 < self._stop_after:
            self._sim.schedule_at(
                self._frame.period_start(period + 1),
                self._begin_period,
                (period + 1,),
            )

    def _fire_slot(self, node: NodeId, period: int, slot: int) -> None:
        # A reassignment during this period must not retract an already
        # scheduled firing inconsistently: fire only if the slot still
        # matches what the node holds.
        if self._slots.get(node) != slot:
            return
        client = self._clients.get(node)
        if client is not None:
            client.on_slot(period, slot, self._sim.now)
