"""TDMA MAC layer: frame geometry and the slot-event driver."""

from .frame import TdmaFrame
from .tdma import TdmaClient, TdmaDriver

__all__ = ["TdmaClient", "TdmaDriver", "TdmaFrame"]
