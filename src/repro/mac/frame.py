"""TDMA frame arithmetic.

A TDMA *period* (Table I) consists of a dissemination window of length
``Pdiss`` followed by ``slots`` transmission slots of length ``Pslot``
each.  With the paper's defaults (``Pdiss = 0.5 s``, ``slots = 100``,
``Pslot = 0.05 s``) a period lasts 5.5 s — exactly the source period
``Psrc``, so the source generates one message per period.

:class:`TdmaFrame` is pure arithmetic: given the three parameters it
answers "when does slot ``k`` of period ``p`` start?" and the inverse
"which period/slot does time ``t`` fall in?".  All protocol timing is
derived from it, so the frame structure lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigurationError, invalid_field


@dataclass(frozen=True)
class TdmaFrame:
    """Immutable TDMA frame geometry.

    Attributes
    ----------
    num_slots:
        Number of transmission slots per period (Table I ``slots``).
    slot_duration:
        Length of one slot in seconds (Table I ``Pslot``).
    dissemination_duration:
        Length of the dissemination window opening each period
        (Table I ``Pdiss``).
    """

    num_slots: int = 100
    slot_duration: float = 0.05
    dissemination_duration: float = 0.5

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise invalid_field(
                "TdmaFrame", "num_slots", self.num_slots,
                "a TDMA frame needs at least one slot",
            )
        if self.slot_duration <= 0:
            raise invalid_field(
                "TdmaFrame", "slot_duration", self.slot_duration,
                "slot duration must be positive",
            )
        if self.dissemination_duration < 0:
            raise invalid_field(
                "TdmaFrame", "dissemination_duration", self.dissemination_duration,
                "dissemination duration cannot be negative",
            )

    # ------------------------------------------------------------------
    # Durations
    # ------------------------------------------------------------------
    @property
    def period_length(self) -> float:
        """Total period duration: ``Pdiss + slots × Pslot``."""
        return self.dissemination_duration + self.num_slots * self.slot_duration

    # ------------------------------------------------------------------
    # Forward mapping: (period, slot) → time
    # ------------------------------------------------------------------
    def period_start(self, period: int) -> float:
        """Start time of period ``period`` (periods count from 0)."""
        if period < 0:
            raise ConfigurationError("period index cannot be negative")
        return period * self.period_length

    def dissemination_start(self, period: int) -> float:
        """Start of the dissemination window of ``period``."""
        return self.period_start(period)

    def slot_start(self, period: int, slot: int) -> float:
        """Start time of slot ``slot`` (1-based) within ``period``."""
        if not 1 <= slot <= self.num_slots:
            raise ConfigurationError(
                f"slot {slot} outside frame of {self.num_slots} slots"
            )
        return (
            self.period_start(period)
            + self.dissemination_duration
            + (slot - 1) * self.slot_duration
        )

    # ------------------------------------------------------------------
    # Inverse mapping: time → (period, slot)
    # ------------------------------------------------------------------
    def period_of(self, time: float) -> int:
        """The period index containing simulated time ``time``."""
        if time < 0:
            raise ConfigurationError("time cannot be negative")
        return int(time // self.period_length)

    def slot_at(self, time: float) -> Optional[int]:
        """The slot number active at ``time``, or ``None`` in dissemination."""
        if time < 0:
            raise ConfigurationError("time cannot be negative")
        offset = time % self.period_length
        if offset < self.dissemination_duration:
            return None
        slot = int((offset - self.dissemination_duration) // self.slot_duration) + 1
        return min(slot, self.num_slots)

    def position_of(self, time: float) -> Tuple[int, Optional[int]]:
        """``(period, slot-or-None)`` for simulated time ``time``."""
        return self.period_of(time), self.slot_at(time)

    def fits(self, slot: int) -> bool:
        """Whether ``slot`` lies within this frame."""
        return 1 <= slot <= self.num_slots
