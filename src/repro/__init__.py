"""repro — a reproduction of "Source Location Privacy-Aware Data
Aggregation Scheduling for Wireless Sensor Networks" (Kirton, Bradbury,
Jhumka — ICDCS 2017).

The package provides, end to end:

* WSN topologies and a discrete event simulator with a TDMA MAC
  (:mod:`repro.topology`, :mod:`repro.simulator`, :mod:`repro.mac`);
* the paper's formal objects — schedules, strong/weak DAS checks,
  safety periods (:mod:`repro.core`);
* the 3-phase protocol, both distributed (message level) and as a
  seeded centralised pipeline (:mod:`repro.das`, :mod:`repro.slp`);
* the ``(R, H, M, s0, D)`` eavesdropper and the ``VerifySchedule``
  decision procedure (:mod:`repro.attacker`, :mod:`repro.verification`);
* the evaluation harness regenerating Table I and Figure 5
  (:mod:`repro.app`, :mod:`repro.metrics`, :mod:`repro.experiments`).

Quickstart::

    from repro import paper_grid, build_slp_schedule, verify_schedule
    from repro import safety_period, PAPER

    grid = paper_grid(11)
    build = build_slp_schedule(grid, seed=0)
    delta = safety_period(grid, PAPER.frame().period_length).periods
    print(verify_schedule(grid, build.schedule, delta))
"""

from .analysis import (
    GradientField,
    descent_path,
    gradient_field,
    gradient_successor,
    predicts_capture,
    refinement_footprint,
)
from .attacker import (
    AttackerSpec,
    AttackerState,
    AvoidRecentlyVisited,
    EavesdropperAgent,
    FollowAnyHeard,
    FollowFirstHeard,
    HeardMessage,
    paper_attacker,
)
from .app import OperationalResult, run_operational_phase
from .core import (
    DasCheckResult,
    DasViolation,
    SafetyPeriod,
    Schedule,
    capture_time_periods,
    capture_time_seconds,
    check_strong_das,
    check_weak_das,
    is_non_colliding,
    is_strong_das,
    is_weak_das,
    safety_period,
    simulation_time_bound,
)
from .das import (
    DasProtocolConfig,
    DasSetupResult,
    centralized_das_schedule,
    run_das_setup,
)
from .errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    ScheduleError,
    SimulationError,
    TopologyError,
    VerificationError,
)
from .experiments import (
    PAPER,
    PAPER_SIZES,
    ExperimentConfig,
    ExperimentRunner,
    format_figure5,
    format_table1,
    headline_reduction,
    measure_setup_overhead,
    run_figure5,
)
from .app import (
    DutyCycle,
    NodeDeath,
    NodeSleep,
    SourcePlan,
)
from .mac import TdmaDriver, TdmaFrame
from .metrics import (
    CaptureStats,
    FirstCaptureStats,
    MessageOverhead,
    PerSourceCapture,
    aggregation_stats,
    capture_stats,
    first_capture_stats,
    per_source_capture_stats,
)
from .scenarios import (
    ScenarioOutcome,
    ScenarioRunner,
    ScenarioSpec,
    TopologySpec,
    get_scenario,
    register_scenario,
    scenario_names,
)
from .simulator import (
    BernoulliNoise,
    CasinoLabNoise,
    IdealNoise,
    NoiseModel,
    Process,
    Simulator,
)
from .slp import (
    SlpBuildResult,
    SlpParameters,
    SlpProtocolConfig,
    SlpSetupResult,
    build_slp_schedule,
    run_slp_setup,
)
from .topology import (
    GridTopology,
    LineTopology,
    RingTopology,
    Topology,
    paper_grid,
    random_geometric_topology,
)
from .verification import (
    VerificationResult,
    generate_attacker_traces,
    is_slp_aware_das,
    minimum_capture_period,
    verify_schedule,
)
from .version import __version__

__all__ = [
    "AttackerSpec",
    "AttackerState",
    "AvoidRecentlyVisited",
    "BernoulliNoise",
    "CaptureStats",
    "CasinoLabNoise",
    "ConfigurationError",
    "DasCheckResult",
    "DasProtocolConfig",
    "DasSetupResult",
    "DasViolation",
    "DutyCycle",
    "EavesdropperAgent",
    "ExperimentConfig",
    "ExperimentRunner",
    "FirstCaptureStats",
    "FollowAnyHeard",
    "FollowFirstHeard",
    "GradientField",
    "GridTopology",
    "HeardMessage",
    "IdealNoise",
    "LineTopology",
    "MessageOverhead",
    "NodeDeath",
    "NodeSleep",
    "NoiseModel",
    "OperationalResult",
    "PAPER",
    "PAPER_SIZES",
    "PerSourceCapture",
    "Process",
    "ProtocolError",
    "ReproError",
    "RingTopology",
    "SafetyPeriod",
    "ScenarioOutcome",
    "ScenarioRunner",
    "ScenarioSpec",
    "Schedule",
    "ScheduleError",
    "SimulationError",
    "Simulator",
    "SourcePlan",
    "SlpBuildResult",
    "SlpParameters",
    "SlpProtocolConfig",
    "SlpSetupResult",
    "TdmaDriver",
    "TdmaFrame",
    "Topology",
    "TopologyError",
    "TopologySpec",
    "VerificationError",
    "VerificationResult",
    "__version__",
    "aggregation_stats",
    "build_slp_schedule",
    "capture_stats",
    "capture_time_periods",
    "capture_time_seconds",
    "centralized_das_schedule",
    "check_strong_das",
    "check_weak_das",
    "descent_path",
    "first_capture_stats",
    "format_figure5",
    "format_table1",
    "generate_attacker_traces",
    "get_scenario",
    "gradient_field",
    "gradient_successor",
    "headline_reduction",
    "is_non_colliding",
    "is_slp_aware_das",
    "is_strong_das",
    "is_weak_das",
    "measure_setup_overhead",
    "minimum_capture_period",
    "paper_attacker",
    "paper_grid",
    "per_source_capture_stats",
    "predicts_capture",
    "random_geometric_topology",
    "refinement_footprint",
    "register_scenario",
    "run_das_setup",
    "run_figure5",
    "run_operational_phase",
    "run_slp_setup",
    "safety_period",
    "scenario_names",
    "simulation_time_bound",
    "verify_schedule",
]
