"""Distributed Phase 1 — the DAS slot assignment protocol of Figure 2.

Each node runs a :class:`DasNodeProcess`:

* **Neighbour discovery** — for the first ``NDP`` dissemination periods
  nodes broadcast ``HELLO`` beacons and learn ``myN`` (Table I).
* **Dissemination** — every period each node broadcasts a ``DISSEM``
  message carrying its ``Ninfo`` neighbourhood view, giving receivers
  2-hop knowledge (Figure 2's ``dissem`` action).
* **Assignment** — an unassigned node that has heard assigned
  neighbours picks the minimum-hop one heard earliest as parent and
  takes a slot *below the minimum slot it has seen*, offset by its rank
  among the parent's unassigned children (the ``process`` action).
* **Self-repair** — nodes that detect a 2-hop slot collision or an
  ordering violation against a toward-sink neighbour decrement their
  slot (Figure 2's collision resolution), flagging ``Normal = 0`` so
  children re-check theirs (the ``receiveU`` action).  Slot values only
  ever decrease, which makes the gossip monotone and convergent.

The protocol is fully distributed: processes learn everything from
messages; the only global inputs are the constants of Table I.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..core import Schedule
from ..errors import ProtocolError, invalid_field
from ..simulator import (
    IdealNoise,
    NoiseModel,
    Process,
    Simulator,
    SLOT_ASSIGNED,
    SLOT_CHANGED,
)
from ..topology import NodeId, Topology
from .fast_setup import (
    DEFAULT_SETUP_KERNEL,
    SETUP_KERNELS,
    fast_setup_compilable,
    fast_setup_supported,
    run_fast_setup,
)
from .messages import DissemMessage, HelloMessage, NodeInfo


@dataclass(frozen=True)
class DasProtocolConfig:
    """Phase 1 parameters (the protectionless-DAS rows of Table I).

    Attributes
    ----------
    dissemination_period:
        The paper's ``Pdiss`` / timer ``α`` — one protocol round, seconds.
    num_slots:
        The sink's initial slot ``Δ`` (Figure 2's ``size`` constant;
        Table I ``slots``).
    neighbour_discovery_periods:
        ``NDP`` — rounds of HELLO beaconing before dissemination.
    setup_periods:
        ``MSP`` — total setup rounds before the source activates.
    jitter_fraction:
        Broadcasts occur uniformly inside ``[0, jitter_fraction × α)`` of
        each round, reproducing TOSSIM's CSMA arrival-order variance.
    dissemination_timeout:
        ``DT`` — a node stops re-broadcasting after this many consecutive
        disseminations with no local state change (message economy; a
        change re-arms the counter).
    """

    dissemination_period: float = 0.5
    num_slots: int = 100
    neighbour_discovery_periods: int = 4
    setup_periods: int = 80
    jitter_fraction: float = 0.8
    dissemination_timeout: int = 5

    def __post_init__(self) -> None:
        if self.dissemination_period <= 0:
            raise ProtocolError("dissemination period must be positive")
        if self.num_slots < 1:
            raise ProtocolError("num_slots must be positive")
        if self.neighbour_discovery_periods < 1:
            raise ProtocolError("at least one neighbour discovery period is needed")
        if self.setup_periods <= self.neighbour_discovery_periods:
            raise ProtocolError(
                "setup must include dissemination periods after neighbour discovery"
            )
        if not 0.0 < self.jitter_fraction <= 1.0:
            raise ProtocolError("jitter fraction must lie in (0, 1]")
        if self.dissemination_timeout < 1:
            raise ProtocolError("dissemination timeout must be at least 1")


class DasNodeProcess(Process):
    """One node's Figure 2 state machine."""

    #: Timer names.
    ROUND = "round"
    TX = "tx"

    def __init__(
        self,
        node: NodeId,
        is_sink: bool,
        config: DasProtocolConfig,
    ) -> None:
        super().__init__(node)
        self._is_sink = is_sink
        self._config = config

        # Figure 2 variables.
        self.my_neighbours: Set[NodeId] = set()
        self.potential_parents: List[NodeId] = []  # Npar, in arrival order
        self.children: Set[NodeId] = set()
        self.others: Dict[NodeId, tuple] = {}  # Others[j]
        self.ninfo: Dict[NodeId, NodeInfo] = {}
        self.hop: Optional[int] = None
        self.parent: Optional[NodeId] = None
        self.slot: Optional[int] = None
        self.normal: bool = True

        self._round = 0
        self._quiet_rounds = 0  # rounds without state change, for DT
        # Weak-repair mode: once Phase 3 refinement touches the
        # neighbourhood (a CHANGE or update message is heard), enforcing
        # the *strong* ordering rule would fight the decoy gradient, so
        # the node falls back to Def. 3's parent-only obligation.
        self._weak_mode = False

    # ------------------------------------------------------------------
    # Introspection used by the harness
    # ------------------------------------------------------------------
    @property
    def is_sink(self) -> bool:
        """Whether this process runs on the sink."""
        return self._is_sink

    @property
    def assigned(self) -> bool:
        """Whether the node has chosen a slot."""
        return self.slot is not None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._is_sink:
            # Figure 2 `init`: the sink triggers the protocol.
            self.hop = 0
            self.parent = None
            self.slot = self._config.num_slots
            self.ninfo[self.node] = NodeInfo(hop=0, slot=self.slot)
            self.sim.trace.record(
                self.sim.now, SLOT_ASSIGNED, node=self.node, slot=self.slot
            )
        self._schedule_round()

    def _schedule_round(self) -> None:
        self.set_timer(self.ROUND, 0.0)

    def on_timer(self, name: str, time: float) -> None:
        if name == self.ROUND:
            self._begin_round()
        elif name == self.TX:
            self._transmit()

    def _total_rounds(self) -> int:
        """How many protocol rounds this process runs in total.

        Phase 1 alone stops after ``setup_periods``; the SLP process
        extends this to cover the Phase 2/3 rounds.
        """
        return self._config.setup_periods

    def _begin_round(self) -> None:
        cfg = self._config
        if self._round >= self._total_rounds():
            return
        # Evaluate guarded actions on the state gathered last round.
        if self._round >= cfg.neighbour_discovery_periods:
            self._process_action()
        # Jittered broadcast inside this round.
        offset = self.sim.rng.uniform(
            0.0, cfg.jitter_fraction * cfg.dissemination_period
        )
        self.set_timer(self.TX, offset)
        self._round += 1
        self.set_timer(self.ROUND, cfg.dissemination_period)

    def _transmit(self) -> None:
        cfg = self._config
        if self._round <= cfg.neighbour_discovery_periods:
            self.broadcast(HelloMessage(sender=self.node))
            return
        # Dissemination economy (Table I's DT): a node that has seen no
        # state change for DT rounds keeps quiet until something changes.
        if self._quiet_rounds >= cfg.dissemination_timeout and self.normal:
            return
        self._quiet_rounds += 1
        snapshot = {self.node: self.ninfo.get(self.node, NodeInfo())}
        for n in self.my_neighbours:
            snapshot[n] = self.ninfo.get(n, NodeInfo())
        message = DissemMessage(
            normal=self.normal,
            sender=self.node,
            ninfo=snapshot,
            parent=self.parent,
        )
        self.broadcast(message)
        # The update has been announced; return to normal dissemination.
        self.normal = True

    # ------------------------------------------------------------------
    # Receive actions
    # ------------------------------------------------------------------
    def on_receive(self, sender: NodeId, message: object, time: float) -> None:
        if isinstance(message, HelloMessage):
            self.my_neighbours.add(message.sender)
            self.ninfo.setdefault(message.sender, NodeInfo())
            return
        if isinstance(message, DissemMessage):
            self._receive_dissem(message)

    def _merge_entry(self, node: NodeId, info: NodeInfo) -> bool:
        """Figure 2's ``Ninfo[n] := N[n]`` with a monotonicity guard.

        Slots only ever decrease in this protocol (assignment picks below
        the minimum seen; repairs decrement), so the entry with the
        smaller slot is always the fresher one.  Accepting only
        fresher-or-filling entries prevents stale gossip from resurrecting
        an old slot value after a repair.  Returns whether the local view
        changed — new knowledge must be re-disseminated so that 2-hop
        neighbours eventually see it.
        """
        if node == self.node:
            return False  # own entry is authoritative
        current = self.ninfo.get(node)
        if current is None or (not current.assigned and info.assigned):
            self.ninfo[node] = info
            return True
        if info.assigned and current.assigned and info.slot < current.slot:
            self.ninfo[node] = info
            return True
        return False

    def _receive_dissem(self, message: DissemMessage) -> None:
        sender = message.sender
        self.my_neighbours.add(sender)
        sender_info = message.entry(sender)
        learned = self._merge_entry(sender, sender_info)
        for n, info in message.ninfo.items():
            if info.hop is not None or info.slot is not None:
                learned = self._merge_entry(n, info) or learned
        if learned:
            # Fresh knowledge must keep flowing for 2-hop collision
            # detection; re-arm the dissemination economy counter.
            self._quiet_rounds = 0

        if not message.normal:
            # An update message means refinement reached this
            # neighbourhood: drop to weak-mode repair from here on.
            self._weak_mode = True
            # Figure 2 `receiveU`: update from our parent — repair our
            # slot below the parent's new one and cascade.
            if (
                self.parent == sender
                and self.slot is not None
                and sender_info.assigned
                and self.slot >= sender_info.slot
            ):
                self._change_slot(sender_info.slot - 1, reason="parent-update")
            return

        # Figure 2 `receiveN`: track potential parents while unassigned.
        if self.slot is None and sender_info.assigned:
            if sender not in self.potential_parents:
                self.potential_parents.append(sender)
            self.others[sender] = message.unassigned_neighbours()
        # Children discovery: a neighbour announcing us as its parent is
        # one of our children (the sink needs this to seed Phase 2).
        if message.parent == self.node:
            self.children.add(sender)

    # ------------------------------------------------------------------
    # The `process` guarded action
    # ------------------------------------------------------------------
    def _process_action(self) -> None:
        if self.slot is None:
            self._try_assign()
        if self.slot is not None:
            self._resolve_violations()

    def _try_assign(self) -> None:
        candidates = [
            j
            for j in self.potential_parents
            if self.ninfo.get(j, NodeInfo()).assigned
            and self.ninfo[j].hop is not None
        ]
        if not candidates:
            return
        # Parent: minimum hop, earliest heard among equals (list order).
        parent = min(
            candidates,
            key=lambda j: (self.ninfo[j].hop, self.potential_parents.index(j)),
        )
        self.parent = parent
        self.hop = self.ninfo[parent].hop + 1

        # Rank among the parent's unassigned children, from the Others
        # set the parent itself announced — all siblings that heard the
        # same broadcast compute consistent, distinct ranks.
        others = set(self.others.get(parent, ()))
        others.add(self.node)
        rank = sorted(others).index(self.node)

        # "updates its slot to be less than the minimum of all slots seen"
        seen = [
            info.slot
            for n, info in self.ninfo.items()
            if n != self.node and info.assigned
        ]
        min_seen = min(seen)
        self.slot = min_seen - rank - 1
        self.children = {
            n
            for n in self.my_neighbours
            if not self.ninfo.get(n, NodeInfo()).assigned
        }
        self.ninfo[self.node] = NodeInfo(hop=self.hop, slot=self.slot)
        self._quiet_rounds = 0
        self.sim.trace.record(
            self.sim.now,
            SLOT_ASSIGNED,
            node=self.node,
            slot=self.slot,
            parent=parent,
            hop=self.hop,
        )

    def _resolve_violations(self) -> None:
        assert self.slot is not None and self.hop is not None
        if self._weak_mode:
            # Def. 3 obligation only: stay strictly below the chosen
            # parent so the aggregation tree keeps working.
            if self.parent is not None:
                pinfo = self.ninfo.get(self.parent)
                if (
                    pinfo is not None
                    and pinfo.assigned
                    and self.slot >= pinfo.slot
                ):
                    self._change_slot(pinfo.slot - 1, reason="parent-ordering")
        else:
            # Ordering against toward-sink neighbours (strong DAS
            # condition 3): every 1-hop neighbour closer to the sink must
            # transmit later.
            for n in self.my_neighbours:
                info = self.ninfo.get(n)
                if info is None or not info.assigned or info.hop is None:
                    continue
                if info.hop == 0:
                    continue  # the neighbour is the sink; Def. 2 allows m = S
                if info.hop == self.hop - 1 and self.slot >= info.slot:
                    self._change_slot(info.slot - 1, reason="ordering")
        # Figure 2 collision resolution over 2-hop knowledge.
        for n, info in self.ninfo.items():
            if n == self.node or not info.assigned or info.hop is None:
                continue
            if info.slot == self.slot:
                if (self.hop, self.node) > (info.hop, n):
                    self._change_slot(self.slot - 1, reason="collision")

    def _change_slot(self, new_slot: int, reason: str) -> None:
        if self.slot == new_slot:
            return
        old = self.slot
        self.slot = new_slot
        self.ninfo[self.node] = NodeInfo(hop=self.hop, slot=new_slot)
        self.normal = False  # children must re-check (update dissemination)
        self._quiet_rounds = 0
        self.sim.trace.record(
            self.sim.now,
            SLOT_CHANGED,
            node=self.node,
            old=old,
            new=new_slot,
            reason=reason,
        )


@dataclass
class DasSetupResult:
    """Outcome of a full Phase 1 run.

    Attributes
    ----------
    schedule:
        The converged slot assignment (shifted so the minimum slot is 1).
    simulator:
        The engine the protocol ran in (trace carries message counts).
    messages_sent:
        Total broadcasts during setup — the overhead baseline.
    rounds:
        Setup rounds executed.
    """

    schedule: Schedule
    simulator: Simulator
    messages_sent: int
    rounds: int


def resolve_setup_kernel(setup_kernel: Optional[str], owner: str) -> str:
    """Validate a ``setup_kernel`` choice (``None`` = the default)."""
    resolved = setup_kernel if setup_kernel is not None else DEFAULT_SETUP_KERNEL
    if resolved not in SETUP_KERNELS:
        raise invalid_field(
            owner,
            "setup_kernel",
            setup_kernel,
            f"pick one of {SETUP_KERNELS} (or None for the default)",
        )
    return resolved


def run_das_setup(
    topology: Topology,
    config: Optional[DasProtocolConfig] = None,
    seed: Optional[int] = None,
    noise: Optional[NoiseModel] = None,
    process_factory: Optional[Callable[..., DasNodeProcess]] = None,
    setup_kernel: Optional[str] = None,
) -> DasSetupResult:
    """Run distributed Phase 1 on ``topology`` and extract the schedule.

    Raises :class:`~repro.errors.ProtocolError` when some node failed to
    obtain a slot within ``setup_periods`` rounds (e.g. under extreme
    loss); callers wanting partial results can inspect the simulator's
    processes directly.

    ``setup_kernel`` picks the engine: ``"fast"`` (the flat-round setup
    kernel of :mod:`repro.das.fast_setup`, the default) or ``"legacy"``
    (the event-heap engine).  Both are bit-identical — same RNG stream,
    same schedule, same traces — so the knob exists for bisection.  The
    fast kernel engages only when every process is exactly
    :class:`DasNodeProcess` (``process_factory`` lets harnesses inject
    subclasses, which fall back to the heap automatically) and the
    round geometry lets it preserve heap event order.
    """
    cfg = config if config is not None else DasProtocolConfig()
    kernel = resolve_setup_kernel(setup_kernel, "run_das_setup")
    sim = Simulator(
        topology,
        noise=noise if noise is not None else IdealNoise(),
        seed=seed,
        trace_kinds=frozenset({SLOT_ASSIGNED, SLOT_CHANGED}),
    )
    factory = process_factory if process_factory is not None else DasNodeProcess
    processes: Dict[NodeId, DasNodeProcess] = {}
    for node in topology.nodes:
        proc = factory(node, is_sink=(node == topology.sink), config=cfg)
        processes[node] = proc
        sim.register_process(proc)

    use_fast = (
        kernel == "fast"
        and fast_setup_compilable(processes, DasNodeProcess)
        and fast_setup_supported(cfg, sim.radio.propagation_delay)
    )
    if use_fast:
        state = run_fast_setup(sim, topology, cfg)
        state.sync(processes, cfg.setup_periods)
    else:
        sim.run(until=cfg.setup_periods * cfg.dissemination_period + 1e-9)

    unassigned = [n for n, p in processes.items() if not p.assigned]
    if unassigned:
        raise ProtocolError(
            f"{len(unassigned)} nodes never obtained a slot during setup "
            f"(first few: {sorted(unassigned)[:5]})"
        )

    raw_slots = {n: p.slot for n, p in processes.items()}
    parents = {n: p.parent for n, p in processes.items()}
    min_slot = min(raw_slots.values())
    if min_slot < 1:
        shift = 1 - min_slot
        raw_slots = {n: s + shift for n, s in raw_slots.items()}
    schedule = Schedule(raw_slots, parents, topology.sink)
    from ..simulator import SEND  # local import to avoid a cycle at module load

    return DasSetupResult(
        schedule=schedule,
        simulator=sim,
        messages_sent=sim.trace.count(SEND),
        rounds=cfg.setup_periods,
    )
