"""Data aggregation scheduling (Phase 1 of the paper's protocol).

Two routes to a schedule are provided:

* :func:`run_das_setup` — the faithful distributed protocol of Figure 2
  executing inside the discrete event simulator;
* :func:`centralized_das_schedule` — a seeded centralised generator that
  reproduces the same assignment rules (and the same arrival-order
  variance) without message exchange, for cheap experiment repeats.
"""

from .centralized import DEFAULT_NUM_SLOTS, centralized_das_schedule
from .fast_setup import (
    DEFAULT_SETUP_KERNEL,
    SETUP_KERNELS,
    fast_setup_compilable,
    fast_setup_supported,
    run_fast_setup,
)
from .messages import DissemMessage, HelloMessage, NodeInfo
from .protocol import DasNodeProcess, DasProtocolConfig, DasSetupResult, run_das_setup

__all__ = [
    "DEFAULT_NUM_SLOTS",
    "DEFAULT_SETUP_KERNEL",
    "DasNodeProcess",
    "DasProtocolConfig",
    "DasSetupResult",
    "DissemMessage",
    "HelloMessage",
    "NodeInfo",
    "SETUP_KERNELS",
    "centralized_das_schedule",
    "fast_setup_compilable",
    "fast_setup_supported",
    "run_das_setup",
    "run_fast_setup",
]
