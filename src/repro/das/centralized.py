"""Centralised (seeded) DAS schedule generator.

This is the deterministic equivalent of the distributed Phase 1 protocol
(Figure 2): it performs the same assignment — sink takes the top slot
``Δ``, each node picks a minimum-hop parent and a slot below the minimum
it has seen, sibling ranks spread siblings over distinct slots — but as
a plain algorithm over the topology instead of message exchange.

Run-to-run variance in TOSSIM comes from message *arrival order*:
parents, sibling ranks and collision-resolution outcomes all depend on
who was heard first.  The generator reproduces that with a seeded
random **priority** per node used for every tie-break (wave order,
parent choice, collision loser).  One seed ↦ one plausible outcome of
the distributed protocol.  Using priorities instead of node identifiers
matters: identifier-based tie-breaks (as in the literal guarded-command
text) systematically push high-identifier regions to lower slots, which
would bias the attacker's slot-gradient descent toward one particular
corner of a grid; timing-derived tie-breaks, like TOSSIM's, are
symmetric.  Benchmarks use this generator for the operational phase so
that thousands of repeats stay cheap; the distributed protocol itself is
exercised and validated in the tests and examples.

A repair fixpoint then enforces the two Def. 2 obligations the greedy
assignment can miss — strong ordering (condition 3) and 2-hop collision
freedom (condition 4) — by monotonically decrementing slots, mirroring
the protocol's own collision-resolution rule ("one of the two colliding
neighbours will update its slot").
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..core import Schedule
from ..errors import ProtocolError
from ..topology import NodeId, Topology

#: Default frame capacity, matching Table I (``slots = 100``).
DEFAULT_NUM_SLOTS = 100


def _priorities(
    topology: Topology, rng: Optional[random.Random]
) -> Dict[NodeId, float]:
    """Per-node tie-break priorities (lower = earlier/heard-first).

    With ``rng`` these are uniform random draws (TOSSIM-like timing);
    without, the node identifier — fully deterministic, used by tests.
    """
    if rng is None:
        return {n: float(n) for n in topology.nodes}
    return {n: rng.random() for n in topology.nodes}


def _wave_order(
    topology: Topology, priority: Dict[NodeId, float]
) -> List[NodeId]:
    """Nodes in BFS-wave order from the sink, waves sorted by priority.

    The priority order stands in for dissemination arrival order: within
    a wave (one hop ring), which node assigns first is timing-dependent
    in the distributed protocol.
    """
    order: List[NodeId] = []
    for layer in topology.bfs_layers():
        order.extend(sorted(layer, key=lambda n: (priority[n], n)))
    return order


def _repair(
    topology: Topology,
    slots: Dict[NodeId, int],
    priority: Dict[NodeId, float],
    max_passes: int,
) -> None:
    """Monotone decrement fixpoint enforcing Def. 2 conditions 3 and 4.

    Every adjustment strictly decreases one slot, so the loop terminates
    whenever a stable assignment exists within the pass budget; grids,
    lines, rings and random unit-disk graphs all converge in a handful
    of passes (asserted by the test-suite).
    """
    sink = topology.sink
    # Hoist the per-pass topology queries into flat tables once: the
    # fixpoint re-reads the same structure every pass, and the per-call
    # lookups used to dominate schedule construction.  ``tuple()`` of a
    # cached frozenset preserves its iteration order, so the collision
    # pairs are processed in exactly the order the direct iteration
    # produced — that order feeds the tie-breaks and must not change.
    nodes = [n for n in topology.nodes if n != sink]
    spc = {
        n: tuple(m for m in topology.shortest_path_children(n) if m != sink)
        for n in nodes
    }
    collision_pairs = {
        n: tuple(
            m for m in topology.collision_neighbourhood(n) if m != sink and m > n
        )
        for n in nodes
    }
    hop = {n: topology.sink_distance(n) for n in topology.nodes}
    for _ in range(max_passes):
        changed = False

        # Def. 2 condition 3: every shortest-path-toward-sink neighbour
        # must transmit later, i.e. hold a strictly larger slot.
        for n in nodes:
            slot_n = slots[n]
            for m in spc[n]:
                if slot_n >= slots[m]:
                    slot_n = slots[m] - 1
                    changed = True
            if slot_n != slots[n]:
                slots[n] = slot_n

        # Def. 2 condition 4 via Def. 1: no slot shared within 2 hops.
        # The deeper node yields; at equal depth the lower-priority
        # (later-heard) node yields, as arrival order would dictate.
        for n in nodes:
            for m in collision_pairs[n]:
                if slots[n] == slots[m]:
                    key_n = (hop[n], priority[n], n)
                    key_m = (hop[m], priority[m], m)
                    loser = m if key_m > key_n else n
                    slots[loser] -= 1
                    changed = True

        if not changed:
            return
    raise ProtocolError(
        f"slot repair did not converge within {max_passes} passes "
        f"on topology {topology.name!r}"
    )


def centralized_das_schedule(
    topology: Topology,
    num_slots: int = DEFAULT_NUM_SLOTS,
    seed: Optional[int] = None,
    jitter: bool = True,
    max_repair_passes: Optional[int] = None,
) -> Schedule:
    """Generate a strong DAS schedule the way Phase 1 would.

    Parameters
    ----------
    topology:
        The network to schedule.
    num_slots:
        The sink's initial slot ``Δ`` (Figure 2's ``size`` constant).
        Raw slot values may end below 1 after sibling ranking and repair;
        the result is then shifted upward uniformly, which preserves all
        ordering/equality properties.  Use :meth:`Schedule.compressed`
        to fit a frame when raw values overflow it.
    seed:
        Seed for the arrival-order priorities.  Two calls with the same
        seed return the same schedule.
    jitter:
        When ``False``, priorities are node identifiers — a single
        canonical schedule, convenient in unit tests.
    max_repair_passes:
        Budget for the repair fixpoint (default scales with network size).

    Returns
    -------
    Schedule
        A schedule satisfying Def. 2 (strong DAS); this is asserted by
        the test-suite via :func:`~repro.core.check_strong_das`.
    """
    rng = random.Random(seed) if jitter else None
    sink = topology.sink
    priority = _priorities(topology, rng)
    order = _wave_order(topology, priority)

    slots: Dict[NodeId, int] = {sink: num_slots}
    parents: Dict[NodeId, Optional[NodeId]] = {sink: None}
    arrival_index: Dict[NodeId, int] = {sink: 0}
    children_count: Dict[NodeId, int] = {}

    for position, n in enumerate(order, start=1):
        if n == sink:
            continue
        assigned_neighbours = [m for m in topology.neighbours(n) if m in slots]
        if not assigned_neighbours:
            raise ProtocolError(
                f"node {n} reached before any neighbour was assigned; "
                "wave order is inconsistent with the topology"
            )
        # Figure 2 `process`: parent = minimum-hop potential parent; the
        # arrival index stands in for "first heard" among equals.
        parent = min(
            assigned_neighbours,
            key=lambda m: (topology.sink_distance(m), arrival_index[m], priority[m]),
        )
        # Sibling rank: how many children this parent has already served
        # (the position of `n` in the parent's Others set, in arrival terms).
        rank = children_count.get(parent, 0)
        children_count[parent] = rank + 1
        # "updates its slot to be less than the minimum of all slots seen"
        min_seen = min(slots[m] for m in assigned_neighbours)
        slots[n] = min_seen - rank - 1
        parents[n] = parent
        arrival_index[n] = position

    passes = max_repair_passes
    if passes is None:
        passes = max(50, 10 * topology.num_nodes)
    _repair(topology, slots, priority, passes)

    # Shift into the positive range required by Schedule; uniform shifts
    # change no ordering or equality relation.
    min_slot = min(slots.values())
    if min_slot < 1:
        shift = 1 - min_slot
        slots = {n: s + shift for n, s in slots.items()}
    return Schedule(slots, parents, sink)
