"""Wire messages of the Phase 1 DAS protocol (Figure 2).

Messages are small frozen dataclasses.  ``DissemMessage`` carries the
sender's view of its neighbourhood — the ``{Ninfo[j] | j ∈ myN}`` payload
of the ``dissem`` action — which is how nodes learn their 2-hop state
for collision detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..topology import NodeId

#: Placeholder for "unknown" hop/slot, the paper's ``⊥``.
UNKNOWN = None


@dataclass(frozen=True)
class NodeInfo:
    """One ``Ninfo`` entry: what a node knows about one of its neighbours."""

    hop: Optional[int] = UNKNOWN
    slot: Optional[int] = UNKNOWN

    @property
    def assigned(self) -> bool:
        """Whether the described node has chosen a slot."""
        return self.slot is not UNKNOWN


@dataclass(frozen=True)
class HelloMessage:
    """Neighbour-discovery beacon sent during the NDP periods (Table I)."""

    sender: NodeId


@dataclass(frozen=True)
class DissemMessage:
    """The ``DISSEM`` broadcast of Figure 2.

    Attributes
    ----------
    normal:
        The paper's ``Normal`` flag — ``True`` for ordinary state
        dissemination, ``False`` for an *update* instructing children to
        repair their slots after Phase 3 refinement.
    sender:
        The broadcasting node ``i``.
    ninfo:
        The sender's neighbourhood view ``{j: Ninfo[j]}``, including its
        own entry — receivers merge this to learn 2-hop state.
    parent:
        The sender's chosen aggregation parent (``⊥`` while unassigned).
    """

    normal: bool
    sender: NodeId
    ninfo: Dict[NodeId, NodeInfo] = field(default_factory=dict)
    parent: Optional[NodeId] = None

    def entry(self, node: NodeId) -> NodeInfo:
        """The sender's knowledge of ``node`` (``⊥`` entry when absent)."""
        return self.ninfo.get(node, NodeInfo())

    def unassigned_neighbours(self) -> Tuple[NodeId, ...]:
        """Nodes the sender believes have no slot yet — the paper's
        ``Others`` set used for sibling ranking."""
        return tuple(
            sorted(
                n
                for n, info in self.ninfo.items()
                if n != self.sender and not info.assigned
            )
        )
