"""The setup-phase fast kernel: Phase 1-3 gossip without the event heap.

The legacy setup engine drives every dissemination round through the
generic discrete event machinery: one ``ROUND`` timer event and one
``TX`` timer event per node per round, one message dataclass (with a
per-neighbour ``NodeInfo`` snapshot dict) per broadcast, one scheduled
delivery event per surviving fan-out, and one ``on_receive`` dispatch
per directed delivery.  Profiling shows that for the paper's setup
workloads this machinery dominates run time, even though a round is
almost perfectly *regular*: every node draws one jitter offset, maybe
transmits once, and all deliveries land ``propagation_delay`` later.

:func:`run_fast_setup` exploits that regularity, mirroring the design
of the operational kernel in :mod:`repro.app.fast_kernel`:

* the per-round broadcast timeline is derived flat — jitter offsets are
  drawn at the round boundary in exactly the order the ``(time, seq)``
  heap fired ``ROUND`` events (ascending node id), then sorted into
  transmission order;
* node state lives in struct-of-arrays form — int-indexed ``slot`` /
  ``hop`` / ``parent`` / ``normal`` / ``quiet`` lists — and the set
  components of the Figure 2 state (``myN`` membership, the assigned
  view of ``Ninfo``, ``Others`` sets, children, the SLP ``from`` sets)
  are node-indexed **bitmask ints**, so ``_merge_entry`` set unions
  become ``|=`` and sibling ranks become a masked ``bit_count()``;
* each broadcast draws its noise decisions through one
  :meth:`~repro.simulator.noise.NoiseModel.delivers_block` call (the
  exact RNG stream of :meth:`RadioMedium.transmit`) and its surviving
  fan-out is buffered as a *deferred in-round delivery* — a FIFO whose
  ``(time, seq)`` entries are merged against the remaining transmissions
  of the round, reproducing the heap's interleaving exactly (a delivery
  landing between two jittered transmissions is processed between
  them, and a search/change forward spawned *during* a delivery draws
  its noise inline mid-fan-out, as the legacy ``broadcast`` call does);
* the guarded assignment/self-repair actions (``_try_assign``,
  ``_resolve_violations``) run against the arrays at each boundary.

**Equivalence contract.**  A fast-setup run is bit-identical to the
legacy engine: same RNG draw order (per-node jitter in round order,
noise blocks in neighbour order at transmission time, search/refinement
tie-breaks at delivery time), same ``Schedule``, same trace records and
counters (``SLOT_ASSIGNED`` / ``SLOT_CHANGED`` / ``PHASE`` details
included), same ``messages_sent``.  ``tests/test_fast_setup.py``
enforces this differentially across topologies, noise models and seeds.

Two details make bit-identity subtle enough to deserve a note:

* *Iteration-order parity.*  Two legacy loops iterate Python
  containers whose order is insertion-history dependent and **observable**
  through ``SLOT_CHANGED`` trace records (several repairs can fire
  within one loop): the strong-ordering scan over the ``my_neighbours``
  set and the collision scan over the ``ninfo`` dict.  The kernel
  therefore maintains a real ``set`` and a real insertion-ordered
  ``dict`` per node *alongside* the bitmasks, mutated by exactly the
  same operation sequence, and iterates those where the legacy engine
  does.  Everything order-insensitive runs on the masks.
* *Timing gate.*  The flat round loop assumes every transmission and
  every delivery (including search/change forward chains) lands
  strictly before the next round boundary; :func:`fast_setup_supported`
  checks the worst case statically and the harness falls back to the
  legacy engine otherwise (e.g. ``jitter_fraction == 1.0``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..errors import ProtocolError
from ..simulator import PHASE, SLOT_ASSIGNED, SLOT_CHANGED, Simulator
from ..simulator import trace as trace_kinds
from ..telemetry import active_tracer
from ..topology import NodeId, Topology
from .messages import NodeInfo

#: Setup-engine identifiers for ``run_das_setup`` / ``run_slp_setup``.
FAST_SETUP_KERNEL = "fast"
LEGACY_SETUP_KERNEL = "legacy"
SETUP_KERNELS = (FAST_SETUP_KERNEL, LEGACY_SETUP_KERNEL)

#: The engine used when a call does not choose one.  Both engines are
#: bit-identical (differentially tested), so the fastest is the default;
#: ``legacy`` remains selectable so a regression can be bisected.
DEFAULT_SETUP_KERNEL = FAST_SETUP_KERNEL


def search_ttl(search_distance: int) -> int:
    """The Phase 2 search's hop budget for a given ``SD``.

    Shared by the legacy ``startS`` action, the kernel's in-loop copy
    and the :func:`fast_setup_supported` timing gate — the gate's
    worst-case chain length must track the actual TTL, so all three
    sites read one formula.
    """
    return 8 * search_distance + 32


def fast_setup_supported(
    config,
    propagation_delay: float,
    search_distance: Optional[int] = None,
    change_length: Optional[int] = None,
) -> bool:
    """Whether the flat round loop preserves legacy event order.

    The kernel drains a round's deliveries before the next boundary, so
    it matches the heap only while the latest possible delivery —
    ``jitter_fraction × P`` plus the longest broadcast chain — lands
    strictly before ``P``.  Plain DAS chains are one hop (a delivery
    never spawns a broadcast); the SLP search/refinement phases chain up
    to ``ttl + 1`` search hops plus ``change_length`` change hops, all
    ``propagation_delay`` apart.  Every realistic configuration passes
    (0.4 s of jitter and a few ms of chain against a 0.5 s round);
    degenerate ones (``jitter_fraction == 1.0``) fall back.
    """
    period = config.dissemination_period
    chain_hops = 1
    if search_distance is not None:
        chain_hops += search_ttl(search_distance) + 2 + (change_length or 0)
    latest = config.jitter_fraction * period + chain_hops * propagation_delay
    return latest < period


def fast_setup_compilable(processes: Dict[NodeId, object], exact_type: type) -> bool:
    """Whether every process is *exactly* the stock protocol class.

    The kernel bypasses ``on_receive`` / ``on_timer`` dispatch entirely,
    so — like the operational lane's :func:`~repro.app.fast_kernel.\
fast_lane_compilable` — it engages only when no subclass could have
    overridden the behaviour it compiles away.
    """
    return all(type(p) is exact_type for p in processes.values())


class FastSetupState:
    """Struct-of-arrays Figure 2 (+3/+4) state for one setup run.

    Nodes are mapped to dense indices in sorted-id order (so index
    order equals id order, which is what lets sibling ranks and
    ``sorted(...)`` reconstructions run on bitmasks).  See the module
    docstring for which components are masks and which stay as real
    ``set`` / ``dict`` objects for iteration-order parity.
    """

    __slots__ = (
        "order", "index", "nbr_ids", "nbr_idx", "sink_idx",
        "slot", "hop", "parent", "normal", "quiet", "weak",
        "myn_set", "myn_mask", "nin", "aview", "minseen",
        "pparents", "others", "children_mask",
        "from_mask", "is_start", "is_decoy", "search_forwarded",
        "redirect_length", "search_sent", "change_sent",
        "rounds_run",
    )

    def __init__(self, topology: Topology) -> None:
        metrics = topology.metrics
        self.order: Tuple[NodeId, ...] = metrics.order
        self.index: Dict[NodeId, int] = metrics.index
        self.nbr_ids: Tuple[Tuple[NodeId, ...], ...] = metrics.neighbour_ids
        self.nbr_idx: Tuple[Tuple[int, ...], ...] = metrics.adj
        self.sink_idx: int = metrics.index[topology.sink]
        n = len(self.order)
        self.slot: List[Optional[int]] = [None] * n
        self.hop: List[Optional[int]] = [None] * n
        self.parent: List[Optional[NodeId]] = [None] * n
        self.normal: List[bool] = [True] * n
        self.quiet: List[int] = [0] * n
        self.weak: List[bool] = [False] * n
        #: the real my_neighbours sets (iteration-order parity).
        self.myn_set: List[set] = [set() for _ in range(n)]
        self.myn_mask: List[int] = [0] * n
        #: insertion-ordered Ninfo: node id -> (hop, slot) tuples.
        self.nin: List[Dict[NodeId, Tuple]] = [{} for _ in range(n)]
        #: bitmask of indices whose Ninfo entry is assigned (incl. own).
        self.aview: List[int] = [0] * n
        #: running min slot over assigned non-self entries (slots only
        #: ever decrease, so the incremental min is the true min).
        self.minseen: List[Optional[int]] = [None] * n
        self.pparents: List[List[NodeId]] = [[] for _ in range(n)]
        #: parent id -> bitmask of its announced unassigned neighbours.
        self.others: List[Dict[NodeId, int]] = [{} for _ in range(n)]
        self.children_mask: List[int] = [0] * n
        # SLP (Figures 3/4) state; untouched in plain DAS runs.
        self.from_mask: List[int] = [0] * n
        self.is_start: List[bool] = [False] * n
        self.is_decoy: List[bool] = [False] * n
        self.search_forwarded: List[bool] = [False] * n
        self.redirect_length: List[int] = [0] * n
        self.search_sent: List[int] = [0] * n
        self.change_sent: List[int] = [0] * n
        self.rounds_run = 0

    # ------------------------------------------------------------------
    def _mask_ids(self, mask: int) -> List[NodeId]:
        """The node ids of ``mask``'s set bits, ascending (== sorted)."""
        order = self.order
        ids: List[NodeId] = []
        while mask:
            low = mask & -mask
            ids.append(order[low.bit_length() - 1])
            mask ^= low
        return ids

    def sync(self, processes: Dict[NodeId, object], total_rounds: int) -> None:
        """Install the final state onto the (never-started) processes.

        After this, every attribute the harness and the result
        extraction read — ``slot``/``hop``/``parent``, ``my_neighbours``,
        ``children``, ``ninfo``, the SLP flags and counters — matches
        what a legacy run would have left behind.
        """
        index = self.index
        slp = None
        for node, proc in processes.items():
            i = index[node]
            proc.slot = self.slot[i]
            proc.hop = self.hop[i]
            proc.parent = self.parent[i]
            proc.normal = self.normal[i]
            proc.my_neighbours = self.myn_set[i]
            proc.potential_parents = self.pparents[i]
            proc.children = set(self._mask_ids(self.children_mask[i]))
            proc.others = {
                j: tuple(self._mask_ids(mask))
                for j, mask in self.others[i].items()
            }
            proc.ninfo = {
                n: NodeInfo(hop=h, slot=s) for n, (h, s) in self.nin[i].items()
            }
            proc._round = total_rounds
            proc._quiet_rounds = self.quiet[i]
            proc._weak_mode = self.weak[i]
            if slp is None:
                slp = hasattr(proc, "from_set")
            if slp:
                proc.from_set = set(self._mask_ids(self.from_mask[i]))
                proc.is_start_node = self.is_start[i]
                proc.is_decoy = self.is_decoy[i]
                proc.search_forwarded = self.search_forwarded[i]
                proc.redirect_length = self.redirect_length[i]
                proc.search_sent = self.search_sent[i]
                proc.change_sent = self.change_sent[i]


def run_fast_setup(
    sim: Simulator,
    topology: Topology,
    config,
    search_distance: Optional[int] = None,
    change_length: Optional[int] = None,
    total_rounds: Optional[int] = None,
) -> FastSetupState:
    """Execute the distributed setup phases on flat per-round tables.

    With ``search_distance``/``change_length`` set (and ``total_rounds``
    covering the refinement rounds) the SLP Phases 2/3 run in-loop; left
    ``None``, the run is plain Phase 1 DAS.  The simulator provides the
    RNG, the noise model and the trace recorder — nothing is scheduled
    on its event queue.  See the module docstring for the equivalence
    contract; may raise :class:`~repro.errors.ProtocolError` exactly
    where the legacy engine would (the sink's ``startS`` guard, the
    refinement min-slot guard).
    """
    state = FastSetupState(topology)
    rng = sim.rng
    trace = sim.trace
    record = trace.record
    radio = sim.radio
    radio.reset()  # the legacy path resets via _start_processes
    noise = radio.noise
    delivers_block = noise.delivers_block
    delay = radio.propagation_delay

    order = state.order
    index = state.index
    nbr_ids = state.nbr_ids
    nbr_idx = state.nbr_idx
    n = len(order)
    node_range = range(n)
    sink_idx = state.sink_idx

    slot = state.slot
    hop = state.hop
    parent = state.parent
    normal = state.normal
    quiet = state.quiet
    weak = state.weak
    myn_set = state.myn_set
    myn_mask = state.myn_mask
    nin = state.nin
    aview = state.aview
    minseen = state.minseen
    pparents = state.pparents
    others = state.others
    children_mask = state.children_mask
    from_mask = state.from_mask

    cfg = config
    period = cfg.dissemination_period
    ndp = cfg.neighbour_discovery_periods
    timeout = cfg.dissemination_timeout
    jitter_width = cfg.jitter_fraction * period
    rounds = total_rounds if total_rounds is not None else cfg.setup_periods
    slp = search_distance is not None
    msp = cfg.setup_periods

    sends = delivered = drops = 0
    #: deferred in-round deliveries:
    #: (time, seq, kind, sender_idx, surviving_idx_tuple, payload).
    pending: deque = deque()
    EMPTY = (None, None)

    # ------------------------------------------------------------------
    # Figure 2 helpers over the arrays
    # ------------------------------------------------------------------
    def merge(i: int, n_id: NodeId, n_idx: int, h, s) -> bool:
        """``_merge_entry``: freshness-guarded Ninfo adoption."""
        if n_idx == i:
            return False  # own entry is authoritative
        nin_i = nin[i]
        cur = nin_i.get(n_id)
        if cur is None:
            nin_i[n_id] = (h, s)
            if s is not None:
                aview[i] |= 1 << n_idx
                ms = minseen[i]
                if ms is None or s < ms:
                    minseen[i] = s
            return True
        if cur[1] is None:
            if s is not None:
                nin_i[n_id] = (h, s)
                aview[i] |= 1 << n_idx
                ms = minseen[i]
                if ms is None or s < ms:
                    minseen[i] = s
                return True
            return False
        if s is not None and s < cur[1]:
            nin_i[n_id] = (h, s)
            if s < minseen[i]:
                minseen[i] = s
            return True
        return False

    def change_slot(i: int, new_slot: int, reason: str, time: float) -> None:
        old = slot[i]
        if old == new_slot:
            return
        slot[i] = new_slot
        nin[i][order[i]] = (hop[i], new_slot)
        normal[i] = False
        quiet[i] = 0
        record(
            time, SLOT_CHANGED, node=order[i], old=old, new=new_slot, reason=reason
        )

    def try_assign(i: int, time: float) -> None:
        nin_i = nin[i]
        best = None
        best_key = None
        for pos, j in enumerate(pparents[i]):
            entry = nin_i.get(j)
            if entry is None or entry[1] is None or entry[0] is None:
                continue
            key = (entry[0], pos)
            if best_key is None or key < best_key:
                best_key = key
                best = j
        if best is None:
            return
        parent[i] = best
        my_hop = nin_i[best][0] + 1
        hop[i] = my_hop
        # Rank among the parent's announced unassigned children: the
        # count of mask bits below our own index (index order == id
        # order, so this is sorted(others ∪ {self}).index(self)).
        omask = others[i].get(best, 0)
        rank = (omask & ((1 << i) - 1)).bit_count()
        my_slot = minseen[i] - rank - 1
        slot[i] = my_slot
        children_mask[i] = myn_mask[i] & ~aview[i]
        nin_i[order[i]] = (my_hop, my_slot)
        aview[i] |= 1 << i
        quiet[i] = 0
        record(
            time,
            SLOT_ASSIGNED,
            node=order[i],
            slot=my_slot,
            parent=best,
            hop=my_hop,
        )

    def resolve_violations(i: int, time: float) -> None:
        nin_i = nin[i]
        if weak[i]:
            # Def. 3 obligation only: stay strictly below the parent.
            p = parent[i]
            if p is not None:
                entry = nin_i.get(p)
                if entry is not None and entry[1] is not None and slot[i] >= entry[1]:
                    change_slot(i, entry[1] - 1, "parent-ordering", time)
        else:
            # Strong condition 3, iterating the real set (order parity).
            my_hop = hop[i]
            for nb in myn_set[i]:
                entry = nin_i.get(nb)
                if entry is None or entry[1] is None or entry[0] is None:
                    continue
                if entry[0] == 0:
                    continue  # the sink; Def. 2 allows m = S
                if entry[0] == my_hop - 1 and slot[i] >= entry[1]:
                    change_slot(i, entry[1] - 1, "ordering", time)
        # Collision resolution, iterating the insertion-ordered dict.
        own = order[i]
        for n_id, entry in nin_i.items():
            if n_id == own or entry[1] is None or entry[0] is None:
                continue
            if entry[1] == slot[i]:
                if (hop[i], own) > (entry[0], n_id):
                    change_slot(i, slot[i] - 1, "collision", time)

    # ------------------------------------------------------------------
    # Broadcast / delivery
    # ------------------------------------------------------------------
    def transmit(i: int, kind: str, payload, time: float, seq: int) -> int:
        """SEND accounting + noise block + deferred delivery push.

        Mirrors ``RadioMedium.transmit`` + the delivery scheduling of
        ``broadcast``: the noise decisions draw *now*, in neighbour
        order, and the surviving fan-out is queued at ``time + delay``.
        Returns the next free sequence number.
        """
        nonlocal sends, drops
        sends += 1
        receivers = nbr_ids[i]
        if not receivers:
            return seq
        flags = delivers_block(order[i], receivers, rng)
        if all(flags):
            surviving = nbr_idx[i]
        else:
            surviving = tuple(
                r for r, flag in zip(nbr_idx[i], flags) if flag
            )
            drops += len(flags) - len(surviving)
        if surviving:
            pending.append((time + delay, seq, kind, i, surviving, payload))
            return seq + 1
        return seq

    def min_slot_child(i: int) -> Optional[NodeId]:
        """Figure 3's selection: minimum ``(slot, id)`` assigned child."""
        nin_i = nin[i]
        best = None
        best_key = None
        mask = children_mask[i]
        while mask:
            low = mask & -mask
            mask ^= low
            c = order[low.bit_length() - 1]
            entry = nin_i.get(c)
            if entry is None or entry[1] is None:
                continue
            key = (entry[1], c)
            if best_key is None or key < best_key:
                best_key = key
                best = c
        return best

    def neighbourhood_min_slot(i: int) -> int:
        values = [slot[i]] if slot[i] is not None else []
        nin_i = nin[i]
        for nb in self_neighbour_ids(i):
            entry = nin_i.get(nb)
            if entry is not None and entry[1] is not None:
                values.append(entry[1])
        if not values:
            raise ProtocolError(
                f"node {order[i]} has no slot knowledge to refine"
            )
        return min(values)

    def self_neighbour_ids(i: int) -> List[NodeId]:
        """``sorted(my_neighbours)`` reconstructed from the bitmask."""
        return state._mask_ids(myn_mask[i])

    def forward_search(i: int, distance: int, ttl: int, time: float, seq: int) -> int:
        """Figure 3's one-hop forward (``d > 0`` and fallback branches)."""
        if ttl <= 0:
            return seq  # hop budget exhausted; the search dies here
        fmask = from_mask[i]
        child = min_slot_child(i)
        if (
            distance > 0
            and child is not None
            and not (fmask >> index[child]) & 1
        ):
            target = child
        else:
            p = parent[i]
            fresh = [
                nb
                for nb in self_neighbour_ids(i)
                if nb != p and not (fmask >> index[nb]) & 1
            ]
            if fresh:
                target = fresh[0] if distance > 0 else rng.choice(fresh)
            else:
                revisit = [nb for nb in self_neighbour_ids(i) if nb != p]
                if not revisit:
                    return seq  # isolated leaf: nowhere to go at all
                target = rng.choice(revisit)
        state.search_forwarded[i] = True
        state.search_sent[i] += 1
        return transmit(i, "search", (target, distance, ttl - 1), time, seq)

    def start_refinement(i: int, spares: List[NodeId], time: float, seq: int) -> int:
        """Figure 4 ``startR``: recruit the first decoy node."""
        target = rng.choice(sorted(spares))
        base = neighbourhood_min_slot(i)
        state.change_sent[i] += 1
        return transmit(
            i, "change", (target, base, state.redirect_length[i] - 1), time, seq
        )

    def deliver(event) -> int:
        """Fan one buffered broadcast out, in neighbour order.

        Search/change forwards spawned by a receiver transmit inline —
        mid-fan-out — exactly as the legacy ``broadcast`` call inside
        ``on_receive`` does, pushing their own deferred deliveries.
        """
        nonlocal delivered
        time, seq, kind, s_idx, surviving, payload = event
        delivered += len(surviving)
        s_id = order[s_idx]
        s_bit = 1 << s_idx
        next_seq = seq + 1
        if kind == "dissem":
            s_entry, s_normal, s_parent, entries, unassigned = payload
            se_h, se_s = s_entry
            for r in surviving:
                myn_set[r].add(s_id)
                myn_mask[r] |= s_bit
                learned = merge(r, s_id, s_idx, se_h, se_s)
                for (n_id, n_idx, h, s) in entries:
                    if merge(r, n_id, n_idx, h, s):
                        learned = True
                if learned:
                    quiet[r] = 0
                if not s_normal:
                    # receiveU: refinement reached this neighbourhood.
                    weak[r] = True
                    if (
                        parent[r] == s_id
                        and slot[r] is not None
                        and se_s is not None
                        and slot[r] >= se_s
                    ):
                        change_slot(r, se_s - 1, "parent-update", time)
                    continue
                if slot[r] is None and se_s is not None:
                    if s_id not in pparents[r]:
                        pparents[r].append(s_id)
                    others[r][s_id] = unassigned
                if s_parent == order[r]:
                    children_mask[r] |= s_bit
        elif kind == "hello":
            for r in surviving:
                myn_set[r].add(s_id)
                myn_mask[r] |= s_bit
                if s_id not in nin[r]:
                    nin[r][s_id] = EMPTY
        elif kind == "search":
            target, distance, ttl = payload
            for r in surviving:
                from_mask[r] |= s_bit
                weak[r] = True
                if target != order[r]:
                    continue
                if distance > 0:
                    next_seq = forward_search(r, distance - 1, ttl, time, next_seq)
                    continue
                # d = 0: can this node host the redirection?
                p = parent[r]
                fmask = from_mask[r]
                spares = [
                    j
                    for j in pparents[r]
                    if j != p and j != s_id and not (fmask >> index[j]) & 1
                ]
                if spares:
                    state.is_start[r] = True
                    state.redirect_length[r] = change_length
                    record(time, PHASE, phase="start-node", node=order[r])
                    next_seq = start_refinement(r, spares, time, next_seq)
                else:
                    next_seq = forward_search(r, 0, ttl, time, next_seq)
        else:  # change
            target, base, remaining = payload
            for r in surviving:
                weak[r] = True
                from_mask[r] |= s_bit
                if target != order[r]:
                    continue
                p = parent[r]
                fmask = from_mask[r]
                candidates = [
                    nb
                    for nb in self_neighbour_ids(r)
                    if nb != p and not (fmask >> index[nb]) & 1
                ]
                if remaining > 0 and candidates:
                    state.is_decoy[r] = True
                    change_slot(r, base - 1, "decoy", time)
                    new_base = neighbourhood_min_slot(r)
                    new_target = rng.choice(candidates)
                    state.change_sent[r] += 1
                    next_seq = transmit(
                        r,
                        "change",
                        (new_target, new_base, remaining - 1),
                        time,
                        next_seq,
                    )
                elif remaining == 0 and candidates:
                    # Final decoy node: adopt the slot, open the updates.
                    state.is_decoy[r] = True
                    change_slot(r, base - 1, "decoy", time)
        return next_seq

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    # Phase spans: `setup.phase1` covers neighbour discovery + DAS
    # assignment, switching to `setup.phase23` at the startS round
    # boundary (SLP runs only).  One open span; closed in the finally.
    tracer = active_tracer()
    phase_span = None
    if tracer is not None:
        phase_span = tracer.begin("setup.phase1", rounds=rounds, slp=slp)
    try:
        # The sink's Figure 2 `init`, fired by Process.start at t = 0.
        hop[sink_idx] = 0
        parent[sink_idx] = None
        slot[sink_idx] = cfg.num_slots
        nin[sink_idx][order[sink_idx]] = (0, cfg.num_slots)
        aview[sink_idx] |= 1 << sink_idx
        record(0.0, SLOT_ASSIGNED, node=order[sink_idx], slot=cfg.num_slots)

        boundary = 0.0
        uniform = rng.uniform
        for rnd in range(rounds):
            state.rounds_run = rnd
            if tracer is not None and slp and rnd == msp:
                tracer.end(phase_span)
                phase_span = tracer.begin(
                    "setup.phase23", search_distance=search_distance
                )
            # --- boundary: guarded actions + jitter draws, in the heap's
            # ROUND-event order (ascending node id, preserved round over
            # round because each firing re-schedules its own successor).
            txs: List[Tuple[float, int, int]] = []
            seq = 0
            process_actions = rnd >= ndp
            for i in node_range:
                if process_actions:
                    if slot[i] is None:
                        try_assign(i, boundary)
                    if slot[i] is not None:
                        resolve_violations(i, boundary)
                txs.append((boundary + uniform(0.0, jitter_width), seq, i))
                seq += 2  # the TX push, then the next ROUND push
                if slp and rnd == msp and i == sink_idx:
                    # Figure 3 `startS`, fired inside the sink's ROUND
                    # event right after it re-armed its timers.
                    target = min_slot_child(sink_idx)
                    if target is None:
                        raise ProtocolError(
                            "the sink has no assigned children to search via"
                        )
                    record(
                        boundary,
                        PHASE,
                        phase="search-start",
                        node=order[sink_idx],
                        target=target,
                    )
                    state.search_sent[sink_idx] += 1
                    seq = transmit(
                        sink_idx,
                        "search",
                        (target, search_distance, search_ttl(search_distance)),
                        boundary,
                        seq,
                    )

            # --- in-round: merge jittered transmissions with deferred
            # deliveries in exact (time, seq) order.
            txs.sort()
            hello_round = rnd + 1 <= ndp
            qi = 0
            ntx = len(txs)
            while qi < ntx or pending:
                if pending and (
                    qi >= ntx or pending[0][:2] < txs[qi][:2]
                ):
                    seq = deliver(pending.popleft())
                    continue
                t, s, i = txs[qi]
                qi += 1
                if hello_round:
                    seq = transmit(i, "hello", None, t, seq)
                    continue
                # Dissemination economy (Table I's DT).
                if quiet[i] >= timeout and normal[i]:
                    continue
                quiet[i] += 1
                # Snapshot {self} ∪ myN at transmission time, in the
                # legacy dict's insertion order (own entry first, then
                # the my_neighbours set's iteration order) — receivers
                # create Ninfo entries in encounter order, and that
                # order is observable through the collision scan.
                nin_i = nin[i]
                own = order[i]
                own_entry = nin_i.get(own, EMPTY)
                entries = (
                    [(own, i, own_entry[0], own_entry[1])]
                    if own_entry[0] is not None or own_entry[1] is not None
                    else []
                )
                unassigned = 0
                for nb in myn_set[i]:
                    e = nin_i.get(nb, EMPTY)
                    nb_idx = index[nb]
                    if e[1] is None:
                        unassigned |= 1 << nb_idx
                    if e[0] is not None or e[1] is not None:
                        entries.append((nb, nb_idx, e[0], e[1]))
                seq = transmit(
                    i,
                    "dissem",
                    (own_entry, normal[i], parent[i], entries, unassigned),
                    t,
                    seq,
                )
                # The update has been announced; back to normal mode.
                normal[i] = True
            boundary += period
            state.rounds_run = rnd + 1
    finally:
        trace.bump_many(trace_kinds.SEND, sends)
        trace.bump_many(trace_kinds.DELIVER, delivered)
        trace.bump_many(trace_kinds.DROP, drops)
        if phase_span is not None:
            tracer.end(phase_span)

    return state
