"""Checkers for the formal DAS definitions (Definitions 1–3).

These functions are the library's ground truth: the distributed Phase 1
protocol, the centralised generator and the Phase 3 refinement are all
tested against them, and the property-based tests assert that refinement
preserves (weak) DAS validity.

Each checker returns a :class:`DasCheckResult` carrying every violation
found (not just the first), so failures in tests and in the decision
procedure read like model-checker counterexamples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import networkx as nx

from ..topology import NodeId, Topology
from .schedule import Schedule

#: Violation kind constants (stable strings, usable in assertions).
MISSING_SLOT = "missing-slot"
UNKNOWN_NODE = "unknown-node"
ORDERING = "ordering"
COLLISION = "collision"


@dataclass(frozen=True)
class DasViolation:
    """A single violated constraint of Def. 2/3.

    Attributes
    ----------
    kind:
        One of :data:`MISSING_SLOT`, :data:`UNKNOWN_NODE`,
        :data:`ORDERING`, :data:`COLLISION`.
    nodes:
        The nodes involved (one for coverage/ordering, two for collisions).
    detail:
        Human-readable explanation, suitable for test failure output.
    """

    kind: str
    nodes: Tuple[NodeId, ...]
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"[{self.kind}] nodes={self.nodes}: {self.detail}"


@dataclass
class DasCheckResult:
    """Outcome of checking a schedule against Def. 2 or Def. 3."""

    strong: bool
    violations: List[DasViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the schedule satisfies the definition."""
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def violations_of_kind(self, kind: str) -> List[DasViolation]:
        """Return only the violations of a given kind."""
        return [v for v in self.violations if v.kind == kind]

    def summary(self) -> str:
        """One-line summary used by the CLI and test messages."""
        name = "strong" if self.strong else "weak"
        if self.ok:
            return f"schedule is a valid {name} DAS"
        return (
            f"schedule violates {name} DAS: "
            + "; ".join(str(v) for v in self.violations[:5])
            + ("" if len(self.violations) <= 5 else f" (+{len(self.violations) - 5} more)")
        )


def is_non_colliding(topology: Topology, schedule: Schedule, node: NodeId) -> bool:
    """Definition 1: is ``node``'s slot non-colliding?

    A slot ``i`` is non-colliding for ``n`` iff no member of the 2-hop
    neighbourhood ``CG(n)`` is assigned slot ``i``.
    """
    slot = schedule.slot_of(node)
    return all(
        m not in schedule or schedule.slot_of(m) != slot
        for m in topology.collision_neighbourhood(node)
    )


def _coverage_violations(topology: Topology, schedule: Schedule) -> List[DasViolation]:
    """Check Def. 2/3 conditions 1–2.

    Condition 1 (each node in at most one σi) holds by construction —
    :class:`Schedule` stores a single slot per node — so coverage reduces
    to condition 2: every node except the sink carries a slot, and no
    phantom senders exist outside the topology.
    """
    violations: List[DasViolation] = []
    for node in topology.nodes:
        if node == topology.sink:
            continue
        if node not in schedule:
            violations.append(
                DasViolation(
                    MISSING_SLOT,
                    (node,),
                    "node has no transmission slot (Def. 2/3 condition 2)",
                )
            )
    for node in schedule.nodes:
        if node not in topology:
            violations.append(
                DasViolation(
                    UNKNOWN_NODE,
                    (node,),
                    "scheduled node is not part of the topology",
                )
            )
    return violations


def _collision_violations(topology: Topology, schedule: Schedule) -> List[DasViolation]:
    """Check condition 4: no two senders in the same slot within 2 hops."""
    violations: List[DasViolation] = []
    for sigma in schedule.sender_sets():
        members = sorted(m for m in sigma if m in topology)
        for i, n in enumerate(members):
            cg = topology.collision_neighbourhood(n)
            for m in members[i + 1 :]:
                if m in cg:
                    violations.append(
                        DasViolation(
                            COLLISION,
                            (n, m),
                            f"both transmit in slot {schedule.slot_of(n)} but are "
                            "within each other's 2-hop neighbourhood (Def. 1)",
                        )
                    )
    return violations


def _has_path_avoiding(topology: Topology, start: NodeId, goal: NodeId, avoid: NodeId) -> bool:
    """Whether a path ``start ⇝ goal`` exists that never visits ``avoid``.

    Used by the weak DAS check: Def. 3 condition 3 requires a neighbour
    ``m`` such that ``n·m···S`` is a *path*, i.e. a simple walk to the
    sink that does not return through ``n`` itself.
    """
    if start == goal:
        return True
    reduced = nx.restricted_view(topology.graph, [avoid], [])
    if start not in reduced or goal not in reduced:
        return False
    return nx.has_path(reduced, start, goal)


def check_strong_das(topology: Topology, schedule: Schedule) -> DasCheckResult:
    """Check Definition 2 (strong DAS) and report every violation.

    Condition 3 of Def. 2 requires, for every sender ``n``, that *every*
    neighbour ``m`` lying on a shortest path from ``n`` to the sink
    transmits in a strictly later slot (or is the sink itself).
    """
    result = DasCheckResult(strong=True)
    result.violations.extend(_coverage_violations(topology, schedule))
    if result.violations_of_kind(MISSING_SLOT):
        # Ordering/collision checks would raise on unscheduled nodes.
        return result

    sink = topology.sink
    for n in topology.nodes:
        if n == sink:
            continue
        n_slot = schedule.slot_of(n)
        for m in topology.shortest_path_children(n):
            if m == sink:
                continue
            if schedule.slot_of(m) <= n_slot:
                result.violations.append(
                    DasViolation(
                        ORDERING,
                        (n, m),
                        f"{m} lies on a shortest path {n}->{m}->...->sink but "
                        f"transmits in slot {schedule.slot_of(m)} <= {n_slot} "
                        "(Def. 2 condition 3)",
                    )
                )
    result.violations.extend(_collision_violations(topology, schedule))
    return result


def check_weak_das(topology: Topology, schedule: Schedule) -> DasCheckResult:
    """Check Definition 3 (weak DAS) and report every violation.

    Condition 3 of Def. 3 only requires *some* neighbour ``m`` with a
    path ``n·m···S`` (not through ``n``) to transmit later — i.e. each
    sender keeps at least one live forwarding direction.  This is the
    property Phase 3 refinement must preserve.
    """
    result = DasCheckResult(strong=False)
    result.violations.extend(_coverage_violations(topology, schedule))
    if result.violations_of_kind(MISSING_SLOT):
        return result

    sink = topology.sink
    for n in topology.nodes:
        if n == sink:
            continue
        n_slot = schedule.slot_of(n)
        has_outlet = False
        for m in topology.neighbours(n):
            if m == sink:
                has_outlet = True
                break
            if schedule.slot_of(m) > n_slot and _has_path_avoiding(
                topology, m, sink, avoid=n
            ):
                has_outlet = True
                break
        if not has_outlet:
            result.violations.append(
                DasViolation(
                    ORDERING,
                    (n,),
                    f"no neighbour of {n} with a sink path transmits after "
                    f"slot {n_slot} (Def. 3 condition 3)",
                )
            )
    result.violations.extend(_collision_violations(topology, schedule))
    return result


def is_strong_das(topology: Topology, schedule: Schedule) -> bool:
    """Boolean convenience wrapper around :func:`check_strong_das`."""
    return check_strong_das(topology, schedule).ok


def is_weak_das(topology: Topology, schedule: Schedule) -> bool:
    """Boolean convenience wrapper around :func:`check_weak_das`."""
    return check_weak_das(topology, schedule).ok


def first_violation(result: DasCheckResult) -> Optional[DasViolation]:
    """The first violation of a check result, or ``None`` when valid."""
    return result.violations[0] if result.violations else None
