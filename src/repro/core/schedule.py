"""TDMA slot assignments and their sender-set view.

The paper treats a data aggregation schedule in two equivalent ways:

* as a *slot assignment* ``F`` mapping each node to the TDMA slot in
  which it transmits (this is what the distributed protocols manipulate —
  each node stores its own ``slot`` variable), and
* as a *sequence of sender sets* ``⟨σ1, σ2, …, σl⟩`` where ``σi`` is the
  set of nodes transmitting in slot ``i`` (this is what Definitions 2–3
  quantify over).

:class:`Schedule` stores the assignment form — one slot per node, plus
the aggregation-tree parent each node chose — and derives the sender-set
form on demand.  The sink owns the highest slot (``Δ`` in Figure 2) but
never appears in a sender set, matching Def. 2 condition 2
(``⋃ σi = V \\ {S}``): the sink collects, it does not forward.

Slots *decrease* away from the sink, so ascending slot order is
leaves-first convergecast order.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from ..errors import ScheduleError
from ..topology import NodeId, Topology


class Schedule:
    """An immutable TDMA slot assignment with aggregation-tree parents.

    Parameters
    ----------
    slots:
        Mapping of every scheduled node (including the sink) to its slot
        number.  Slot numbers are positive integers; larger numbers
        transmit later within a period.
    parents:
        Mapping of node to its chosen aggregation parent.  The sink has
        no parent (maps to ``None`` or is absent).
    sink:
        The sink node.  It must carry a slot (Figure 2 assigns it ``Δ``)
        strictly larger than every other node's slot.

    Use :meth:`with_slot` / :meth:`with_slots` to derive refined
    schedules (Phase 3 reassigns slots); the original is never mutated.
    """

    def __init__(
        self,
        slots: Mapping[NodeId, int],
        parents: Mapping[NodeId, Optional[NodeId]],
        sink: NodeId,
    ) -> None:
        if sink not in slots:
            raise ScheduleError("the sink must carry a slot (Δ in Figure 2)")
        for node, slot in slots.items():
            if not isinstance(slot, int):
                raise ScheduleError(f"slot of node {node!r} must be an int, got {slot!r}")
            if slot < 1:
                raise ScheduleError(
                    f"slot of node {node!r} is {slot}; slots are numbered from 1"
                )
        sink_slot = slots[sink]
        for node, slot in slots.items():
            if node != sink and slot >= sink_slot:
                raise ScheduleError(
                    f"node {node!r} has slot {slot} >= sink slot {sink_slot}; "
                    "the sink must transmit last"
                )
        for child, parent in parents.items():
            if parent is None:
                continue
            if child not in slots:
                raise ScheduleError(f"parent recorded for unscheduled node {child!r}")
            if parent not in slots:
                raise ScheduleError(
                    f"node {child!r} names unscheduled parent {parent!r}"
                )

        self._slots: Dict[NodeId, int] = dict(slots)
        self._parents: Dict[NodeId, Optional[NodeId]] = {
            n: parents.get(n) for n in slots
        }
        self._parents[sink] = None
        self._sink = sink

    # ------------------------------------------------------------------
    # Slot assignment view
    # ------------------------------------------------------------------
    @property
    def sink(self) -> NodeId:
        """The sink node ``S``."""
        return self._sink

    @property
    def sink_slot(self) -> int:
        """The sink's slot — ``Δ``, the largest in the schedule."""
        return self._slots[self._sink]

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """All scheduled nodes (including the sink), sorted."""
        return tuple(sorted(self._slots))

    @property
    def senders(self) -> Tuple[NodeId, ...]:
        """All transmitting nodes — every scheduled node except the sink."""
        return tuple(n for n in self.nodes if n != self._sink)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return (
            self._slots == other._slots
            and self._parents == other._parents
            and self._sink == other._sink
        )

    def __hash__(self) -> int:
        return hash(
            (
                tuple(sorted(self._slots.items())),
                tuple(sorted((k, v) for k, v in self._parents.items())),
                self._sink,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schedule(nodes={len(self._slots)}, sink={self._sink}, "
            f"sink_slot={self.sink_slot})"
        )

    def slot_of(self, node: NodeId) -> int:
        """Return the slot assigned to ``node``."""
        try:
            return self._slots[node]
        except KeyError as exc:
            raise ScheduleError(f"node {node!r} has no assigned slot") from exc

    def parent_of(self, node: NodeId) -> Optional[NodeId]:
        """Return the aggregation parent ``node`` chose (``None`` for the sink)."""
        if node not in self._slots:
            raise ScheduleError(f"node {node!r} is not scheduled")
        return self._parents.get(node)

    def children_of(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Return the nodes that chose ``node`` as their parent, sorted."""
        if node not in self._slots:
            raise ScheduleError(f"node {node!r} is not scheduled")
        return tuple(
            sorted(c for c, p in self._parents.items() if p == node)
        )

    def slots(self) -> Dict[NodeId, int]:
        """A copy of the node → slot mapping."""
        return dict(self._slots)

    def parents(self) -> Dict[NodeId, Optional[NodeId]]:
        """A copy of the node → parent mapping."""
        return dict(self._parents)

    # ------------------------------------------------------------------
    # Sender-set view (Definitions 2–3)
    # ------------------------------------------------------------------
    def sender_sets(self) -> List[Set[NodeId]]:
        """Return ``⟨σ1, …, σl⟩``: senders grouped by slot, sink excluded.

        Index ``i-1`` of the returned list holds ``σi``.  ``l`` is the
        largest slot used by any sender, so trailing sink-only slots are
        not materialised.
        """
        max_slot = max(
            (s for n, s in self._slots.items() if n != self._sink), default=0
        )
        sets: List[Set[NodeId]] = [set() for _ in range(max_slot)]
        for node, slot in self._slots.items():
            if node != self._sink:
                sets[slot - 1].add(node)
        return sets

    def nodes_in_slot(self, slot: int) -> Tuple[NodeId, ...]:
        """Return all senders assigned to ``slot`` (the sink never appears)."""
        return tuple(
            sorted(
                n
                for n, s in self._slots.items()
                if s == slot and n != self._sink
            )
        )

    def transmission_order(self) -> List[NodeId]:
        """Senders in the order they fire within one TDMA period.

        Ascending slot number; ties (which a collision-free schedule only
        permits between mutually out-of-range nodes) break by identifier
        for determinism.
        """
        return sorted(self.senders, key=lambda n: (self._slots[n], n))

    def min_slot_neighbour(
        self, topology: Topology, node: NodeId
    ) -> Optional[NodeId]:
        """The neighbour of ``node`` with the smallest slot — the one an
        eavesdropper co-located with ``node`` hears *first* each period.

        Returns ``None`` if no neighbour of ``node`` is scheduled to send.
        Ties break by node identifier.
        """
        candidates = [
            m
            for m in topology.neighbours(node)
            if m in self._slots and m != self._sink
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda m: (self._slots[m], m))

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_slot(self, node: NodeId, slot: int) -> "Schedule":
        """Return a copy of this schedule with ``node`` moved to ``slot``."""
        new_slots = dict(self._slots)
        if node not in new_slots:
            raise ScheduleError(f"cannot reslot unscheduled node {node!r}")
        new_slots[node] = slot
        return Schedule(new_slots, self._parents, self._sink)

    def with_slots(self, changes: Mapping[NodeId, int]) -> "Schedule":
        """Return a copy with every ``node → slot`` change applied at once."""
        new_slots = dict(self._slots)
        for node, slot in changes.items():
            if node not in new_slots:
                raise ScheduleError(f"cannot reslot unscheduled node {node!r}")
            new_slots[node] = slot
        return Schedule(new_slots, self._parents, self._sink)

    def with_parent(self, node: NodeId, parent: Optional[NodeId]) -> "Schedule":
        """Return a copy with ``node``'s aggregation parent replaced."""
        new_parents = dict(self._parents)
        if node not in self._slots:
            raise ScheduleError(f"cannot reparent unscheduled node {node!r}")
        new_parents[node] = parent
        return Schedule(self._slots, new_parents, self._sink)

    def normalised(self) -> "Schedule":
        """Return a copy with slots shifted so the minimum sender slot is 1.

        Phase 3 refinement decrements slots and can push values toward the
        bottom of the frame; normalising keeps the sender-set indices
        compact without changing relative order (all the algorithms only
        depend on slot *order*, never absolute values).
        """
        min_slot = min(self._slots.values())
        shift = 1 - min_slot
        if shift == 0:
            return self
        return Schedule(
            {n: s + shift for n, s in self._slots.items()},
            self._parents,
            self._sink,
        )

    def compressed(self) -> "Schedule":
        """Return a copy with slot values remapped to ``1..k`` (k = number
        of distinct values), preserving order and equality.

        Every property the algorithms depend on — relative slot order,
        slot equality (collisions), which neighbour is heard first — is
        invariant under this remapping, so a schedule whose raw values
        overflow the TDMA frame can be compressed to fit without changing
        its behaviour.  Gaps between slot values carry no meaning.
        """
        distinct = sorted(set(self._slots.values()))
        remap = {value: index + 1 for index, value in enumerate(distinct)}
        return Schedule(
            {n: remap[s] for n, s in self._slots.items()},
            self._parents,
            self._sink,
        )

    def covers(self, topology: Topology) -> bool:
        """Whether every node of ``topology`` carries a slot."""
        return all(node in self._slots for node in topology.nodes)
