"""Core formal objects of the paper.

* :class:`Schedule` — TDMA slot assignments / sender-set sequences.
* Definition 1–3 checkers — non-colliding slots, strong and weak DAS.
* Definition 4 / Eq. 1 — capture time, safety periods and the
  simulation time bound of §VI-B.
"""

from .das_properties import (
    COLLISION,
    MISSING_SLOT,
    ORDERING,
    UNKNOWN_NODE,
    DasCheckResult,
    DasViolation,
    check_strong_das,
    check_weak_das,
    first_violation,
    is_non_colliding,
    is_strong_das,
    is_weak_das,
)
from .safety import (
    PAPER_SAFETY_FACTOR,
    PAPER_TIME_BOUND_FACTOR,
    SafetyPeriod,
    capture_time_periods,
    capture_time_seconds,
    safety_period,
    simulation_time_bound,
)
from .schedule import Schedule

__all__ = [
    "COLLISION",
    "DasCheckResult",
    "DasViolation",
    "MISSING_SLOT",
    "ORDERING",
    "PAPER_SAFETY_FACTOR",
    "PAPER_TIME_BOUND_FACTOR",
    "SafetyPeriod",
    "Schedule",
    "UNKNOWN_NODE",
    "capture_time_periods",
    "capture_time_seconds",
    "check_strong_das",
    "check_weak_das",
    "first_violation",
    "is_non_colliding",
    "is_strong_das",
    "is_weak_das",
    "safety_period",
    "simulation_time_bound",
]
