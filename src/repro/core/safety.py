"""Capture time and safety period (Definition 4 and §VI-B).

The paper bounds how long an SLP protocol must protect the source:

* *capture time*  ``C = period_length × (Δss + 1)`` — the time a perfect
  attacker needs when it gains one hop per TDMA period starting at the
  sink (Δss = source–sink hop distance, plus one period for the first
  message to reach the attacker);
* *safety period* ``δ = Cs × C`` with ``1 < Cs < 2`` (Eq. 1); the
  evaluation uses ``Cs = 1.5``;
* a simulation *upper time bound* ``num_nodes × source_period × 4`` to
  keep runs finite.

The verifier (Algorithm 1) counts attacker progress in whole periods, so
period-denominated forms are provided alongside the wall-clock ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..topology import Topology

#: Safety period factor used throughout the paper's evaluation (§VI-B).
PAPER_SAFETY_FACTOR = 1.5

#: Multiplier of the paper's simulation upper time bound (§VI-B).
PAPER_TIME_BOUND_FACTOR = 4


@dataclass(frozen=True)
class SafetyPeriod:
    """A safety period in both wall-clock seconds and whole TDMA periods.

    Attributes
    ----------
    seconds:
        ``Cs × period_length × (Δss + 1)`` — wall-clock form (Eq. 1).
    periods:
        ``⌈Cs × (Δss + 1)⌉`` — the number of TDMA periods the attacker
        may use; this is the budget :func:`~repro.verification.verify_schedule`
        and the runtime simulation enforce.
    factor:
        The ``Cs`` used.
    capture_time_seconds:
        The protectionless capture time ``C`` the factor was applied to.
    """

    seconds: float
    periods: int
    factor: float
    capture_time_seconds: float


def _resolve_distance(topology: Topology, distance: Optional[int]) -> int:
    if distance is None:
        return topology.source_sink_distance()
    if distance < 1:
        raise ConfigurationError(
            f"safety_period.distance={distance!r}: "
            "the source–sink distance must be at least one hop"
        )
    return distance


def capture_time_seconds(
    topology: Topology, period_length: float, distance: Optional[int] = None
) -> float:
    """Return ``C = period_length × (Δss + 1)`` (§VI-B).

    ``distance`` overrides ``Δss`` (multi-source scenarios budget
    against the closest source in the pool).
    """
    if period_length <= 0:
        raise ConfigurationError("period length must be positive")
    return period_length * (_resolve_distance(topology, distance) + 1)


def capture_time_periods(topology: Topology, distance: Optional[int] = None) -> int:
    """Return the capture time expressed in whole TDMA periods: ``Δss + 1``."""
    return _resolve_distance(topology, distance) + 1


def safety_period(
    topology: Topology,
    period_length: float,
    factor: float = PAPER_SAFETY_FACTOR,
    distance: Optional[int] = None,
) -> SafetyPeriod:
    """Compute the safety period per Eq. 1 with the paper's ``Cs = 1.5``.

    ``factor`` must satisfy ``1 < Cs < 2`` as the paper stipulates;
    values outside that interval are rejected so experiments cannot
    silently weaken the privacy target.  ``distance`` overrides the
    topology's designated source–sink distance — scenario workloads
    with several sources pass the smallest pool distance, yielding the
    most conservative budget.
    """
    if not 1.0 < factor < 2.0:
        raise ConfigurationError(
            f"safety factor Cs must satisfy 1 < Cs < 2 (Eq. 1), got {factor}"
        )
    c_seconds = capture_time_seconds(topology, period_length, distance=distance)
    c_periods = capture_time_periods(topology, distance=distance)
    return SafetyPeriod(
        seconds=factor * c_seconds,
        periods=math.ceil(factor * c_periods),
        factor=factor,
        capture_time_seconds=c_seconds,
    )


def simulation_time_bound(
    num_nodes: int,
    source_period: float,
    factor: int = PAPER_TIME_BOUND_FACTOR,
) -> float:
    """Upper bound on simulated time: ``num_nodes × source_period × factor``.

    §VI-B: "To bound simulation time, an upper time bound of
    number of nodes × source period × 4 is used."
    """
    if num_nodes < 1:
        raise ConfigurationError("number of nodes must be positive")
    if source_period <= 0:
        raise ConfigurationError("source period must be positive")
    if factor < 1:
        raise ConfigurationError("time bound factor must be at least 1")
    return num_nodes * source_period * factor
