"""Capture-ratio statistics — the metric of Figure 5.

§VI-D: "Capture ratio is the ratio of runs in which the attacker
manages to capture the source before the safety period ends."
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..app import OperationalResult
from ..errors import ConfigurationError


@dataclass(frozen=True)
class CaptureStats:
    """Aggregated capture statistics over repeated runs.

    Attributes
    ----------
    runs:
        Number of repeats aggregated.
    captures:
        Runs in which the attacker reached the source in time.
    capture_ratio:
        ``captures / runs`` — the y-axis of Figure 5.
    mean_capture_period:
        Mean period index of the captures (``None`` with zero captures).
    mean_attacker_moves:
        Mean number of attacker moves per run, captured or not.
    """

    runs: int
    captures: int
    capture_ratio: float
    mean_capture_period: Optional[float]
    mean_attacker_moves: float

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI for the capture ratio (default 95%)."""
        if self.runs == 0:
            return (0.0, 0.0)
        p = self.capture_ratio
        half = z * math.sqrt(max(p * (1 - p), 0.0) / self.runs)
        return (max(0.0, p - half), min(1.0, p + half))

    def reduction_versus(self, baseline: "CaptureStats") -> float:
        """Relative capture-ratio reduction against ``baseline`` (the
        paper's headline: SLP DAS "reduces the capture ratio by 50%")."""
        if baseline.capture_ratio == 0.0:
            return 0.0
        return 1.0 - self.capture_ratio / baseline.capture_ratio


def capture_stats(results: Sequence[OperationalResult]) -> CaptureStats:
    """Fold repeated operational runs into :class:`CaptureStats`."""
    if not results:
        raise ConfigurationError("cannot aggregate zero runs")
    captures = [r for r in results if r.captured]
    periods = [r.capture_period for r in captures if r.capture_period is not None]
    moves = [max(len(r.attacker_path) - 1, 0) for r in results]
    return CaptureStats(
        runs=len(results),
        captures=len(captures),
        capture_ratio=len(captures) / len(results),
        mean_capture_period=(sum(periods) / len(periods)) if periods else None,
        mean_attacker_moves=sum(moves) / len(moves),
    )
