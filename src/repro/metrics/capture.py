"""Capture-ratio statistics — the metric of Figure 5.

§VI-D: "Capture ratio is the ratio of runs in which the attacker
manages to capture the source before the safety period ends."

Scenario workloads generalise the metric along two axes this module
also covers: *per-source* capture ratios (which member of a
multi-source pool falls, and how often) and *first-capture*
aggregation (when, in periods and seconds, the first capture of a run
happens across a sweep).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..app import OperationalResult
from ..errors import ConfigurationError
from ..topology import NodeId


@dataclass(frozen=True)
class CaptureStats:
    """Aggregated capture statistics over repeated runs.

    Attributes
    ----------
    runs:
        Number of repeats aggregated.
    captures:
        Runs in which the attacker reached the source in time.
    capture_ratio:
        ``captures / runs`` — the y-axis of Figure 5.
    mean_capture_period:
        Mean period index of the captures (``None`` with zero captures).
    mean_attacker_moves:
        Mean number of attacker moves per run, captured or not.
    """

    runs: int
    captures: int
    capture_ratio: float
    mean_capture_period: Optional[float]
    mean_attacker_moves: float

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI for the capture ratio (default 95%)."""
        if self.runs == 0:
            return (0.0, 0.0)
        p = self.capture_ratio
        half = z * math.sqrt(max(p * (1 - p), 0.0) / self.runs)
        return (max(0.0, p - half), min(1.0, p + half))

    def reduction_versus(self, baseline: "CaptureStats") -> float:
        """Relative capture-ratio reduction against ``baseline`` (the
        paper's headline: SLP DAS "reduces the capture ratio by 50%")."""
        if baseline.capture_ratio == 0.0:
            return 0.0
        return 1.0 - self.capture_ratio / baseline.capture_ratio


def capture_stats(results: Sequence[OperationalResult]) -> CaptureStats:
    """Fold repeated operational runs into :class:`CaptureStats`."""
    if not results:
        raise ConfigurationError("cannot aggregate zero runs")
    captures = [r for r in results if r.captured]
    periods = [r.capture_period for r in captures if r.capture_period is not None]
    moves = [max(len(r.attacker_path) - 1, 0) for r in results]
    return CaptureStats(
        runs=len(results),
        captures=len(captures),
        capture_ratio=len(captures) / len(results),
        mean_capture_period=(sum(periods) / len(periods)) if periods else None,
        mean_attacker_moves=sum(moves) / len(moves),
    )


@dataclass(frozen=True)
class PerSourceCapture:
    """Capture statistics attributed to one member of the source pool.

    Attributes
    ----------
    source:
        The pool node these statistics describe.
    runs:
        Total runs aggregated (the denominator of the ratio — a run
        counts even when a *different* source fell).
    captures:
        Runs in which the attacker captured *this* source.
    capture_ratio:
        ``captures / runs`` for this source.
    mean_capture_period:
        Mean period index of this source's captures (``None`` if it
        never fell).
    """

    source: NodeId
    runs: int
    captures: int
    capture_ratio: float
    mean_capture_period: Optional[float]


def per_source_capture_stats(
    results: Sequence[OperationalResult],
) -> Tuple[PerSourceCapture, ...]:
    """Break a sweep's captures down by which source fell.

    The pool is the union of every run's ``source_pool`` (runs of one
    sweep share a pool, but the union keeps the function total); the
    result is ordered by node identifier.  With the paper's single
    static source this collapses to one entry whose ratio equals the
    overall capture ratio.
    """
    if not results:
        raise ConfigurationError("cannot aggregate zero runs")
    pool: set = set()
    for result in results:
        pool.update(result.source_pool)
    captures_by_source: Dict[NodeId, List[int]] = {node: [] for node in sorted(pool)}
    for result in results:
        if result.captured and result.captured_source is not None:
            captures_by_source.setdefault(result.captured_source, []).append(
                result.capture_period if result.capture_period is not None else 0
            )
    runs = len(results)
    return tuple(
        PerSourceCapture(
            source=node,
            runs=runs,
            captures=len(periods),
            capture_ratio=len(periods) / runs,
            mean_capture_period=(sum(periods) / len(periods)) if periods else None,
        )
        for node, periods in sorted(captures_by_source.items())
    )


@dataclass(frozen=True)
class FirstCaptureStats:
    """When the first capture of a run happens, aggregated over a sweep.

    With one source this mirrors :class:`CaptureStats`'s period mean;
    with several (or mobile) sources it is the figure of merit the
    per-source breakdown cannot give — how long the *network as a
    whole* kept every asset hidden.

    Attributes
    ----------
    runs, captures:
        As in :class:`CaptureStats`.
    mean_capture_period / mean_capture_time:
        Mean period index / simulated time of the first capture, over
        the captured runs (``None`` with zero captures).
    earliest_capture_period:
        The single fastest capture observed (``None`` likewise).
    """

    runs: int
    captures: int
    mean_capture_period: Optional[float]
    mean_capture_time: Optional[float]
    earliest_capture_period: Optional[int]


def first_capture_stats(
    results: Sequence[OperationalResult],
) -> FirstCaptureStats:
    """Aggregate the first capture event of each run across a sweep."""
    if not results:
        raise ConfigurationError("cannot aggregate zero runs")
    periods = [
        r.capture_period
        for r in results
        if r.captured and r.capture_period is not None
    ]
    times = [
        r.capture_time for r in results if r.captured and r.capture_time is not None
    ]
    captures = sum(1 for r in results if r.captured)
    return FirstCaptureStats(
        runs=len(results),
        captures=captures,
        mean_capture_period=(sum(periods) / len(periods)) if periods else None,
        mean_capture_time=(sum(times) / len(times)) if times else None,
        earliest_capture_period=min(periods) if periods else None,
    )
