"""Evaluation metrics: capture ratio (Figure 5), message overhead
(§VII's "negligible overhead" claim) and convergecast quality guards."""

from .capture import (
    CaptureStats,
    FirstCaptureStats,
    PerSourceCapture,
    capture_stats,
    first_capture_stats,
    per_source_capture_stats,
)
from .collector import Summary, summarise
from .energy import (
    EnergyModel,
    EnergyReport,
    estimate_lifetime_periods,
    measure_energy,
)
from .latency import AggregationStats, aggregation_stats, schedule_latency_periods
from .overhead import MessageOverhead

__all__ = [
    "AggregationStats",
    "CaptureStats",
    "EnergyModel",
    "EnergyReport",
    "FirstCaptureStats",
    "MessageOverhead",
    "PerSourceCapture",
    "Summary",
    "aggregation_stats",
    "capture_stats",
    "estimate_lifetime_periods",
    "first_capture_stats",
    "measure_energy",
    "per_source_capture_stats",
    "schedule_latency_periods",
    "summarise",
]
