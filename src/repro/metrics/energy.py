"""Radio energy accounting.

The SLP literature's second axis (after privacy) is energy: fake-source
techniques pay for privacy with extra transmissions (the paper's
refs [10]-[12] study exactly that trade-off), and the paper's own
pitch for MAC-level SLP is that a slot reassignment is nearly free.
This module quantifies that claim in energy terms: per-message transmit
and receive costs applied to a run's trace counts.

Default costs approximate a CC2420-class 802.15.4 radio sending short
frames (order-of-magnitude; the *ratios* between algorithms are the
meaningful output, as with the message counts they derive from).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..simulator import DELIVER, SEND, TraceRecorder


@dataclass(frozen=True)
class EnergyModel:
    """Per-event radio energy costs, in microjoules.

    Attributes
    ----------
    tx_microjoules:
        Cost of one broadcast transmission.
    rx_microjoules:
        Cost of one successful frame reception.
    """

    tx_microjoules: float = 50.0
    rx_microjoules: float = 25.0

    def __post_init__(self) -> None:
        if self.tx_microjoules < 0 or self.rx_microjoules < 0:
            raise ConfigurationError("energy costs cannot be negative")


@dataclass(frozen=True)
class EnergyReport:
    """Radio energy spent during one run.

    Attributes
    ----------
    transmissions, receptions:
        Event counts from the run trace.
    tx_microjoules, rx_microjoules:
        Energy attributed to each.
    """

    transmissions: int
    receptions: int
    tx_microjoules: float
    rx_microjoules: float

    @property
    def total_microjoules(self) -> float:
        """Total radio energy of the run."""
        return self.tx_microjoules + self.rx_microjoules

    @property
    def total_millijoules(self) -> float:
        """Total radio energy in millijoules."""
        return self.total_microjoules / 1000.0

    def overhead_versus(self, baseline: "EnergyReport") -> float:
        """Relative extra energy against ``baseline`` (0.0 = free)."""
        if baseline.total_microjoules == 0:
            return 0.0 if self.total_microjoules == 0 else float("inf")
        return self.total_microjoules / baseline.total_microjoules - 1.0


def measure_energy(
    trace: TraceRecorder, model: EnergyModel = EnergyModel()
) -> EnergyReport:
    """Fold a run trace's SEND/DELIVER counts into an :class:`EnergyReport`.

    Works on filtered traces too: :class:`TraceRecorder` maintains
    per-kind counts even for kinds it does not retain in full.
    """
    sends = trace.count(SEND)
    delivers = trace.count(DELIVER)
    return EnergyReport(
        transmissions=sends,
        receptions=delivers,
        tx_microjoules=sends * model.tx_microjoules,
        rx_microjoules=delivers * model.rx_microjoules,
    )


def estimate_lifetime_periods(
    per_period_microjoules: float,
    battery_joules: float = 8640.0,
) -> float:
    """Crude network-lifetime estimate in TDMA periods.

    ``battery_joules`` defaults to a pair of AA cells (~2×1.5 V ×
    0.8 Ah); divide the budget by the steady-state per-period radio
    energy.  A planning aid, not a hardware model.
    """
    if per_period_microjoules <= 0:
        raise ConfigurationError("per-period energy must be positive")
    if battery_joules <= 0:
        raise ConfigurationError("battery budget must be positive")
    return battery_joules * 1e6 / per_period_microjoules
