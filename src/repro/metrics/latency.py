"""Convergecast quality metrics.

The DAS exists to deliver every node's reading to the sink once per
period; these metrics quantify how well a schedule does that under a
given noise model.  They are not reported in the paper's evaluation
(which focuses on capture ratio) but they guard the reproduction: a
refinement that broke aggregation would be an invalid trade, and the
tests assert it does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..app import OperationalResult
from ..errors import ConfigurationError


@dataclass(frozen=True)
class AggregationStats:
    """Sink-side aggregation completeness over repeated runs.

    Attributes
    ----------
    runs:
        Number of runs aggregated.
    mean_ratio:
        Mean fraction of readings the sink collected per period.
    min_ratio, max_ratio:
        Worst and best per-run means.
    std_ratio:
        Standard deviation across runs.
    """

    runs: int
    mean_ratio: float
    min_ratio: float
    max_ratio: float
    std_ratio: float

    @property
    def lossless(self) -> bool:
        """Whether every run achieved perfect aggregation."""
        return self.min_ratio >= 1.0 - 1e-12


def aggregation_stats(results: Sequence[OperationalResult]) -> AggregationStats:
    """Fold the per-run aggregation ratios into :class:`AggregationStats`."""
    if not results:
        raise ConfigurationError("cannot aggregate zero runs")
    ratios = np.array([r.aggregation_ratio for r in results], dtype=float)
    return AggregationStats(
        runs=len(results),
        mean_ratio=float(ratios.mean()),
        min_ratio=float(ratios.min()),
        max_ratio=float(ratios.max()),
        std_ratio=float(ratios.std()),
    )


def schedule_latency_periods(max_slot: int, num_slots: int) -> float:
    """Worst-case collection latency in periods for a schedule whose
    deepest sender uses ``max_slot`` of a ``num_slots`` frame.

    Every reading generated at a period's start reaches the sink by the
    period's end in a valid DAS, so the latency is the fraction of the
    period until the last sender slot fires.
    """
    if num_slots < 1 or max_slot < 1:
        raise ConfigurationError("slot numbers must be positive")
    if max_slot > num_slots:
        raise ConfigurationError("max_slot cannot exceed the frame size")
    return max_slot / num_slots
