"""Message-overhead accounting.

The paper's closing claim (§I, §VII): the SLP-aware DAS costs
"negligible message overhead" over protectionless DAS.  The overhead
has two components:

* *setup overhead* — the extra SEARCH/CHANGE messages plus the update
  disseminations of Phase 3 (a few tens of messages against the
  thousands Phase 1 sends);
* *runtime overhead* — none by construction: both algorithms transmit
  exactly one message per node per period.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class MessageOverhead:
    """Setup message counts of a protectionless/SLP pair.

    Attributes
    ----------
    baseline_messages:
        Broadcasts the protectionless setup sent.
    slp_messages:
        Broadcasts the full 3-phase setup sent.
    search_messages, change_messages:
        The Phase 2 / Phase 3 wire messages within ``slp_messages``.
    """

    baseline_messages: int
    slp_messages: int
    search_messages: int = 0
    change_messages: int = 0

    def __post_init__(self) -> None:
        if self.baseline_messages < 0 or self.slp_messages < 0:
            raise ConfigurationError("message counts cannot be negative")

    @property
    def extra_messages(self) -> int:
        """Absolute setup overhead of SLP DAS."""
        return self.slp_messages - self.baseline_messages

    @property
    def overhead_factor(self) -> float:
        """``slp / baseline`` — 1.0x means free, the paper's claim is
        "negligible", i.e. a factor close to 1."""
        if self.baseline_messages == 0:
            return float("inf") if self.slp_messages else 1.0
        return self.slp_messages / self.baseline_messages

    @property
    def overhead_percent(self) -> float:
        """Relative overhead in percent."""
        return (self.overhead_factor - 1.0) * 100.0

    def summary(self) -> str:
        """One-line report used by the CLI and the overhead benchmark."""
        return (
            f"baseline={self.baseline_messages} msgs, "
            f"slp={self.slp_messages} msgs "
            f"(+{self.extra_messages}, {self.overhead_percent:+.1f}%; "
            f"search={self.search_messages}, change={self.change_messages})"
        )
