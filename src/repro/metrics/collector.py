"""Generic repeated-measurement aggregation used by the benches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Mean / spread summary of one measured quantity."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def format(self, unit: str = "") -> str:
        """Human-readable one-liner, e.g. ``12.3 ± 1.2 s (n=30)``."""
        suffix = f" {unit}" if unit else ""
        return (
            f"{self.mean:.3g} ± {self.std:.2g}{suffix} "
            f"[{self.minimum:.3g}, {self.maximum:.3g}] (n={self.n})"
        )


def summarise(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` over a non-empty sample."""
    if not values:
        raise ConfigurationError("cannot summarise an empty sample")
    arr = np.asarray(values, dtype=float)
    return Summary(
        n=len(arr),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
    )
