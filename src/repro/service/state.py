"""Job identity and the service's state machine.

A *job* is one scenario sweep the service has promised to finish:
a :class:`~repro.scenarios.ScenarioSpec` plus the seed range and kernel
knobs that could change its results.  Its identity is the SHA-256 of
exactly those inputs serialised canonically (:func:`job_key`) — content
addressing, the same discipline the schedule cache and the sweep
checkpoint already use.  Two submissions that would produce the same
report therefore collapse to one job record, however many clients
submit them and however the service is restarted in between.

State machine::

    queued ──► running ──► done
                  │   ├──► quarantined   (report exists; some seeds failed)
                  │   └──► failed        (no report could be produced)
                  └──► queued            (service stopped/crashed mid-job:
                                          recovery re-queues, the checkpoint
                                          keeps the finished seeds)

``done``/``failed``/``quarantined`` are terminal.  The only
backwards edge is crash recovery's ``running → queued``, which is what
makes a ``kill -9`` of the service survivable: the job's identity and
its per-seed checkpoint are both on disk, so the next start re-queues
the job and the scheduler re-runs only the missing seeds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from hashlib import sha256
from typing import Dict, Optional, Tuple

from ..errors import invalid_field
from ..scenarios import ScenarioSpec

#: Job states (the strings stored in the job store).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, QUARANTINED)

#: States a job can move to from each state.
_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    QUEUED: (RUNNING,),
    RUNNING: (DONE, FAILED, QUARANTINED, QUEUED),
    DONE: (),
    FAILED: (),
    QUARANTINED: (),
}

#: Terminal states: the job's record will never change again.
TERMINAL_STATES = (DONE, FAILED, QUARANTINED)


def check_transition(current: str, new: str) -> None:
    """Validate one state-machine edge (raises ``ConfigurationError``)."""
    if new not in _TRANSITIONS.get(current, ()):
        raise invalid_field(
            "Job", "state", new,
            f"no transition {current!r} -> {new!r}; "
            f"allowed: {list(_TRANSITIONS.get(current, ()))}",
        )


def job_key(
    spec: ScenarioSpec,
    repeats: int,
    base_seed: int,
    kernel: Optional[str] = None,
    setup_kernel: Optional[str] = None,
) -> str:
    """The content-addressed identity of one sweep job.

    Covers everything that can change the job's *report*: the spec's
    canonical JSON document, the seed range, and the kernel knobs (the
    kernels are bit-identical, but someone pinning ``legacy`` is
    bisecting and must not be handed a fast-kernel job's record).
    Deliberately excludes everything that cannot: worker counts, shard
    sizes, timeouts, telemetry, submission time, submitting host.
    """
    payload = {
        "spec": spec.to_dict(),
        "repeats": repeats,
        "base_seed": base_seed,
        "kernel": kernel,
        "setup_kernel": setup_kernel,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class JobRecord:
    """One durable job as the store persists it.

    ``spec_json`` is the spec's canonical JSON (the submission payload
    survives restarts verbatim); ``result_json`` is the finished
    report's exact bytes (``ScenarioOutcome.to_json()``, loaded from
    the job's result-blob file), set only in ``done``/``quarantined``;
    ``error`` is set only in ``failed``.  ``evicted`` marks a terminal
    job whose blob ``service gc`` removed on purpose (as opposed to a
    blob that is *missing*, which is an inconsistency fsck reports).
    ``submit_order`` is the FIFO position (a counter, not a timestamp —
    nothing wall-clock enters the store).
    """

    job_id: str
    spec_json: str
    repeats: int
    base_seed: int
    kernel: Optional[str]
    setup_kernel: Optional[str]
    state: str
    error: Optional[str] = None
    result_json: Optional[str] = None
    submit_order: int = 0
    evicted: bool = False

    def spec(self) -> ScenarioSpec:
        """Rebuild the submitted spec."""
        return ScenarioSpec.from_json(self.spec_json)

    def describe(self) -> Dict[str, object]:
        """The status-endpoint view (no result payload)."""
        info: Dict[str, object] = {
            "job": self.job_id,
            "state": self.state,
            "scenario": json.loads(self.spec_json).get("name"),
            "repeats": self.repeats,
            "base_seed": self.base_seed,
        }
        if self.kernel is not None:
            info["kernel"] = self.kernel
        if self.setup_kernel is not None:
            info["setup_kernel"] = self.setup_kernel
        if self.error is not None:
            info["error"] = self.error
        if self.evicted:
            # Terminal without a blob: `service gc` evicted the result
            # (the record itself survives so resubmissions still dedup).
            info["evicted"] = True
        return info
